# Convenience targets for the stash-directory reproduction.

PYTHON ?= python

.PHONY: install test bench quick-bench bench-scaling bench-runner bench-hotpath bench-vector bench-service obs-smoke service-smoke fuzz fuzz-smoke examples docs clean

install:
	$(PYTHON) -m pip install -e .[dev]

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

quick-bench:
	$(PYTHON) -m pytest benchmarks/bench_table1_config.py \
		benchmarks/bench_table2_storage.py \
		benchmarks/bench_fig1_characterization.py --benchmark-only

# Sweep-engine scaling trajectory: batched vs per-point dispatch at 1/2/4
# workers plus the trace-generation share (writes BENCH_runner.json; see
# docs/PERFORMANCE.md).  BENCH_WORKERS/BENCH_CACHE_DIR configure the rest
# of the harness.
bench-runner:
	$(PYTHON) -m pytest benchmarks/bench_runner_scaling.py --benchmark-only

# Weak-scaling sweep: vector vs bank-parallel engine throughput and
# directory bytes/core at 16/64/256/1024 cores (writes BENCH_scaling.json;
# see docs/PERFORMANCE.md).  Append `--smoke` by hand for a quick CI run.
bench-scaling:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_scaling.py

# Hot-path throughput: accesses/sec per directory kind vs the frozen
# pre-overhaul baseline (writes BENCH_hotpath.json; see
# docs/PERFORMANCE.md).  Append `--smoke` by hand for a quick CI-style run.
bench-hotpath:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpath.py

# Vector-engine throughput: interp vs vector accesses/sec for every
# flat-capable directory kind (writes BENCH_vector.json; see
# docs/PERFORMANCE.md).  Append `--smoke` by hand for a quick CI-style run.
bench-vector:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_vector.py

# Campaign-service load benchmark: boots the HTTP service in-process,
# drives it with the synthetic load client, and reports sustained
# points/s plus submit-to-result latency percentiles, cold vs warm cache
# (writes BENCH_service.json; see docs/SERVICE.md).
bench-service:
	$(PYTHON) -m pytest benchmarks/bench_service.py --benchmark-only

# Boot `repro serve` as a real subprocess, submit a tiny campaign over
# HTTP, poll it to completion, check /metrics parses and every point
# summary is bit-identical to a direct run_trace (mirrors the CI
# service-smoke job; see docs/SERVICE.md).
service-smoke:
	PYTHONPATH=src $(PYTHON) tools/service_smoke.py

# Traced + sampled smoke run with structural validation of the exports
# (mirrors the CI obs-smoke job; see docs/OBSERVABILITY.md).
obs-smoke:
	PYTHONPATH=src $(PYTHON) -m repro run --workload mix --kind stash \
		--ratio 0.125 --ops 2000 --obs-epoch 256 --trace-events \
		--check-invariants 1024 --obs-out obs_smoke
	$(PYTHON) tools/validate_trace.py obs_smoke.trace.json obs_smoke.epochs.jsonl

# Differential fuzzing: every organization vs the IDEAL reference on
# adversarial random programs (see docs/VERIFICATION.md).  Failures are
# minimized and serialized under .repro_cache/failures/.
fuzz:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --ops 2000 --seeds 25

# Bounded fixed-seed sweep + seed-corpus replay (mirrors the CI
# fuzz-smoke job; ~30 s), plus a fixed-seed Tardis-vs-IDEAL pass (the
# timestamp backend's bounded-staleness differ) and an algorithm-workload
# characterization smoke.
fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --ops 400 --seeds 8 --seed-corpus
	PYTHONPATH=src $(PYTHON) -m repro fuzz --kinds tardis --ops 600 --seeds 6
	PYTHONPATH=src $(PYTHON) -m repro characterize \
		--workloads louvain-like matmul-like sieve-like unionfind-like \
		--cores 16 --ops 500

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/directory_scaling.py swaptions-like 1000
	$(PYTHON) examples/workload_characterization.py 1000
	$(PYTHON) examples/custom_directory.py mix 1000
	$(PYTHON) examples/noc_and_dram_analysis.py mix 1000

docs:
	PYTHONPATH=src $(PYTHON) tools/gen_api_docs.py docs/API.md

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks
