"""A1 — ablation: stash eligibility (any-private vs exclusive-only).

The paper stashes any entry tracking a single holder; the stricter
exclusive-only variant stashes less (lone-S entries get invalidated), which
should never help performance.
"""

from repro.analysis.experiments import run_ablation_eligibility

from benchmarks.conftest import BENCH_OPS, once


def test_abl1_eligibility(benchmark, report):
    out = once(
        benchmark,
        run_ablation_eligibility,
        workloads="all",
        ratio=0.125,
        ops_per_core=BENCH_OPS,
    )
    report(out)
    rows = out.data["rows"]
    any_private_times = [row[1] for row in rows]
    exclusive_times = [row[3] for row in rows]
    # The paper's broader rule is at least as good on average.
    assert sum(any_private_times) <= sum(exclusive_times) * 1.02
