"""A2 — ablation: explicit clean-eviction notification.

Notifications keep the stash bits (and sharer lists) precise: false
discoveries drop to zero, at the price of one extra control message per
clean L1 eviction.
"""

from repro.analysis.experiments import run_ablation_notification

from benchmarks.conftest import BENCH_OPS, once


def test_abl2_notification(benchmark, report):
    out = once(
        benchmark,
        run_ablation_notification,
        workloads="all",
        ratio=0.125,
        ops_per_core=BENCH_OPS,
    )
    report(out)
    for _, false_silent, false_notify, _, _ in out.data["rows"]:
        assert false_notify == 0.0
        assert false_silent >= false_notify
