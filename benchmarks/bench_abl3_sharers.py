"""A3 — ablation: sharer-set representation (storage vs traffic).

Full bit vectors are exact but scale linearly with core count; coarse
vectors and limited pointers shrink the entry at the cost of spurious
invalidation messages.  Stashing composes with all three (the private test
reads the sharer counter, not the encoding).
"""

from repro.analysis.experiments import run_ablation_sharers
from repro.common.config import SharerFormat
from repro.directory.sharers import sharer_storage_bits

from benchmarks.conftest import BENCH_OPS, once


def test_abl3_sharer_formats(benchmark, report):
    out = once(
        benchmark,
        run_ablation_sharers,
        workloads=None,
        ratio=0.25,
        ops_per_core=BENCH_OPS,
    )
    report(out)
    rows = {row[0]: row for row in out.data["rows"]}
    # Coarse vectors already shrink the entry at 16 cores...
    assert rows["coarse"][1] < rows["full"][1]
    # ...limited pointers only pay off at scale (they are a scalability
    # format): check the crossover at 64 cores analytically.
    assert sharer_storage_bits(
        SharerFormat.LIMITED_POINTER, 64, pointers=4
    ) < sharer_storage_bits(SharerFormat.FULL_BIT_VECTOR, 64)
    # No format breaks performance catastrophically.
    assert all(row[4] < 1.5 for row in out.data["rows"])
