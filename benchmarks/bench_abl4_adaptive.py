"""A4 — ablation: adaptive stash throttling vs always-stash.

The adaptive extension suspends stashing when discovery broadcasts keep
missing (stale stash bits).  On workloads with good private reuse it should
behave like the plain stash directory; on streaming workloads with 100%
false discoveries it should cut broadcast traffic.
"""

from repro.analysis.experiments import ExperimentOutput, make_config, simulate
from repro.analysis.tables import render_table
from repro.common.config import DirectoryKind

from benchmarks.conftest import BENCH_OPS, once

WORKLOADS = [
    "blackscholes-like",  # good reuse: stashing pays
    "swaptions-like",     # tiny working set: little stashing at all
    "ocean-like",         # streaming: stale stash bits everywhere
    "radix-like",         # streaming, write-heavy
    "mix",
]


def run_a4():
    rows = []
    for workload in WORKLOADS:
        baseline = simulate(
            workload, make_config(DirectoryKind.SPARSE, 1.0), ops_per_core=BENCH_OPS
        )
        plain = simulate(
            workload, make_config(DirectoryKind.STASH, 0.125), ops_per_core=BENCH_OPS
        )
        adaptive = simulate(
            workload,
            make_config(DirectoryKind.ADAPTIVE_STASH, 0.125),
            ops_per_core=BENCH_OPS,
        )
        rows.append(
            [
                workload,
                plain.normalized_time(baseline),
                adaptive.normalized_time(baseline),
                plain.discovery_broadcasts,
                adaptive.discovery_broadcasts,
                adaptive.stats.get("system.directory.throttle_suspensions", 0.0),
            ]
        )
    text = render_table(
        ["workload", "stash time", "adaptive time",
         "stash broadcasts", "adaptive broadcasts", "suspensions"],
        rows,
        title="A4: adaptive stash throttling at R=1/8x",
    )
    return ExperimentOutput("A4", "Adaptive stash throttling", text, {"rows": rows})


def test_abl4_adaptive_throttling(benchmark, report):
    out = once(benchmark, run_a4)
    report(out)
    by_name = {row[0]: row for row in out.data["rows"]}
    # Throttling never increases broadcast count.
    assert all(row[4] <= row[3] for row in out.data["rows"])
    # Streaming workloads: throttling cuts broadcasts meaningfully.
    assert by_name["ocean-like"][4] < by_name["ocean-like"][3]
    assert by_name["radix-like"][4] < 0.7 * by_name["radix-like"][3]
    # Honest finding (recorded in EXPERIMENTS.md): the false-discovery rate
    # alone is an imperfect throttle signal — on pure-private workloads a
    # stale stash bit still saved a live block earlier, so suspending
    # stashing gives up some of the win.  Adaptive must stay close to plain
    # stash, not necessarily match it.
    assert by_name["blackscholes-like"][2] < by_name["blackscholes-like"][1] + 0.10
