"""A5 — extension: discovery presence filtering vs full broadcast.

Full-broadcast discovery probes all N-1 cores.  With per-core counting
presence filters at the home, a discovery probes only cores that *might*
hold the block (a guaranteed superset of the true holders — safety is
property-tested).  Because silent clean evictions leave stale counts, the
filter degrades toward broadcast on streaming workloads; combining it with
clean-eviction notifications (A2) keeps it precise.  The table shows all
three configurations.
"""

from repro.analysis.experiments import ExperimentOutput, make_config, simulate
from repro.analysis.tables import render_table
from repro.common.config import DirectoryKind
from repro.common.stats import ratio

from benchmarks.conftest import BENCH_OPS, once

WORKLOADS = ["blackscholes-like", "bodytrack-like", "canneal-like", "ocean-like", "mix"]
FILTER_SLOTS = 256


def _probes(result) -> float:
    return result.stats.get("system.discovery.probes_sent", 0.0)


def run_a5():
    rows = []
    for workload in WORKLOADS:
        base_cfg = make_config(DirectoryKind.STASH, 0.125)
        plain = simulate(workload, base_cfg, ops_per_core=BENCH_OPS)
        filtered = simulate(
            workload,
            base_cfg.with_directory(discovery_filter_slots=FILTER_SLOTS),
            ops_per_core=BENCH_OPS,
        )
        filtered_notify = simulate(
            workload,
            base_cfg.with_directory(
                discovery_filter_slots=FILTER_SLOTS,
                clean_eviction_notification=True,
            ),
            ops_per_core=BENCH_OPS,
        )
        rows.append(
            [
                workload,
                _probes(plain),
                _probes(filtered),
                1.0 - ratio(_probes(filtered), _probes(plain), default=1.0),
                _probes(filtered_notify),
                1.0 - ratio(_probes(filtered_notify), _probes(plain), default=1.0),
            ]
        )
    text = render_table(
        ["workload", "probes (bcast)", "probes (filter)", "cut",
         "probes (filter+notify)", "cut "],
        rows,
        title=f"A5: discovery presence filter ({FILTER_SLOTS} slots/core) at R=1/8x",
    )
    return ExperimentOutput("A5", "Discovery filtering", text, {"rows": rows})


def test_abl5_discovery_filter(benchmark, report):
    out = once(benchmark, run_a5)
    report(out)
    rows = out.data["rows"]
    # Filtering never increases probes...
    assert all(row[2] <= row[1] for row in rows)
    # ...and filter + notification slashes them on every workload that
    # discovers at all (notifications both shrink the candidate sets and
    # pre-empt the stale-bit discoveries themselves).
    discovering = [row for row in rows if row[1] > 0]
    assert discovering
    assert all(row[5] > 0.5 for row in discovering)
    # Honest finding: the filter alone degrades on streaming workloads
    # (stale counts from silent evictions) — canneal/ocean cuts are small.
    by_name = {row[0]: row for row in rows}
    assert by_name["mix"][3] > 0.3
    assert by_name["ocean-like"][3] < by_name["mix"][3]
