"""F10 — total energy (dynamic + directory leakage) vs sparse@1x.

The energy-efficiency angle of the headline: an 8x smaller directory leaks
8x less, and stashing avoids the invalidation/refetch dynamic energy the
under-provisioned conventional design burns.
"""

from repro.analysis.experiments import run_energy_comparison

from benchmarks.conftest import BENCH_OPS, BENCH_RATIOS, once


def test_fig10_energy(benchmark, report):
    out = once(
        benchmark,
        run_energy_comparison,
        workloads="all",
        ratios=BENCH_RATIOS,
        ops_per_core=BENCH_OPS,
    )
    report(out)
    series = out.data["series"]
    idx_eighth = BENCH_RATIOS.index(0.125)
    # Stash at 1/8 stays within a few percent of the fully provisioned
    # baseline's energy (the discovery traffic costs a little dynamic
    # energy; the 8x leakage saving and avoided refetches pay for it) and
    # clearly beats sparse at the same (small) size.
    assert series["stash"][idx_eighth] <= 1.10
    assert series["stash"][idx_eighth] < series["sparse"][idx_eighth]
