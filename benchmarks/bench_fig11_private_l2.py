"""F11 — the headline claim with two-level private caches.

The paper's CMP gives each core a private L2 and the directory tracks that
level.  This benchmark re-runs the headline comparison on the two-level
configuration: the stash win must survive the deeper private hierarchy
(silent L2 evictions make directory state *staler*, if anything).
"""

from repro.analysis.experiments import run_private_l2_headline

from benchmarks.conftest import BENCH_OPS, once


def test_fig11_private_l2_headline(benchmark, report):
    out = once(benchmark, run_private_l2_headline, workloads="all",
               ops_per_core=BENCH_OPS)
    report(out)
    geomean_row = out.data["rows"][-1]
    assert geomean_row[0] == "geomean"
    # stash@1/8 within a few percent of sparse@1x, sparse@1/8 worse.
    assert geomean_row[3] < 1.08
    assert geomean_row[2] > geomean_row[3]
