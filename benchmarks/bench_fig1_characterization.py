"""F1 — workload sharing characterization (the motivation figure).

The stash design rests on one observation: most blocks — and so most
directory entries — are private.  This regenerates the private-block
fraction and sharing-degree histogram for every suite workload.
"""

from repro.analysis.experiments import run_characterization

from benchmarks.conftest import BENCH_OPS, once


def test_fig1_characterization(benchmark, report):
    out = once(
        benchmark, run_characterization, workloads="all", ops_per_core=BENCH_OPS
    )
    report(out)
    fractions = [wl["private_block_fraction"] for wl in out.data.values()]
    # The motivation must hold: the majority of blocks are private in most
    # workloads (paper reports ~75-90% on PARSEC/SPLASH-2).
    assert sum(f > 0.5 for f in fractions) >= len(fractions) - 2
