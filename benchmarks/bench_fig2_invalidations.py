"""F2 — conventional sparse: directory-induced invalidations vs provisioning.

The under-provisioning problem the paper opens with: as R shrinks, the
conventional design invalidates more and more live cached blocks.
"""

from repro.analysis.experiments import RATIOS, run_invalidation_sweep

from benchmarks.conftest import BENCH_OPS, once


def test_fig2_invalidations_vs_provisioning(benchmark, report):
    out = once(
        benchmark,
        run_invalidation_sweep,
        workloads=None,
        ratios=RATIOS,
        ops_per_core=BENCH_OPS,
    )
    report(out)
    # Shape: invalidations grow monotonically-ish as R shrinks; the 1/16
    # point dwarfs the 2x point on every measured workload.
    for series in out.data["series"].values():
        assert series[-1] > series[0]
