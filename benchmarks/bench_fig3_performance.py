"""F3 — THE headline figure: normalized execution time vs provisioning.

Regenerates the paper's main result over the full workload suite: the stash
directory at R=1/8 matches the conventional sparse directory at R=1, while
the conventional design degrades sharply as R shrinks; cuckoo falls in
between and ideal is the floor.
"""

from repro.analysis.experiments import run_headline, run_performance_sweep

from benchmarks.conftest import BENCH_OPS, BENCH_RATIOS, once


def test_fig3_performance_sweep(benchmark, report):
    out = once(
        benchmark,
        run_performance_sweep,
        workloads="all",
        ratios=BENCH_RATIOS,
        ops_per_core=BENCH_OPS,
    )
    report(out)
    series = out.data["series"]
    idx_one = BENCH_RATIOS.index(1.0)
    idx_eighth = BENCH_RATIOS.index(0.125)
    # The paper's ordering at 1/8 provisioning.  (Cuckoo only separates from
    # sparse in conflict-limited regimes — at 1/8 both are capacity-bound
    # and essentially tie, so it is checked at R=1 and bounded at R=1/8.)
    assert series["ideal"][idx_eighth] <= series["stash"][idx_eighth] + 0.02
    assert series["stash"][idx_eighth] < series["cuckoo"][idx_eighth]
    assert series["cuckoo"][idx_one] <= series["sparse"][idx_one]
    assert series["cuckoo"][idx_eighth] <= 1.02 * series["sparse"][idx_eighth]
    # Headline: stash@1/8 within a few percent of sparse@1x (geomean).
    assert series["stash"][idx_eighth] < 1.05


def test_fig3_headline_table(report, benchmark):
    out = once(benchmark, run_headline, workloads="all", ops_per_core=BENCH_OPS)
    report(out)
    geomean_row = out.data["rows"][-1]
    assert geomean_row[3] < 1.05          # stash@1/8 ~ sparse@1x
    assert geomean_row[2] > geomean_row[3]  # sparse@1/8 is worse
