"""F4 — directory-induced invalidations: sparse vs cuckoo vs stash.

The mechanism behind F3: stashing converts almost every conflict eviction
of a private entry into a silent drop, so the cached-copy destruction that
cripples the under-provisioned conventional design nearly vanishes.
"""

from repro.analysis.experiments import run_invalidation_comparison

from benchmarks.conftest import BENCH_OPS, BENCH_RATIOS, once


def test_fig4_invalidation_comparison(benchmark, report):
    out = once(
        benchmark,
        run_invalidation_comparison,
        workloads="all",
        ratios=BENCH_RATIOS,
        ops_per_core=BENCH_OPS,
    )
    report(out)
    series = out.data["series"]
    idx_eighth = BENCH_RATIOS.index(0.125)
    # Stash invalidations at 1/8 are a small fraction of sparse's.
    assert series["stash"][idx_eighth] < 0.25 * series["sparse"][idx_eighth]
