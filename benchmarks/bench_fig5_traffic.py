"""F5 — NoC traffic vs provisioning, plus per-class breakdown at R=1/8.

Tests the abstract's "without raising significant overhead concerns": the
discovery broadcasts the stash design adds must cost less traffic than the
invalidation + refetch traffic it removes.
"""

from repro.analysis.experiments import run_traffic_sweep

from benchmarks.conftest import BENCH_OPS, BENCH_RATIOS, once


def test_fig5_traffic(benchmark, report):
    out = once(
        benchmark,
        run_traffic_sweep,
        workloads="all",
        ratios=BENCH_RATIOS,
        ops_per_core=BENCH_OPS,
    )
    report(out)
    series = out.data["series"]
    idx_eighth = BENCH_RATIOS.index(0.125)
    # Stash traffic at 1/8 stays below the conventional design's at 1/8...
    assert series["stash"][idx_eighth] < series["sparse"][idx_eighth]
    # ...and within a modest factor of the fully provisioned baseline
    # (discovery broadcasts cost fan-out messages, but they replace the
    # larger invalidation + refetch traffic of the conventional design).
    assert series["stash"][idx_eighth] < 1.5
