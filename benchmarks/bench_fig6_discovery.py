"""F6 — discovery broadcast rate and false-discovery fraction.

The stash bit confines broadcasts to lines that may actually be hidden;
this regenerates how often discovery fires and how often it finds nobody
(stale stash bit after a silent clean eviction).
"""

from repro.analysis.experiments import run_discovery_stats

from benchmarks.conftest import BENCH_OPS, BENCH_RATIOS, once


def test_fig6_discovery_stats(benchmark, report):
    out = once(
        benchmark,
        run_discovery_stats,
        workloads="all",
        ratios=BENCH_RATIOS,
        ops_per_core=BENCH_OPS,
    )
    report(out)
    false_rates = [false for _, false in out.data.values()]
    assert all(0.0 <= rate <= 1.0 for rate in false_rates)
