"""F7 — effective directory capacity: entries + live stash bits.

The abstract's "increases the effective directory capacity": at R=1/8 the
blocks covered (tracked entries plus stash-bit lines) should exceed the
physical entry count by a healthy factor.
"""

from repro.analysis.experiments import run_effective_capacity

from benchmarks.conftest import BENCH_OPS, once


def test_fig7_effective_capacity(benchmark, report):
    out = once(
        benchmark,
        run_effective_capacity,
        workloads="all",
        ratio=0.125,
        ops_per_core=BENCH_OPS,
    )
    report(out)
    expansions = list(out.data.values())
    # On average, coverage extends well past the physical entries.
    assert sum(expansions) / len(expansions) > 1.5
