"""F8 — sensitivity to directory associativity at R=1/8.

The conventional sparse design leans on associativity to dodge conflicts;
stashing makes the directory far less sensitive to it.
"""

from repro.analysis.experiments import run_assoc_sensitivity

from benchmarks.conftest import BENCH_OPS, once


def test_fig8_associativity(benchmark, report):
    out = once(
        benchmark,
        run_assoc_sensitivity,
        workloads=None,
        ways_list=(2, 4, 8, 16),
        ratio=0.125,
        ops_per_core=BENCH_OPS,
    )
    report(out)
    series = out.data["series"]
    # Stash beats sparse at every associativity point.
    assert all(s <= c for s, c in zip(series["stash"], series["sparse"]))
    # Stash's spread across associativities is small (insensitive).
    spread = max(series["stash"]) - min(series["stash"])
    assert spread < 0.15
