"""F9 — core-count scaling at R=1/8 ('many-core' scalability).

The stash advantage must hold (or grow) as cores scale from 16 to 64 —
the regime the paper targets.  Per-core trace length is reduced to keep the
64-core pure-Python run reasonable.
"""

from repro.analysis.experiments import run_core_scaling

from benchmarks.conftest import once

SCALING_OPS = 800


def test_fig9_core_scaling(benchmark, report):
    out = once(
        benchmark,
        run_core_scaling,
        workloads=None,
        core_counts=(16, 32, 64),
        ratio=0.125,
        ops_per_core=SCALING_OPS,
    )
    report(out)
    series = out.data["series"]
    for stash_point, sparse_point in zip(series["stash"], series["sparse"]):
        assert stash_point < sparse_point
