"""Hot-path throughput: accesses/sec per directory kind, before vs. after.

Measures the end-to-end single-access pipeline (build the system, run the
default 16-core ``mix`` workload through ``run_trace``) for every directory
organization and compares against the frozen pre-overhaul numbers in
``benchmarks/data/hotpath_baseline.json``.  The report lands in
``BENCH_hotpath.json`` at the repository root so speedups are trackable
across commits.

The measurement host matters: throughput is reported as the **best of
several repetitions** because a loaded or single-CPU machine easily skews
individual runs by 30-50%.  Speedups are only meaningful in full mode
(same trace length as the baseline); ``--smoke`` exists for CI, where the
point is that the harness runs and the report has the right shape.

Run standalone::

    python benchmarks/bench_hotpath.py            # full measurement
    python benchmarks/bench_hotpath.py --smoke    # CI smoke (short traces)

or through pytest (``make bench-hotpath``)::

    pytest benchmarks/bench_hotpath.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

# Standalone bootstrap: make src/ importable when run as a script without
# PYTHONPATH (the pytest path already has it configured).
_SRC = str(Path(__file__).resolve().parents[1] / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis.experiments import make_config
from repro.common.config import DirectoryKind
from repro.sim.simulator import run_trace
from repro.workloads.suite import build_workload

#: Directory organizations the report covers (name -> configured kind).
KINDS = {
    "sparse": DirectoryKind.SPARSE,
    "cuckoo": DirectoryKind.CUCKOO,
    "hierarchical": DirectoryKind.SCD,
    "ideal": DirectoryKind.IDEAL,
    "stash": DirectoryKind.STASH,
}

#: Full-mode measurement parameters — must match the frozen baseline file
#: (same workload, trace length, seed and provisioning ratio), or the
#: before/after comparison is meaningless.
FULL_OPS = 3000
FULL_REPS = 7

#: Smoke-mode parameters: enough to exercise every kind's pipeline.
SMOKE_OPS = 400
SMOKE_REPS = 2

RATIO = 0.5
SEED = 1
WORKLOAD = "mix"

BASELINE = Path(__file__).resolve().parent / "data" / "hotpath_baseline.json"
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_hotpath.json"


def measure_kind(kind: DirectoryKind, ops_per_core: int, reps: int) -> float:
    """Best-of-``reps`` accesses/sec for one directory kind.

    Each repetition rebuilds the system (construction is part of the cost a
    sweep pays per point) and replays the same prebuilt trace.
    """
    config = make_config(kind, ratio=RATIO)
    trace = build_workload(
        WORKLOAD, config.num_cores, ops_per_core,
        seed=SEED, block_bytes=config.block_bytes,
    )
    total = trace.total_ops()
    best = 0.0
    for _ in range(reps):
        start = time.perf_counter()
        run_trace(config, trace)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, total / elapsed)
    return best


def run_report(smoke: bool = False, reps: int | None = None) -> dict:
    """Measure every kind and return the BENCH_hotpath payload."""
    ops = SMOKE_OPS if smoke else FULL_OPS
    reps = reps if reps is not None else (SMOKE_REPS if smoke else FULL_REPS)
    baseline = json.loads(BASELINE.read_text())
    base_rates = baseline["accesses_per_sec"]

    kinds = {}
    for name, kind in KINDS.items():
        after = round(measure_kind(kind, ops, reps), 1)
        before = base_rates[name]
        kinds[name] = {
            "baseline_accesses_per_sec": before,
            "accesses_per_sec": after,
            "speedup": round(after / before, 3) if before else None,
        }

    return {
        "benchmark": "hotpath_throughput",
        "mode": "smoke" if smoke else "full",
        "comparable_to_baseline": not smoke,
        "baseline_commit": baseline.get("commit"),
        "workload": WORKLOAD,
        "num_cores": baseline["num_cores"],
        "ops_per_core": ops,
        "ratio": RATIO,
        "seed": SEED,
        "reps": reps,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "kinds": kinds,
    }


def write_report(payload: dict, output: Path = OUTPUT) -> None:
    output.write_text(json.dumps(payload, indent=1) + "\n")


# ---------------------------------------------------------------- pytest entry

def test_hotpath_throughput(benchmark):
    """Measure all kinds, write BENCH_hotpath.json, sanity-check the shape.

    Assertions are host-independent: the measurement ran, every kind has a
    positive rate and a recorded speedup.  The actual >= 1.5x evidence for
    the sparse kind lives in the generated report, where the host and mode
    are recorded alongside the numbers.
    """
    from benchmarks.conftest import once

    payload = once(benchmark, lambda: run_report(smoke=False))
    write_report(payload)
    assert set(payload["kinds"]) == set(KINDS)
    for name, row in payload["kinds"].items():
        assert row["accesses_per_sec"] > 0, name
        assert row["speedup"] is not None and row["speedup"] > 0, name
    assert json.loads(OUTPUT.read_text()) == payload


# ---------------------------------------------------------------- CLI entry

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="short traces / few reps; report is not baseline-comparable",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="override the repetition count (best-of-N)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"report path (default: {OUTPUT})",
    )
    args = parser.parse_args(argv)

    payload = run_report(smoke=args.smoke, reps=args.reps)
    write_report(payload, args.output)
    print(f"wrote {args.output}")
    width = max(len(name) for name in payload["kinds"])
    for name, row in payload["kinds"].items():
        print(
            f"  {name:<{width}}  {row['accesses_per_sec']:>10,.0f} acc/s"
            f"  ({row['speedup']:.2f}x vs baseline)"
        )
    if payload["mode"] == "smoke":
        print("  (smoke mode: speedups are not baseline-comparable)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
