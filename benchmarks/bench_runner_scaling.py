"""Sweep-engine scaling: batched vs per-point dispatch at 1, 2 and 4 workers.

Runs the same provisioning sweep (a subset of the F3 point set) through
:func:`repro.analysis.runner.run_points` with every cache layer cold, at
each worker count twice — once with trace-key-grouped *batched* dispatch
(the default) and once with ``batch_size=1`` (the old per-point dispatch)
— checks that every variant reproduces the serial results exactly, and
writes the timing trajectory plus the measured trace-generation share to
``BENCH_runner.json`` at the repository root so speedups are trackable
across commits.

Speedup expectations scale with the host: on a single-CPU machine the
parallel runs mostly measure process-pool overhead, so the benchmark
asserts determinism and bounded slowdown rather than a fixed speedup.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis import runner
from repro.analysis.experiments import make_config
from repro.common.config import DirectoryKind
from repro.workloads import store as trace_store

from benchmarks.conftest import once

#: Worker counts the trajectory records.
WORKER_COUNTS = [1, 2, 4]

#: A small but representative cold sweep: 2 organizations x 3 ratios x
#: 2 workloads = 12 independent points sharing 2 distinct traces.
SCALING_OPS = 600
SCALING_POINTS = [
    runner.SweepPoint(workload, make_config(kind, ratio), SCALING_OPS, 1)
    for kind in (DirectoryKind.SPARSE, DirectoryKind.STASH)
    for ratio in (1.0, 0.25, 0.125)
    for workload in ("blackscholes-like", "mix")
]

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_runner.json"


def _cold_sweep(workers: int, batch_size: int = 0):
    """One fully cold run: result memo, trace memo and both disk layers off."""
    runner.clear_memo()
    trace_store.clear_memo()
    start = time.perf_counter()
    results = runner.run_points(
        SCALING_POINTS,
        workers=workers,
        cache_enabled=False,
        trace_cache_enabled=False,
        batch_size=batch_size,
    )
    return time.perf_counter() - start, results


def _trace_share():
    """Fraction of a serial cold sweep spent generating workload traces."""
    runner.clear_memo()
    trace_store.clear_memo()
    trace_store.counters.reset()
    start = time.perf_counter()
    runner.run_points(
        SCALING_POINTS, workers=1, cache_enabled=False, trace_cache_enabled=False
    )
    total = time.perf_counter() - start
    share = trace_store.counters.gen_seconds / total if total else 0.0
    return {
        "distinct_traces": trace_store.counters.generated,
        "gen_seconds": round(trace_store.counters.gen_seconds, 4),
        "sweep_seconds": round(total, 4),
        "share": round(share, 4),
    }


def test_runner_scaling(benchmark):
    trajectory = []
    reference = None
    for workers in WORKER_COUNTS:
        batched_seconds, results = _cold_sweep(workers)
        if reference is None:
            reference = results
        else:
            # Parallel batched fan-out must reproduce the serial run exactly.
            assert results == reference, f"workers={workers} diverged from serial"
        entry = {"workers": workers, "seconds": round(batched_seconds, 4)}
        if workers > 1:
            unbatched_seconds, unbatched = _cold_sweep(workers, batch_size=1)
            assert unbatched == reference, (
                f"workers={workers} per-point dispatch diverged from serial"
            )
            entry["unbatched_seconds"] = round(unbatched_seconds, 4)
        trajectory.append(entry)

    serial = trajectory[0]["seconds"]
    payload = {
        "benchmark": "runner_scaling",
        "points": len(SCALING_POINTS),
        "ops_per_core": SCALING_OPS,
        "cpu_count": os.cpu_count(),
        "trace_generation": _trace_share(),
        "trajectory": trajectory,
        "speedup_vs_serial": {
            str(t["workers"]): round(serial / t["seconds"], 3) if t["seconds"] else None
            for t in trajectory
        },
        "batched_vs_unbatched": {
            str(t["workers"]): round(t["unbatched_seconds"] / t["seconds"], 3)
            for t in trajectory
            if "unbatched_seconds" in t and t["seconds"]
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")

    # Timed round for the harness: the serial cold sweep (the baseline the
    # speedups are measured against).
    once(benchmark, lambda: _cold_sweep(1)[0])

    with open(OUTPUT) as handle:
        report_payload = json.load(handle)
    assert report_payload["trajectory"] == trajectory
    # Sanity bound rather than a host-dependent speedup assertion: with
    # multiple CPUs the batched parallel runs should beat serial; on one
    # CPU the pool overhead must still stay within a small constant factor.
    workers_2 = trajectory[1]["seconds"]
    workers_4 = trajectory[-1]["seconds"]
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert workers_4 < serial
    if cpus >= 2:
        assert workers_2 < serial
    else:
        assert workers_4 < serial * 5


def test_sweep_shares_traces(tmp_path):
    """A cold sweep generates each distinct workload trace exactly once."""
    runner.clear_memo()
    trace_store.clear_memo()
    trace_store.counters.reset()
    runner.run_points(SCALING_POINTS, workers=1, cache_dir=tmp_path)
    distinct = len({p.trace_memo_key for p in SCALING_POINTS})
    assert trace_store.counters.generated == distinct


def test_warm_cache_is_near_instant(tmp_path):
    """A warm persistent cache regenerates the sweep without simulating."""
    cache_dir = tmp_path / "cache"
    runner.clear_memo()
    cold, _ = _timed(lambda: runner.run_points(
        SCALING_POINTS, workers=1, cache_dir=cache_dir, cache_enabled=True
    ))
    runner.clear_memo()  # force the disk layer
    warm, _ = _timed(lambda: runner.run_points(
        SCALING_POINTS, workers=1, cache_dir=cache_dir, cache_enabled=True
    ))
    assert warm < cold / 5, f"warm cache not fast: cold={cold:.3f}s warm={warm:.3f}s"


def _timed(fn):
    """(seconds, value) of one call."""
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value
