"""Sweep-engine scaling: wall-time of one cold sweep at 1, 2 and 4 workers.

Runs the same provisioning sweep (a subset of the F3 point set) through
:func:`repro.analysis.runner.run_points` with the caches cold at every
worker count, checks that parallel execution reproduces the serial results
exactly, and writes the timing trajectory to ``BENCH_runner.json`` at the
repository root so speedups are trackable across commits.

Speedup expectations scale with the host: on a single-CPU machine the
parallel runs mostly measure process-pool overhead, so the benchmark
asserts determinism and bounded slowdown rather than a fixed speedup.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis import runner
from repro.analysis.experiments import make_config
from repro.common.config import DirectoryKind

from benchmarks.conftest import once

#: Worker counts the trajectory records.
WORKER_COUNTS = [1, 2, 4]

#: A small but representative cold sweep: 2 organizations x 3 ratios x
#: 2 workloads = 12 independent points.
SCALING_OPS = 600
SCALING_POINTS = [
    runner.SweepPoint(workload, make_config(kind, ratio), SCALING_OPS, 1)
    for kind in (DirectoryKind.SPARSE, DirectoryKind.STASH)
    for ratio in (1.0, 0.25, 0.125)
    for workload in ("blackscholes-like", "mix")
]

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_runner.json"


def _cold_sweep(workers: int):
    """One cold (memo cleared, disk cache off) run of the scaling sweep."""
    runner.clear_memo()
    start = time.perf_counter()
    results = runner.run_points(SCALING_POINTS, workers=workers, cache_enabled=False)
    return time.perf_counter() - start, results


def test_runner_scaling(benchmark):
    trajectory = []
    reference = None
    for workers in WORKER_COUNTS:
        seconds, results = _cold_sweep(workers)
        if reference is None:
            reference = results
        else:
            # Parallel fan-out must reproduce the serial run exactly.
            assert results == reference, f"workers={workers} diverged from serial"
        trajectory.append({"workers": workers, "seconds": round(seconds, 4)})

    serial = trajectory[0]["seconds"]
    payload = {
        "benchmark": "runner_scaling",
        "points": len(SCALING_POINTS),
        "ops_per_core": SCALING_OPS,
        "cpu_count": os.cpu_count(),
        "trajectory": trajectory,
        "speedup_vs_serial": {
            str(t["workers"]): round(serial / t["seconds"], 3) if t["seconds"] else None
            for t in trajectory
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")

    # Timed round for the harness: the serial cold sweep (the baseline the
    # speedups are measured against).
    once(benchmark, lambda: _cold_sweep(1)[0])

    with open(OUTPUT) as handle:
        report_payload = json.load(handle)
    assert report_payload["trajectory"] == trajectory
    # Sanity bound rather than a host-dependent speedup assertion: with
    # multiple CPUs the parallel runs should win; on one CPU the pool
    # overhead must still stay within a small constant factor.
    workers_4 = trajectory[-1]["seconds"]
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert workers_4 < serial
    else:
        assert workers_4 < serial * 5


def test_warm_cache_is_near_instant(tmp_path):
    """A warm persistent cache regenerates the sweep without simulating."""
    cache_dir = tmp_path / "cache"
    runner.clear_memo()
    cold, _ = _timed(lambda: runner.run_points(
        SCALING_POINTS, workers=1, cache_dir=cache_dir, cache_enabled=True
    ))
    runner.clear_memo()  # force the disk layer
    warm, _ = _timed(lambda: runner.run_points(
        SCALING_POINTS, workers=1, cache_dir=cache_dir, cache_enabled=True
    ))
    assert warm < cold / 5, f"warm cache not fast: cold={cold:.3f}s warm={warm:.3f}s"


def _timed(fn):
    """(seconds, value) of one call."""
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value
