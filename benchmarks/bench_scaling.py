"""Weak-scaling benchmark: core count as a sweep axis, 16 to 1024 cores.

The paper's scaling argument (§6) is about what happens to a directory as
the machine grows; this benchmark makes the simulator itself answer at
those sizes.  For each core count it runs the ``weakscale-like`` workload
(fixed ops *per core*, so total work grows with the machine) through the
serial vector engine and through the bank-parallel run-length batching
engine (:mod:`repro.sim.parallel`, ``workers=0`` and ``workers=2``
conservative, plus the optimistic warp + replay speculation layer),
asserts the results are **bit-identical** — per-core cycles, the full
statistics tree and the effective-tracking samples — and records:

* ``accesses_per_sec`` for each engine (simulator throughput), and
* directory ``bytes_per_core`` from the storage model
  (:func:`repro.energy.area.storage_of`) for the full-bit-vector and the
  SCD-style hierarchical sharer formats — the O(N) vs O(sqrt(N) * log N)
  storage story that motivates the scaling work.

The report lands in ``BENCH_scaling.json`` at the repository root.  As
with the other throughput benchmarks, full mode is the comparable one;
``--smoke`` shrinks traces for CI shape-checking.

Run standalone::

    python benchmarks/bench_scaling.py           # full measurement
    python benchmarks/bench_scaling.py --smoke   # CI smoke (short traces)

or through pytest (``make bench-scaling``)::

    pytest benchmarks/bench_scaling.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

_SRC = str(Path(__file__).resolve().parents[1] / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis.experiments import make_config
from repro.common.config import DirectoryKind, SharerFormat
from repro.energy.area import storage_of
from repro.sim.simulator import run_trace
from repro.sim.trace import PackedTrace
from repro.sim.vector import vector_supports
from repro.workloads.suite import build_workload

#: The weak-scaling sweep: 16 cores (the paper's evaluation size) up to
#: 1024 (its scaling-argument regime).
SIZES = (16, 64, 256, 1024)

#: Fixed work per core.  Long streams matter: the conservative engine
#: pays a serial warmup crawl bounded by the slowest-warming core (see
#: docs/PERFORMANCE.md); the speculation layer attacks exactly that, so
#: full mode measures both ends — long streams (``FULL_OPS``) and a
#: short-trace row (``SHORT_OPS``) that is nearly all warmup.
FULL_OPS = 16000
SHORT_OPS = 400
SMOKE_OPS = 400

KIND = DirectoryKind.STASH
RATIO = 0.125
SEED = 1
WORKLOAD = "weakscale-like"
WORKERS = 2

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_scaling.json"


def _result_key(result):
    return (
        result.cycles_per_core,
        sorted(result.stats.items()),
        result.effective_tracking_samples,
    )


def measure_size(num_cores: int, ops_per_core: int) -> dict:
    """One weak-scaling point: both engines, identity-checked, plus storage."""
    config = make_config(KIND, ratio=RATIO, num_cores=num_cores, seed=SEED)
    assert vector_supports(config) is None, num_cores
    trace = PackedTrace.from_trace(
        build_workload(
            WORKLOAD, num_cores, ops_per_core,
            seed=SEED, block_bytes=config.block_bytes,
        )
    )
    total = trace.total_ops()

    rates = {}
    reference_key = None
    runs = (
        ("vector", dict(engine="vector")),
        ("parallel0", dict(engine="parallel", engine_workers=0)),
        (f"parallel{WORKERS}", dict(engine="parallel", engine_workers=WORKERS)),
        (
            "parallel_spec",
            dict(engine="parallel", engine_workers="auto", speculate=True),
        ),
    )
    for name, kwargs in runs:
        start = time.perf_counter()
        result = run_trace(config, trace, **kwargs)
        elapsed = time.perf_counter() - start
        assert result.engine == kwargs["engine"], (num_cores, name)
        key = _result_key(result)
        if reference_key is None:
            reference_key = key
        else:
            assert key == reference_key, (
                f"{name} diverged from vector at {num_cores} cores"
            )
        rates[name] = round(total / elapsed, 1) if elapsed > 0 else None

    storage = {}
    for label, fmt in (
        ("full_bit_vector", SharerFormat.FULL_BIT_VECTOR),
        ("hierarchical", SharerFormat.HIERARCHICAL),
    ):
        cfg = make_config(
            KIND, ratio=RATIO, num_cores=num_cores, seed=SEED,
            sharer_format=fmt,
        )
        estimate = storage_of(cfg)
        storage[label] = {
            "bits_per_entry": estimate.bits_per_entry,
            "bytes_per_core": round(
                estimate.total_bits / 8 / num_cores, 1
            ),
        }

    vector_rate = rates["vector"]
    parallel_rate = rates[f"parallel{WORKERS}"]
    spec_rate = rates["parallel_spec"]
    return {
        "ops_per_core": ops_per_core,
        "total_ops": total,
        "accesses_per_sec": rates,
        "parallel_speedup": (
            round(parallel_rate / vector_rate, 3)
            if vector_rate and parallel_rate else None
        ),
        "speculative_speedup": (
            round(spec_rate / vector_rate, 3)
            if vector_rate and spec_rate else None
        ),
        "directory_storage": storage,
        "bit_identical": True,  # asserted above, recorded for readers
    }


def run_report(smoke: bool = False, ops: int | None = None) -> dict:
    ops = ops if ops is not None else (SMOKE_OPS if smoke else FULL_OPS)
    payload = {
        "benchmark": "weak_scaling",
        "mode": "smoke" if smoke else "full",
        "workload": WORKLOAD,
        "kind": KIND.value,
        "ratio": RATIO,
        "seed": SEED,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "sizes": {
            str(num_cores): measure_size(num_cores, ops)
            for num_cores in SIZES
        },
    }
    if not smoke and ops != SHORT_OPS:
        # The warmup-dominated end: short streams are where the serial
        # warmup crawl used to eat the whole run.
        payload["short_sizes"] = {
            str(num_cores): measure_size(num_cores, SHORT_OPS)
            for num_cores in SIZES
        }
    return payload


def write_report(payload: dict, output: Path = OUTPUT) -> None:
    output.write_text(json.dumps(payload, indent=1) + "\n")


# ---------------------------------------------------------------- pytest entry

def test_weak_scaling(benchmark):
    """Measure the sweep, write BENCH_scaling.json, check the shape.

    Host-independent claims: every size produced positive rates and
    bit-identical results (speculation included), hierarchical storage
    per core shrinks relative to the full bit vector as the machine
    grows, the conservative parallel engine (workers=2) beats the serial
    vector engine at 256 cores, and the speculative engine holds at least
    parity at 1024 cores — the crossover acceptance criterion.
    """
    from benchmarks.conftest import once

    payload = once(benchmark, lambda: run_report(smoke=False))
    write_report(payload)
    assert set(payload["sizes"]) == {str(n) for n in SIZES}
    ratios = []
    for num_cores in SIZES:
        row = payload["sizes"][str(num_cores)]
        assert row["bit_identical"]
        for rate in row["accesses_per_sec"].values():
            assert rate and rate > 0, num_cores
        storage = row["directory_storage"]
        ratios.append(
            storage["hierarchical"]["bytes_per_core"]
            / storage["full_bit_vector"]["bytes_per_core"]
        )
    assert all(a > b for a, b in zip(ratios, ratios[1:]))
    assert payload["sizes"]["256"]["parallel_speedup"] > 1.0
    assert payload["sizes"]["1024"]["speculative_speedup"] >= 1.0
    for row in payload["short_sizes"].values():
        assert row["bit_identical"]
    assert json.loads(OUTPUT.read_text()) == payload


# ---------------------------------------------------------------- CLI entry

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="short traces; numbers are not cross-run comparable",
    )
    parser.add_argument(
        "--ops", type=int, default=None,
        help="override ops per core",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"report path (default: {OUTPUT})",
    )
    args = parser.parse_args(argv)

    payload = run_report(smoke=args.smoke, ops=args.ops)
    write_report(payload, args.output)
    print(f"wrote {args.output}")
    sections = [("sizes", "")]
    if "short_sizes" in payload:
        sections.append(("short_sizes", f" (short, {SHORT_OPS} ops/core)"))
    for section, note in sections:
        if note:
            print(f" {note.strip()}")
        for num_cores in SIZES:
            row = payload[section][str(num_cores)]
            rates = row["accesses_per_sec"]
            storage = row["directory_storage"]
            print(
                f"  {num_cores:>5} cores:"
                f"  vector {rates['vector']:>12,.0f} acc/s"
                f"  parallel(w={WORKERS}) {rates[f'parallel{WORKERS}']:>12,.0f}"
                f"  ({row['parallel_speedup']:.2f}x)"
                f"  spec {rates['parallel_spec']:>12,.0f}"
                f"  ({row['speculative_speedup']:.2f}x)"
                f"  dir B/core: fbv"
                f" {storage['full_bit_vector']['bytes_per_core']:,.0f}"
                f" / hier {storage['hierarchical']['bytes_per_core']:,.0f}"
            )
    if payload["mode"] == "smoke":
        print("  (smoke mode: shape check only, not comparable)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
