"""S1 — sensitivity: does the headline survive a real DRAM timing model?

Re-runs the headline comparison with the banked open-page DRAM model in
place of flat-latency memory.  Coverage-miss refetches have poor row
locality, so if anything the conventional under-provisioned design gets
*more* expensive per miss — the stash advantage must persist.
"""

from dataclasses import replace

from repro.analysis.experiments import (
    ExperimentOutput,
    geomean,
    make_config,
    simulate,
)
from repro.analysis.tables import render_table
from repro.common.config import DirectoryKind, MemoryModel

from benchmarks.conftest import BENCH_OPS, once

WORKLOADS = ["blackscholes-like", "canneal-like", "mix"]


def _dram(config):
    return replace(config, memory_model=MemoryModel.DRAM)


def run_s1():
    rows = []
    for workload in WORKLOADS:
        baseline = simulate(
            workload, _dram(make_config(DirectoryKind.SPARSE, 1.0)), ops_per_core=BENCH_OPS
        )
        sparse = simulate(
            workload, _dram(make_config(DirectoryKind.SPARSE, 0.125)), ops_per_core=BENCH_OPS
        )
        stash = simulate(
            workload, _dram(make_config(DirectoryKind.STASH, 0.125)), ops_per_core=BENCH_OPS
        )
        rows.append(
            [
                workload,
                sparse.normalized_time(baseline),
                stash.normalized_time(baseline),
                baseline.stats.get("system.memory.row_hits", 0.0)
                / max(1.0, baseline.memory_reads),
            ]
        )
    rows.append(
        ["geomean", geomean([r[1] for r in rows]), geomean([r[2] for r in rows]), float("nan")]
    )
    text = render_table(
        ["workload", "sparse@1/8x", "stash@1/8x", "baseline row-hit rate"],
        rows,
        title="S1: headline under the banked open-page DRAM model",
    )
    return ExperimentOutput("S1", "DRAM sensitivity", text, {"rows": rows})


def test_sens1_dram_model(benchmark, report):
    out = once(benchmark, run_s1)
    report(out)
    geomean_row = out.data["rows"][-1]
    assert geomean_row[2] < 1.10          # stash@1/8 still ~ baseline
    assert geomean_row[1] > geomean_row[2]  # sparse@1/8 still worse
