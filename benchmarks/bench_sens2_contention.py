"""S2 — sensitivity: does the headline survive home-bank contention?

With home-bank serialization enabled, every request pays queueing at its
home controller.  The under-provisioned conventional design issues *more*
home traffic (invalidation rounds + refetches), so contention should widen
the gap, not close it.
"""

from dataclasses import replace

from repro.analysis.experiments import (
    ExperimentOutput,
    geomean,
    make_config,
    simulate,
)
from repro.analysis.tables import render_table
from repro.common.config import DirectoryKind, TimingConfig

from benchmarks.conftest import BENCH_OPS, once

WORKLOADS = ["blackscholes-like", "canneal-like", "mix"]
OCCUPANCY = 8  # cycles a request occupies its home bank


def _contended(config):
    return replace(config, timing=TimingConfig(home_occupancy=OCCUPANCY))


def run_s2():
    rows = []
    for workload in WORKLOADS:
        baseline = simulate(
            workload, _contended(make_config(DirectoryKind.SPARSE, 1.0)),
            ops_per_core=BENCH_OPS,
        )
        sparse = simulate(
            workload, _contended(make_config(DirectoryKind.SPARSE, 0.125)),
            ops_per_core=BENCH_OPS,
        )
        stash = simulate(
            workload, _contended(make_config(DirectoryKind.STASH, 0.125)),
            ops_per_core=BENCH_OPS,
        )
        rows.append(
            [
                workload,
                sparse.normalized_time(baseline),
                stash.normalized_time(baseline),
                sparse.stats.get("system.protocol.home_bank_wait_cycles", 0.0),
                stash.stats.get("system.protocol.home_bank_wait_cycles", 0.0),
            ]
        )
    rows.append(
        [
            "geomean",
            geomean([r[1] for r in rows]),
            geomean([r[2] for r in rows]),
            float("nan"),
            float("nan"),
        ]
    )
    text = render_table(
        ["workload", "sparse@1/8x", "stash@1/8x",
         "wait cyc (sparse)", "wait cyc (stash)"],
        rows,
        title=f"S2: headline with home-bank contention (occupancy {OCCUPANCY} cyc)",
    )
    return ExperimentOutput("S2", "Contention sensitivity", text, {"rows": rows})


def test_sens2_home_contention(benchmark, report):
    out = once(benchmark, run_s2)
    report(out)
    geomean_row = out.data["rows"][-1]
    assert geomean_row[2] < 1.10
    assert geomean_row[1] > geomean_row[2]
    # The under-provisioned conventional design queues more at the home.
    per_workload = out.data["rows"][:-1]
    assert sum(r[3] for r in per_workload) > sum(r[4] for r in per_workload)
