"""S3 — statistical robustness: the headline across independent seeds.

Synthetic workloads are stochastic, so a single trace draw could flatter
either design.  This re-runs the headline with five independent seeds and
asserts the separation holds mean-and-spread, not just pointwise.
"""

from repro.analysis.experiments import run_seed_stability

from benchmarks.conftest import once

SEEDS = (1, 2, 3, 4, 5)
OPS = 1200  # x5 seeds x3 configs per workload: keep each run modest


def test_sens3_seed_stability(benchmark, report):
    out = once(benchmark, run_seed_stability, workloads=None, seeds=SEEDS,
               ops_per_core=OPS)
    report(out)
    for name, stats in out.data.items():
        sparse_mean, sparse_std = stats["sparse"]
        stash_mean, stash_std = stats["stash"]
        # Mean separation exceeds the combined spread on pressured workloads.
        if sparse_mean > 1.15:
            assert sparse_mean - stash_mean > sparse_std + stash_std
        # Stash stays near the fully provisioned baseline on every seed.
        assert stash_mean < 1.10
        assert stash_std < 0.05
