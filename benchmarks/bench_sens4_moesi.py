"""S4 — sensitivity: MESI vs MOESI under the stash directory.

MOESI's Owned state removes the LLC writeback on dirty read-sharing (the
owner services readers).  The stash headline must hold under both
protocols, and MOESI should reduce writeback traffic on sharing-heavy
workloads.
"""

from repro.analysis.experiments import (
    ExperimentOutput,
    geomean,
    make_config,
    simulate,
)
from repro.analysis.tables import render_table
from repro.common.config import DirectoryKind

from benchmarks.conftest import BENCH_OPS, once

WORKLOADS = ["fluidanimate-like", "barnes-like", "mix"]


def run_s4():
    rows = []
    for workload in WORKLOADS:
        row = [workload]
        for moesi in (False, True):
            baseline = simulate(
                workload, make_config(DirectoryKind.SPARSE, 1.0, moesi=moesi),
                ops_per_core=BENCH_OPS,
            )
            stash = simulate(
                workload, make_config(DirectoryKind.STASH, 0.125, moesi=moesi),
                ops_per_core=BENCH_OPS,
            )
            row.extend(
                [
                    stash.normalized_time(baseline),
                    stash.traffic_of("writeback"),
                ]
            )
        rows.append(row)
    rows.append(
        ["geomean", geomean([r[1] for r in rows]), float("nan"),
         geomean([r[3] for r in rows]), float("nan")]
    )
    text = render_table(
        ["workload", "stash@1/8 (MESI)", "wb flit-hops",
         "stash@1/8 (MOESI)", "wb flit-hops "],
        rows,
        title="S4: MESI vs MOESI under the stash directory",
    )
    return ExperimentOutput("S4", "MOESI sensitivity", text, {"rows": rows})


def test_sens4_moesi(benchmark, report):
    out = once(benchmark, run_s4)
    report(out)
    geomean_row = out.data["rows"][-1]
    # Headline holds under both protocols.
    assert geomean_row[1] < 1.10 and geomean_row[3] < 1.10
    # MOESI cuts writeback traffic on dirty-sharing workloads.
    per_workload = out.data["rows"][:-1]
    assert sum(r[4] for r in per_workload) < sum(r[2] for r in per_workload)
