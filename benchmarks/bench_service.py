"""Campaign-service throughput: sustained points/s and submit→result latency.

Boots the real asyncio service (:class:`repro.service.ServiceHandle`) on
an ephemeral port twice over one shared cache directory:

* **cold** — a fresh cache: every submitted point simulates, so the run
  measures end-to-end service throughput (HTTP + scheduling + dispatch +
  journal + cache writes) on real work.
* **warm** — a *new* service process over the same store: every point is
  satisfied from the campaign journal, so the run measures the resume /
  cache path alone.

Both runs drive the service through :mod:`repro.service.loadgen` over
actual HTTP and write ``BENCH_service.json`` at the repository root:
sustained points/s, submit→done p50/p99 latency and the warm:cold
throughput ratio.  Warm must beat cold — if replaying a journal is not
faster than simulating, the resume path is broken.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path

from repro.analysis import runner
from repro.service import ServiceConfig, ServiceHandle
from repro.service.loadgen import fetch_metrics, run_load

from benchmarks.conftest import once

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_service.json"

#: Load shape: campaigns x (2 kinds x 2 ratios) points each.
CAMPAIGNS = 3
OPS = 400

#: Thread-pool dispatch: on the small benchmark grid the measurement
#: target is the service machinery, not process-spawn overhead.
BACKEND = "inproc"
WORKERS = 2


def _boot(cache_dir: str) -> ServiceHandle:
    return ServiceHandle(
        ServiceConfig(
            port=0, backend=BACKEND, workers=WORKERS, cache_dir=cache_dir
        )
    ).start()


def _load_pass(cache_dir: str):
    """One service lifetime + load run over ``cache_dir``."""
    handle = _boot(cache_dir)
    try:
        base = f"http://127.0.0.1:{handle.port}"
        report = run_load(base, campaigns=CAMPAIGNS, ops=OPS)
        metrics = fetch_metrics(base)
    finally:
        handle.stop()
    return report, metrics


def test_service_throughput(benchmark):
    runner.clear_memo()
    cache_dir = tempfile.mkdtemp(prefix="bench_service_")
    try:
        cold, _ = once(benchmark, lambda: _load_pass(cache_dir))
        assert cold.failed == 0, "cold load run had failed points"
        assert cold.computed == cold.points, "cold run should simulate everything"

        # A new process over the same store: the journal satisfies it all.
        runner.clear_memo()
        warm, warm_metrics = _load_pass(cache_dir)
        assert warm.failed == 0, "warm load run had failed points"
        assert warm.computed == 0, "warm run should not re-simulate"
        assert warm.resumed == warm.points, "warm run should resume from journal"
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    payload = {
        "benchmark": "service_throughput",
        "campaigns": CAMPAIGNS,
        "points_per_campaign": cold.points // max(1, cold.campaigns),
        "ops_per_core": OPS,
        "backend": BACKEND,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "cold": cold.to_dict(),
        "warm": warm.to_dict(),
        "warm_vs_cold_throughput": (
            round(warm.points_per_second / cold.points_per_second, 3)
            if cold.points_per_second
            else None
        ),
    }
    OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")

    # The acceptance bar: serving from the journal must beat simulating.
    assert warm.points_per_second > cold.points_per_second, (
        f"warm throughput {warm.points_per_second:.2f} pts/s not above cold "
        f"{cold.points_per_second:.2f} pts/s"
    )
    # The metrics endpoint survived the whole run and still parses; the
    # per-kind throughput counters saw every computed point.
    completed = warm_metrics.get("repro_points_completed_total", {})
    assert sum(completed.values()) >= cold.points
