"""T1 — the simulated system configuration table."""

from repro.analysis.experiments import run_config_table

from benchmarks.conftest import once


def test_table1_system_configuration(benchmark, report):
    out = once(benchmark, run_config_table, num_cores=16)
    report(out)
    assert out.data["config"]["cores"] == "16"
