"""T2 — directory storage per organization and provisioning ratio.

Reproduces the abstract's storage claim: a stash directory at R=1/8 (entry
array plus one stash bit per LLC line) occupies a small fraction of the
fully provisioned conventional sparse directory it performance-matches.
"""

from repro.analysis.experiments import run_storage_table

from benchmarks.conftest import once


def test_table2_directory_storage(benchmark, report):
    out = once(benchmark, run_storage_table, num_cores=16)
    report(out)
    # Shape check: stash@1/8 total storage well under sparse@1x.
    assert out.data["stash@0.125"] < 0.3 * out.data["sparse@1.0"]
