"""Vector-engine throughput: interp vs vector accesses/sec per kind.

Measures the end-to-end trace replay (16-core ``mix`` workload through
``run_trace``) once on the interpreter and once on the vectorized
table-driven engine (``engine="vector"``), for every directory
organization the flat engine supports.  The report lands in
``BENCH_vector.json`` at the repository root.

The two engines produce bit-identical results (see
``tests/integration/test_golden_vector.py`` and ``repro fuzz --engine``),
so the speedup column is a pure like-for-like throughput ratio.  As with
the hot-path benchmark, throughput is the **best of several repetitions**
and only full mode is meaningful for cross-commit comparison; ``--smoke``
exists for CI shape-checking.

Run standalone::

    python benchmarks/bench_vector.py            # full measurement
    python benchmarks/bench_vector.py --smoke    # CI smoke (short traces)

or through pytest (``make bench-vector``)::

    pytest benchmarks/bench_vector.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

# Standalone bootstrap: make src/ importable when run as a script without
# PYTHONPATH (the pytest path already has it configured).
_SRC = str(Path(__file__).resolve().parents[1] / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis.experiments import make_config
from repro.common.config import DirectoryKind
from repro.sim.simulator import run_trace
from repro.sim.trace import PackedTrace
from repro.sim.vector import vector_supports
from repro.workloads.suite import build_workload

#: Organizations with a flat view (the vector engine's whole domain).
KINDS = {
    "sparse": DirectoryKind.SPARSE,
    "ideal": DirectoryKind.IDEAL,
    "stash": DirectoryKind.STASH,
}

#: Full-mode measurement parameters — identical to the hot-path benchmark
#: (same workload, trace length, seed and provisioning ratio) so the
#: interpreter column here lines up with BENCH_hotpath.json.
FULL_OPS = 3000
FULL_REPS = 7

#: Smoke-mode parameters: enough to exercise both engines on every kind.
SMOKE_OPS = 400
SMOKE_REPS = 2

RATIO = 0.5
SEED = 1
WORKLOAD = "mix"

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_vector.json"

#: Why the speedup plateaus where it does (recorded in the report so the
#: number is read in context): both engines are pure CPython, and the
#: vector engine's floor is the interpreter's *decision structure*, not
#: its arithmetic.  Measured per-access-class costs on the reference host
#: put the achievable ratio near 3.3x for L1 hits and 4.3-4.5x for
#: misses/upgrades; the blended mix-workload speedup therefore lands in
#: the 2-3x band regardless of further micro-optimization.
CEILING_NOTE = (
    "Both engines are pure CPython; the vector engine removes the "
    "interpreter's object graph and message dispatch but must keep the "
    "bit-exact per-operation decision sequence, which bounds per-class "
    "speedups near 3.3x (L1 hits) and 4.3-4.5x (misses/upgrades). The "
    "blended speedup on the mix workload is the mediant of those ratios."
)


def measure_kind(kind: DirectoryKind, ops_per_core: int, reps: int) -> dict:
    """Best-of-``reps`` accesses/sec for one kind, on both engines.

    Each repetition rebuilds the engine state (construction is part of the
    cost a sweep pays per point) and replays the same prebuilt packed
    trace — the sweep engine's native input format.
    """
    config = make_config(kind, ratio=RATIO)
    assert vector_supports(config) is None, kind
    trace = build_workload(
        WORKLOAD, config.num_cores, ops_per_core,
        seed=SEED, block_bytes=config.block_bytes,
    )
    packed = PackedTrace.from_trace(trace)
    total = packed.total_ops()
    rates = {}
    for engine in ("interp", "vector"):
        best = 0.0
        for _ in range(reps):
            start = time.perf_counter()
            result = run_trace(config, packed, engine=engine)
            elapsed = time.perf_counter() - start
            if elapsed > 0:
                best = max(best, total / elapsed)
        assert result.engine == engine, (kind, engine, result.engine)
        rates[engine] = round(best, 1)
    interp, vector = rates["interp"], rates["vector"]
    return {
        "interp_accesses_per_sec": interp,
        "vector_accesses_per_sec": vector,
        "speedup": round(vector / interp, 3) if interp else None,
    }


def run_report(smoke: bool = False, reps: int | None = None) -> dict:
    """Measure every flat kind on both engines; return the report payload."""
    ops = SMOKE_OPS if smoke else FULL_OPS
    reps = reps if reps is not None else (SMOKE_REPS if smoke else FULL_REPS)
    num_cores = make_config(DirectoryKind.SPARSE, ratio=RATIO).num_cores
    kinds = {
        name: measure_kind(kind, ops, reps) for name, kind in KINDS.items()
    }
    return {
        "benchmark": "vector_engine_throughput",
        "mode": "smoke" if smoke else "full",
        "workload": WORKLOAD,
        "num_cores": num_cores,
        "ops_per_core": ops,
        "ratio": RATIO,
        "seed": SEED,
        "reps": reps,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "ceiling_note": CEILING_NOTE,
        "kinds": kinds,
    }


def write_report(payload: dict, output: Path = OUTPUT) -> None:
    output.write_text(json.dumps(payload, indent=1) + "\n")


# ---------------------------------------------------------------- pytest entry

def test_vector_throughput(benchmark):
    """Measure both engines, write BENCH_vector.json, check the shape.

    The host-independent claims: the measurement ran on every flat kind,
    both engines produced positive rates, and the vector engine was
    faster than the interpreter on each (the exact factor is recorded in
    the report alongside the host and mode).
    """
    from benchmarks.conftest import once

    payload = once(benchmark, lambda: run_report(smoke=False))
    write_report(payload)
    assert set(payload["kinds"]) == set(KINDS)
    for name, row in payload["kinds"].items():
        assert row["interp_accesses_per_sec"] > 0, name
        assert row["vector_accesses_per_sec"] > 0, name
        assert row["speedup"] is not None and row["speedup"] > 1.0, name
    assert json.loads(OUTPUT.read_text()) == payload


# ---------------------------------------------------------------- CLI entry

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="short traces / few reps; numbers are not cross-run comparable",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="override the repetition count (best-of-N)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT,
        help=f"report path (default: {OUTPUT})",
    )
    args = parser.parse_args(argv)

    payload = run_report(smoke=args.smoke, reps=args.reps)
    write_report(payload, args.output)
    print(f"wrote {args.output}")
    width = max(len(name) for name in payload["kinds"])
    for name, row in payload["kinds"].items():
        print(
            f"  {name:<{width}}  interp {row['interp_accesses_per_sec']:>10,.0f}"
            f"  vector {row['vector_accesses_per_sec']:>10,.0f} acc/s"
            f"  ({row['speedup']:.2f}x)"
        )
    if payload["mode"] == "smoke":
        print("  (smoke mode: throughput is not cross-run comparable)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
