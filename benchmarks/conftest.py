"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table/figure from DESIGN.md's experiment
index and prints it (bypassing pytest's capture so the report lands in the
terminal / CI log).  Simulation results are memoized process-wide, so
benchmarks that share sweep points do not re-simulate them.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

#: Per-core trace length for benchmark-scale runs (larger than unit tests,
#: small enough that the whole harness finishes in minutes of pure Python).
BENCH_OPS = 2000

#: Provisioning ratios shared by the sweep benchmarks (kept identical across
#: figures so the memoized runs are reused).
BENCH_RATIOS = [1.0, 0.5, 0.25, 0.125]


@pytest.fixture
def report(capsys):
    """Print an ExperimentOutput outside pytest's capture."""

    def _report(out):
        with capsys.disabled():
            out.show()

    return _report


def once(benchmark, fn, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer and return it.

    Experiment sweeps are long-running and internally memoized, so repeated
    timing rounds would measure the cache; a single timed round records the
    honest cost of regenerating the experiment.
    """
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
