"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table/figure from DESIGN.md's experiment
index and prints it (bypassing pytest's capture so the report lands in the
terminal / CI log).  Simulation results are memoized process-wide, so
benchmarks that share sweep points do not re-simulate them.

Run with::

    pytest benchmarks/ --benchmark-only

Sweep execution goes through :mod:`repro.analysis.runner`: set
``BENCH_WORKERS=N`` to fan sweep points across N worker processes, and
``BENCH_CACHE_DIR=PATH`` to enable the persistent result cache between
harness runs (off by default so timings stay honest).  Runner hit-rate and
wall-time counters are printed when the session ends.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import runner

#: Per-core trace length for benchmark-scale runs (larger than unit tests,
#: small enough that the whole harness finishes in minutes of pure Python).
BENCH_OPS = 2000

#: Provisioning ratios shared by the sweep benchmarks (kept identical across
#: figures so the memoized runs are reused).
BENCH_RATIOS = [1.0, 0.5, 0.25, 0.125]


@pytest.fixture(scope="session", autouse=True)
def _sweep_engine(request):
    """Configure the sweep runner for the whole benchmark session.

    Workers come from ``BENCH_WORKERS`` (default 1); the persistent cache
    is enabled only when ``BENCH_CACHE_DIR`` names a directory, so default
    runs always measure real simulation cost.
    """
    cache_dir = os.environ.get("BENCH_CACHE_DIR")
    runner.configure(
        workers=int(os.environ.get("BENCH_WORKERS", "1") or "1"),
        cache_dir=cache_dir,
        cache_enabled=bool(cache_dir),
    )
    yield
    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    with capmanager.global_and_fixture_disabled():
        print()
        print(runner.counters_summary())


@pytest.fixture
def report(capsys):
    """Print an ExperimentOutput outside pytest's capture."""

    def _report(out):
        with capsys.disabled():
            out.show()

    return _report


def once(benchmark, fn, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer and return it.

    Experiment sweeps are long-running and internally memoized, so repeated
    timing rounds would measure the cache; a single timed round records the
    honest cost of regenerating the experiment.
    """
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
