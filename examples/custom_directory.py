#!/usr/bin/env python
"""Extend the library: plug a custom directory organization into the system.

Demonstrates the extension seam a downstream researcher uses: subclass
:class:`~repro.directory.sparse.SparseDirectory` (or implement
:class:`~repro.directory.base.Directory` from scratch), wire it into a
:class:`~repro.coherence.protocol.CoherentSystem`, and compare it against
the built-in organizations under the same trace.

The example implements **random-stash**: like the paper's stash directory,
it stashes private victims, but picks the victim uniformly at random among
eligible entries instead of LRU — a five-line design-space probe that shows
how much of the stash win depends on victim recency.
"""

from typing import Tuple

from repro import DirectoryKind, Trace, build_workload, make_config
from repro.analysis.tables import render_table
from repro.cache.l1 import L1Cache
from repro.cache.llc import SharedLLC
from repro.coherence.protocol import CoherentSystem
from repro.common.config import DirectoryKind as Kind
from repro.common.rng import DeterministicRng
from repro.common.stats import StatGroup
from repro.core.stash_policy import is_stash_eligible
from repro.directory.base import EvictionAction
from repro.directory.sparse import SparseDirectory
from repro.mem.main_memory import MainMemory
from repro.noc.network import Network
from repro.sim.simulator import Simulator, run_trace


class RandomStashDirectory(SparseDirectory):
    """Stash directory variant: random victim among stash-eligible entries."""

    def __init__(self, config, num_cores, entries, rng, stats):
        super().__init__(config, num_cores, entries, rng, stats)
        self._victim_rng = rng.spawn(999)
        self.eligibility = config.stash_eligibility  # marks us stash-capable

    def choose_victim(self, dirset) -> Tuple[int, EvictionAction]:
        eligible = [
            way
            for way, entry in enumerate(dirset.entries)
            if entry is not None and is_stash_eligible(entry, self.eligibility)
        ]
        if eligible:
            return self._victim_rng.choice(eligible), EvictionAction.STASH
        return dirset.policy.victim(), EvictionAction.INVALIDATE


def build_custom_system(config) -> CoherentSystem:
    """build_system, but with the custom directory dropped in."""
    stats = StatGroup("system")
    rng = DeterministicRng(config.seed)
    l1s = [
        L1Cache(core, config.l1, rng.spawn(1000 + core), stats.child(f"l1.{core}"))
        for core in range(config.num_cores)
    ]
    llc = SharedLLC(config.llc, config.num_cores, rng.spawn(2000), stats.child("llc"))
    directory = RandomStashDirectory(
        config.directory, config.num_cores, config.directory_entries,
        rng.spawn(3000), stats.child("directory"),
    )
    network = Network(config.noc, stats.child("noc"))
    memory = MainMemory(config.timing, stats.child("memory"))
    return CoherentSystem(config, l1s, llc, directory, network, memory, stats)


def main() -> None:
    import sys

    workload = sys.argv[1] if len(sys.argv) > 1 else "mix"
    ops = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    trace: Trace = build_workload(workload, 16, ops, seed=1)

    # The custom system is configured "as stash" so the protocol engages
    # the stash-bit / discovery machinery.
    config = make_config(Kind.STASH, ratio=0.125)

    baseline = run_trace(make_config(DirectoryKind.SPARSE, ratio=1.0), trace)
    lru_stash = run_trace(config, trace)
    random_stash = Simulator(build_custom_system(config)).run(trace)

    rows = []
    for name, result in [
        ("sparse @ 1x", baseline),
        ("stash (LRU victim) @ 1/8x", lru_stash),
        ("random-stash @ 1/8x", random_stash),
    ]:
        rows.append(
            [
                name,
                result.normalized_time(baseline),
                result.stash_evictions,
                result.discovery_per_kilo,
                result.false_discovery_rate,
            ]
        )
    print(
        render_table(
            ["configuration", "norm. time", "stashes", "discoveries/1k", "false rate"],
            rows,
            title=f"Custom directory organization on '{workload}'",
        )
    )
    print()
    print(
        "Random victim selection stashes blocks that are still hot, so more\n"
        "discoveries fire; LRU stashing (the paper's choice) prefers entries\n"
        "whose blocks are least likely to be touched again soon."
    )


if __name__ == "__main__":
    main()
