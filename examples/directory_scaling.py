#!/usr/bin/env python
"""Directory provisioning sweep — a scriptable version of figure F3.

Sweeps the coverage ratio R for every directory organization over one
workload, printing normalized execution time, directory-induced
invalidations and network traffic.  This is the exploration loop a
downstream user runs when sizing a directory for their own workload.

Usage::

    python examples/directory_scaling.py [workload] [ops_per_core]
"""

import sys

from repro import DirectoryKind, make_config, simulate
from repro.analysis.figures import render_grouped_bars, render_series

RATIOS = [2.0, 1.0, 0.5, 0.25, 0.125, 0.0625]
KINDS = [DirectoryKind.SPARSE, DirectoryKind.CUCKOO, DirectoryKind.STASH]


def label(ratio: float) -> str:
    return f"{ratio:g}x" if ratio >= 1 else f"1/{round(1 / ratio)}x"


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "canneal-like"
    ops = int(sys.argv[2]) if len(sys.argv) > 2 else 2000

    baseline = simulate(workload, make_config(DirectoryKind.SPARSE, 1.0), ops_per_core=ops)

    time_series = {}
    inval_series = {}
    traffic_series = {}
    for kind in KINDS:
        times, invals, traffic = [], [], []
        for ratio in RATIOS:
            result = simulate(workload, make_config(kind, ratio), ops_per_core=ops)
            times.append(result.normalized_time(baseline))
            invals.append(result.dir_induced_invals_per_kilo)
            traffic.append(result.normalized_traffic(baseline))
        time_series[kind.value] = times
        inval_series[kind.value] = invals
        traffic_series[kind.value] = traffic

    x = [label(r) for r in RATIOS]
    print(render_series(f"{workload}: normalized execution time vs R", "R", x, time_series))
    print()
    print(render_series(f"{workload}: invalidations / 1k accesses vs R", "R", x, inval_series))
    print()
    print(render_series(f"{workload}: normalized NoC traffic vs R", "R", x, traffic_series))
    print()
    print(render_grouped_bars(f"{workload}: normalized time (bars)", x, time_series))


if __name__ == "__main__":
    main()
