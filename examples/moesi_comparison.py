#!/usr/bin/env python
"""MESI vs MOESI under the stash directory.

MOESI's Owned state lets a dirty owner service readers directly instead of
writing back to the LLC on every downgrade.  This script runs
sharing-heavy workloads under both protocols at R=1/8 and prints where the
writeback traffic goes, plus the Owned-state event counts — a compact view
of what the protocol option changes (sensitivity study S4 asserts the
trends).

Usage::

    python examples/moesi_comparison.py [ops_per_core]
"""

import sys

from repro import DirectoryKind, make_config, simulate
from repro.analysis.tables import render_table

WORKLOADS = ["fluidanimate-like", "barnes-like", "locks-like", "mix"]


def main() -> None:
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 2000

    rows = []
    for workload in WORKLOADS:
        row = [workload]
        for moesi in (False, True):
            baseline = simulate(
                workload,
                make_config(DirectoryKind.SPARSE, 1.0, moesi=moesi),
                ops_per_core=ops,
            )
            stash = simulate(
                workload,
                make_config(DirectoryKind.STASH, 0.125, moesi=moesi),
                ops_per_core=ops,
            )
            row.extend(
                [
                    stash.normalized_time(baseline),
                    stash.traffic_of("writeback"),
                    stash.stats.get("system.protocol.owned_transitions", 0.0),
                ]
            )
        rows.append(row)

    print(
        render_table(
            [
                "workload",
                "MESI time", "MESI wb flits", "(O evts)",
                "MOESI time", "MOESI wb flits", "O transitions",
            ],
            rows,
            title="MESI vs MOESI: stash @ 1/8 (times normalized per-protocol)",
        )
    )
    print()
    print(
        "Owned transitions replace downgrade writebacks: the dirty line\n"
        "stays at its owner, so MOESI's writeback flit-hops drop wherever\n"
        "dirty data is read-shared (producer/consumer, migratory, locks)."
    )


if __name__ == "__main__":
    main()
