#!/usr/bin/env python
"""Deep-dive analysis: link-level NoC traffic and DRAM row behaviour.

Runs the same workload twice — conventional sparse and stash, both at
R=1/8 — with (a) per-link traffic attribution enabled and (b) the banked
open-page DRAM model, then prints:

* the hottest mesh links and a per-tile utilization heatmap (where do the
  discovery broadcasts and invalidations actually land?), and
* the DRAM row-hit rate (coverage-miss refetches have worse row locality
  than demand streams).

Usage::

    python examples/noc_and_dram_analysis.py [workload] [ops_per_core]
"""

import sys
from dataclasses import replace

from repro import DirectoryKind, build_workload, make_config
from repro.analysis.tables import render_table
from repro.common.config import MemoryModel, NoCConfig
from repro.sim.simulator import Simulator
from repro.sim.system import build_system


def run(kind, workload, ops):
    config = make_config(kind, ratio=0.125)
    config = replace(
        config,
        noc=NoCConfig(mesh_width=4, mesh_height=4, track_links=True),
        memory_model=MemoryModel.DRAM,
    )
    trace = build_workload(workload, config.num_cores, ops, seed=1)
    system = build_system(config)
    result = Simulator(system).run(trace)
    return system, result


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mix"
    ops = int(sys.argv[2]) if len(sys.argv) > 2 else 2000

    for kind in (DirectoryKind.SPARSE, DirectoryKind.STASH):
        system, result = run(kind, workload, ops)
        elapsed = float(result.execution_time)
        links = system.network.links
        print(f"=== {kind.value} @ R=1/8 on {workload} ===")
        rows = [
            [f"{src}->{dst}", flits, flits / elapsed]
            for (src, dst), flits in links.hottest_links(5)
        ]
        print(render_table(["link", "flits", "flits/cycle"], rows,
                           title="hottest mesh links"))
        print()
        print(links.heatmap(elapsed))
        print()
        dram = system.memory.dram
        print(
            f"DRAM: {dram.reads():.0f} reads, row-hit rate "
            f"{dram.row_hit_rate():.2%}, max link utilization "
            f"{links.max_utilization(elapsed):.3f}"
        )
        print()


if __name__ == "__main__":
    main()
