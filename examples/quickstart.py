#!/usr/bin/env python
"""Quickstart: reproduce the paper's headline claim in ~a minute.

Builds three 16-core systems — a fully provisioned conventional sparse
directory, the same design squeezed to 1/8 of the entries, and a Stash
Directory at 1/8 — runs the same workload on each, and prints the
normalized execution times.  Expected outcome (the abstract's claim):

* sparse @ 1/8 is clearly slower than sparse @ 1x (coverage misses), and
* stash  @ 1/8 is within a few percent of sparse @ 1x.

Usage::

    python examples/quickstart.py [workload] [ops_per_core]
"""

import sys

from repro import DirectoryKind, make_config, simulate
from repro.analysis.tables import render_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mix"
    ops = int(sys.argv[2]) if len(sys.argv) > 2 else 3000

    print(f"workload={workload}, {ops} ops/core on 16 cores\n")

    configs = {
        "sparse @ 1x   (baseline)": make_config(DirectoryKind.SPARSE, ratio=1.0),
        "sparse @ 1/8x (too small)": make_config(DirectoryKind.SPARSE, ratio=0.125),
        "stash  @ 1/8x (the paper)": make_config(DirectoryKind.STASH, ratio=0.125),
    }

    results = {name: simulate(workload, cfg, ops_per_core=ops) for name, cfg in configs.items()}
    baseline = results["sparse @ 1x   (baseline)"]

    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.config.directory_entries,
                result.normalized_time(baseline),
                result.dir_induced_invals_per_kilo,
                result.discovery_per_kilo,
            ]
        )
    print(
        render_table(
            ["configuration", "entries", "norm. time", "invals/1k", "discoveries/1k"],
            rows,
            title="Stash Directory quickstart (lower time is better)",
        )
    )

    stash = results["stash  @ 1/8x (the paper)"]
    sparse_small = results["sparse @ 1/8x (too small)"]
    print()
    print(
        f"stash @ 1/8 runs at {stash.normalized_time(baseline):.3f}x the baseline "
        f"(conventional @ 1/8: {sparse_small.normalized_time(baseline):.3f}x)"
    )


if __name__ == "__main__":
    main()
