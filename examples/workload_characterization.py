#!/usr/bin/env python
"""Characterize the workload suite — why stashing works.

Prints each workload's sharing profile (the F1 motivation data) and then
runs each on a stash directory at R=1/8 to show how the private-block
fraction predicts the stash rate and the discovery overhead.

Usage::

    python examples/workload_characterization.py [ops_per_core]
"""

import sys

from repro import DirectoryKind, build_workload, make_config, simulate, workload_names
from repro.analysis.tables import render_table
from repro.workloads.characterize import histogram_buckets, profile_trace


def main() -> None:
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 2000

    profile_rows = []
    behaviour_rows = []
    for name in workload_names():
        trace = build_workload(name, 16, ops, seed=1)
        profile = profile_trace(trace, 64, name=name)
        buckets = histogram_buckets(profile, 16)
        profile_rows.append(
            [name, profile.unique_blocks, profile.private_block_fraction,
             profile.write_fraction] + buckets
        )

        result = simulate(name, make_config(DirectoryKind.STASH, 0.125), ops_per_core=ops)
        behaviour_rows.append(
            [
                name,
                result.stash_evictions,
                result.dir_induced_invals_per_kilo,
                result.discovery_per_kilo,
                result.false_discovery_rate,
            ]
        )

    print(
        render_table(
            ["workload", "blocks", "private", "writes",
             "deg1", "deg2", "deg3-4", "deg5-8", "deg>8"],
            profile_rows,
            title="Sharing profile (fractions of unique blocks)",
        )
    )
    print()
    print(
        render_table(
            ["workload", "stash evictions", "invals/1k", "discoveries/1k", "false rate"],
            behaviour_rows,
            title="Stash directory behaviour at R=1/8",
        )
    )
    print()
    print(
        "Reading: high private fractions mean almost every directory conflict\n"
        "finds a stashable victim, so invalidations stay near zero; discovery\n"
        "traffic tracks how often other cores touch previously stashed blocks."
    )


if __name__ == "__main__":
    main()
