"""repro — reproduction of "Stash Directory: A scalable directory for
many-core coherence" (Demetriades & Cho, HPCA 2014).

Public API tour:

* :func:`repro.sim.build_system` / :func:`repro.sim.run_trace` — build a
  configured CMP and run a trace on it.
* :class:`repro.common.SystemConfig` — the one config object (cores, caches,
  directory organization and provisioning ratio, NoC, timing, energy).
* :class:`repro.core.StashDirectory` + :class:`repro.core.DiscoveryEngine` —
  the paper's contribution.
* :mod:`repro.workloads` — the synthetic workload suite standing in for
  PARSEC/SPLASH-2.
* :mod:`repro.analysis` — experiment runners regenerating every table and
  figure (see DESIGN.md / EXPERIMENTS.md).

Quickstart::

    from repro import DirectoryKind, make_config, simulate

    sparse = simulate("mix", make_config(DirectoryKind.SPARSE, ratio=1.0))
    stash = simulate("mix", make_config(DirectoryKind.STASH, ratio=0.125))
    print(stash.normalized_time(sparse))  # ~1.0: the paper's headline
"""

from .analysis.experiments import make_config, run_headline, simulate
from .common.config import (
    CacheConfig,
    CoherenceProtocol,
    DirectoryConfig,
    DirectoryKind,
    EnergyConfig,
    NoCConfig,
    SharerFormat,
    StashEligibility,
    SystemConfig,
    TimingConfig,
)
from .sim.results import SimulationResult
from .sim.simulator import Simulator, run_trace
from .sim.system import build_system
from .sim.trace import Trace, TraceRecord
from .workloads.suite import build_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CoherenceProtocol",
    "DirectoryConfig",
    "DirectoryKind",
    "EnergyConfig",
    "NoCConfig",
    "SharerFormat",
    "SimulationResult",
    "Simulator",
    "StashEligibility",
    "SystemConfig",
    "TimingConfig",
    "Trace",
    "TraceRecord",
    "__version__",
    "build_system",
    "build_workload",
    "make_config",
    "run_headline",
    "run_trace",
    "simulate",
    "workload_names",
]
