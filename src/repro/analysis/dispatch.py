"""Pluggable dispatch backends for sweep-batch execution.

The sweep engine (:mod:`repro.analysis.runner`) and the campaign service
(:mod:`repro.service`) both execute the same unit of work: a *batch* of
:class:`~repro.analysis.runner.SweepPoint` objects, grouped by trace key
so each dispatch pays trace acquisition and IPC once.  This module is the
seam between "what to run" and "where to run it":

* :class:`DispatchBackend` — the ABC.  ``submit(fn, batch)`` returns a
  :class:`concurrent.futures.Future` of the batch's outputs; callers
  consume completions in any order (work-stealing falls out of the pool
  semantics: idle workers pull the next queued batch).
* :class:`SerialBackend` — runs the batch inline during ``submit`` (the
  zero-overhead path the runner uses for ``workers <= 1``).
* :class:`InProcessBackend` — a thread pool.  GIL-bound for pure-Python
  simulation, but batches complete concurrently with the caller, which is
  what the asyncio campaign service needs for observed (in-process-only)
  points and for tests that want pool semantics without process spawn.
* :class:`ProcessPoolBackend` — a :class:`ProcessPoolExecutor`; the true
  parallel path.  ``shutdown(cancel_pending=True)`` cancels every queued
  batch **and terminates running workers**, so a blocked or long-running
  worker can never wedge a Ctrl-C.

:func:`run_batches` is the synchronous driver the runner uses: submit
every batch, fold completions through a callback as they land, and on
``KeyboardInterrupt``/``SystemExit`` cancel + drain the backend before
re-raising — completed batches keep their (atomically written) cache
entries, pending ones simply never run.  :func:`graceful_sigterm` routes
SIGTERM through the same path so ``kill <pid>`` behaves like Ctrl-C.
"""

from __future__ import annotations

import signal
import threading
from abc import ABC, abstractmethod
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "BACKENDS",
    "DispatchBackend",
    "InProcessBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "graceful_sigterm",
    "make_backend",
    "run_batches",
]


class DispatchBackend(ABC):
    """Executes batches of sweep work; the one seam runner and service share.

    A backend is cheap to construct; resources (threads, processes) are
    created lazily on first ``submit`` (or explicitly via :meth:`start`)
    and released by :meth:`shutdown`.  ``fn`` must be picklable for the
    process-pool backend — the runner passes its top-level batch worker.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))
        self._in_flight = 0
        self._lock = threading.Lock()

    def start(self) -> None:
        """Eagerly create the execution resources (optional)."""

    @abstractmethod
    def submit(self, fn: Callable, batch: Sequence) -> Future:
        """Schedule ``fn(batch)``; returns a Future of its return value."""

    def shutdown(self, cancel_pending: bool = False) -> None:
        """Release resources; ``cancel_pending`` also drops queued batches."""

    # -- introspection (metrics) -------------------------------------------

    @property
    def in_flight(self) -> int:
        """Batches submitted but not yet completed."""
        return self._in_flight

    @property
    def utilization(self) -> float:
        """Fraction of workers currently busy (in-flight / workers, capped)."""
        return min(1.0, self._in_flight / self.workers) if self.workers else 0.0

    def describe(self) -> Dict[str, object]:
        """JSON-able backend description (service status endpoint)."""
        return {"backend": self.name, "workers": self.workers}

    # -- shared bookkeeping -------------------------------------------------

    def _track(self, future: Future) -> Future:
        with self._lock:
            self._in_flight += 1

        def _done(_):
            with self._lock:
                self._in_flight -= 1

        future.add_done_callback(_done)
        return future


class SerialBackend(DispatchBackend):
    """Runs each batch inline during ``submit`` (no concurrency, no pool).

    ``KeyboardInterrupt``/``SystemExit`` raised by the batch propagate out
    of ``submit`` — an inline interrupt should stop the caller, not be
    smuggled into a Future nobody is awaiting yet.
    """

    name = "serial"

    def submit(self, fn: Callable, batch: Sequence) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(batch))
        except Exception as exc:
            future.set_exception(exc)
        return future


class InProcessBackend(DispatchBackend):
    """Thread-pool backend: concurrent completion without process spawn.

    Simulation is pure Python, so threads do not add CPU parallelism; the
    value is asynchrony (the campaign service's event loop keeps serving
    while batches run) and shared memory (observed points can hand their
    live :class:`~repro.obs.Observer` back to the caller).
    """

    name = "inproc"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def start(self) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-dispatch"
            )

    def submit(self, fn: Callable, batch: Sequence) -> Future:
        self.start()
        assert self._pool is not None
        return self._track(self._pool.submit(fn, batch))

    def shutdown(self, cancel_pending: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=not cancel_pending, cancel_futures=cancel_pending)


class ProcessPoolBackend(DispatchBackend):
    """Process-pool backend: the real parallel path.

    ``shutdown(cancel_pending=True)`` is the graceful-interrupt discipline:
    queued batches are cancelled, then every live worker process is
    terminated — a worker blocked in a long simulation (or wedged outright)
    cannot stall the shutdown.  Results already handed back through
    completed futures are unaffected.
    """

    name = "pool"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    def start(self) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def submit(self, fn: Callable, batch: Sequence) -> Future:
        self.start()
        assert self._pool is not None
        return self._track(self._pool.submit(fn, batch))

    def shutdown(self, cancel_pending: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if not cancel_pending:
            pool.shutdown(wait=True)
            return
        # Snapshot the worker table first: executor.shutdown() nulls
        # ``_processes`` even with wait=False.
        processes = dict(getattr(pool, "_processes", None) or {})
        pool.shutdown(wait=False, cancel_futures=True)
        # Drain: kill live workers so a blocked simulation cannot hold the
        # interpreter (the executor would otherwise join them at exit).
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError):
                pass
        for process in list(processes.values()):
            try:
                process.join(timeout=5.0)
            except (OSError, ValueError, AssertionError):
                pass


#: Backend registry: name -> class (CLI ``repro serve --backend``).
BACKENDS = {
    SerialBackend.name: SerialBackend,
    InProcessBackend.name: InProcessBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def make_backend(name: str, workers: int = 1) -> DispatchBackend:
    """Instantiate a registered backend by name."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown dispatch backend {name!r}; known: {sorted(BACKENDS)}"
        ) from None
    return cls(workers)


@contextmanager
def graceful_sigterm():
    """Route SIGTERM to ``KeyboardInterrupt`` for the enclosed block.

    Only effective in the main thread of the main interpreter (signal
    handlers cannot be installed elsewhere); a no-op otherwise.  The
    previous handler is restored on exit.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    try:
        previous = signal.signal(signal.SIGTERM, _raise_interrupt)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _raise_interrupt(signum, frame):
    raise KeyboardInterrupt


def run_batches(
    backend: DispatchBackend,
    fn: Callable,
    batches: Sequence[Sequence],
    on_batch: Optional[Callable[[int, List], None]] = None,
) -> List[Optional[List]]:
    """Submit every batch and fold completions as they land.

    Returns outputs in input order (``outputs[i]`` for ``batches[i]``);
    ``on_batch(index, outputs)`` fires in *completion* order, which is what
    incremental cache writes and live metrics hang off.  On
    ``KeyboardInterrupt``/``SystemExit`` the pending batches are cancelled,
    the backend is drained (``shutdown(cancel_pending=True)``) and the
    interrupt re-raised — work already completed stays completed.

    A batch that raises any other exception propagates after the loop is
    abandoned; callers treat that as "this dispatch strategy failed"
    (the runner falls back to its serial loop).
    """
    futures: Dict[Future, int] = {}
    outputs: List[Optional[List]] = [None] * len(batches)
    try:
        for index, batch in enumerate(batches):
            futures[backend.submit(fn, batch)] = index
        for future in as_completed(futures):
            index = futures[future]
            outputs[index] = future.result()
            if on_batch is not None:
                on_batch(index, outputs[index])
    except (KeyboardInterrupt, SystemExit):
        for future in futures:
            future.cancel()
        backend.shutdown(cancel_pending=True)
        raise
    return outputs
