"""Experiment registry: one runner per table/figure in DESIGN.md.

Every benchmark in ``benchmarks/`` and most examples call into this module,
so the workload construction, configuration sweeps and metric derivations
are defined exactly once.  Each ``run_*`` function returns an
:class:`ExperimentOutput` carrying both the structured data and a rendered
text report (the "figure").

Simulation execution is delegated to :mod:`repro.analysis.runner`: results
are memoized per-process on the full parameter key (sweeps share baseline
runs instead of re-simulating them), persisted in a content-addressed disk
cache, and each ``run_*`` sweep prefetches its full point set so
independent simulations fan out across worker processes when the runner is
configured with ``workers > 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.config import (
    CacheConfig,
    DirectoryConfig,
    DirectoryKind,
    NoCConfig,
    SharerFormat,
    StashEligibility,
    SystemConfig,
)
from ..common.errors import ConfigError
from ..common.mesi import CoherenceProtocol
from ..energy.area import storage_of
from ..energy.model import energy_of
from ..sim.results import SimulationResult
from ..workloads.characterize import histogram_buckets, profile_trace
from ..workloads.suite import SUITE_ORDER, build_workload
from . import runner
from .figures import render_grouped_bars, render_series, render_sparkline
from .runner import SweepPoint
from .tables import render_kv, render_table

#: Directory provisioning ratios the paper-style sweeps use.
RATIOS: List[float] = [2.0, 1.0, 0.5, 0.25, 0.125, 0.0625]

#: Organizations compared in the performance figures.
KINDS: List[DirectoryKind] = [
    DirectoryKind.SPARSE,
    DirectoryKind.CUCKOO,
    DirectoryKind.SCD,
    DirectoryKind.STASH,
    DirectoryKind.IDEAL,
]

#: Short workload subset for quick runs; full suite via ``workloads="all"``.
QUICK_WORKLOADS: List[str] = ["blackscholes-like", "canneal-like", "mix"]

#: Default per-core trace length (kept modest: pure-Python simulation).
DEFAULT_OPS: int = 3000

#: Mesh shapes for supported core counts (to 1024 for the scaling study).
MESH_SHAPES: Dict[int, Tuple[int, int]] = {
    4: (2, 2),
    8: (4, 2),
    16: (4, 4),
    32: (8, 4),
    64: (8, 8),
    128: (16, 8),
    256: (16, 16),
    512: (32, 16),
    1024: (32, 32),
}


@dataclass
class ExperimentOutput:
    """One experiment's structured data plus its printable report."""

    experiment_id: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)

    def show(self) -> None:
        """Print the report (benchmark harness entry point)."""
        print()
        print(self.text)


# --------------------------------------------------------------------------- configs

def make_config(
    kind: DirectoryKind = DirectoryKind.STASH,
    ratio: float = 1.0,
    num_cores: int = 16,
    seed: int = 1,
    check_invariants: bool = False,
    dir_ways: int = 8,
    sharer_format: SharerFormat = SharerFormat.FULL_BIT_VECTOR,
    eligibility: StashEligibility = StashEligibility.ANY_PRIVATE,
    clean_notification: bool = False,
    private_l2: bool = False,
    discovery_filter_slots: int = 0,
    moesi: bool = False,
) -> SystemConfig:
    """The evaluation's default 16-core CMP, parameterized for sweeps.

    Core-count scaling keeps per-core L1 size fixed and scales the LLC and
    mesh with the core count, so provisioning ratios stay comparable.
    """
    if num_cores not in MESH_SHAPES:
        raise ConfigError(
            f"unsupported core count {num_cores}; supported: {sorted(MESH_SHAPES)}"
        )
    width, height = MESH_SHAPES[num_cores]
    llc_sets = 1024 * max(1, num_cores // 16) * 2 if num_cores > 16 else 1024
    return SystemConfig(
        num_cores=num_cores,
        l1=CacheConfig(sets=64, ways=4),
        # Optional 2x-L1 private L2 (the paper's CMP has two private levels;
        # the directory then tracks the L2).
        l2=CacheConfig(sets=64, ways=8) if private_l2 else None,
        llc=CacheConfig(sets=llc_sets, ways=16),
        directory=DirectoryConfig(
            kind=kind,
            coverage_ratio=ratio,
            ways=dir_ways,
            sharer_format=sharer_format,
            stash_eligibility=eligibility,
            clean_eviction_notification=clean_notification,
            discovery_filter_slots=discovery_filter_slots,
        ),
        noc=NoCConfig(mesh_width=width, mesh_height=height),
        protocol=CoherenceProtocol.MOESI if moesi else CoherenceProtocol.MESI,
        check_invariants=check_invariants,
        seed=seed,
    )


# --------------------------------------------------------------------------- running

#: The in-process memo, owned by :mod:`repro.analysis.runner` (same dict
#: object — mutations are visible to both modules).
_RESULT_CACHE: Dict[tuple, SimulationResult] = runner._MEMO


def simulate(
    workload: str,
    config: SystemConfig,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> SimulationResult:
    """Run one (workload, config) pair through the sweep engine.

    ``SystemConfig`` is a frozen (hashable) dataclass, so the *entire*
    configuration keys the cache — any parameter change is a different
    run.  Lookup order: in-memory memo, persistent disk cache
    (``.repro_cache/``), then a fresh simulation.
    """
    return runner.run_points([SweepPoint(workload, config, ops_per_core, seed)])[0]


def prefetch(points, ops_per_core: int = DEFAULT_OPS, seed: int = 1) -> None:
    """Simulate many points up front through the (possibly parallel) runner.

    ``points`` is an iterable of ``(workload, config)`` pairs or full
    :class:`~repro.analysis.runner.SweepPoint` instances; afterwards every
    corresponding :func:`simulate` call is a memo hit.  The ``run_*``
    sweeps call this first so their serial result-assembly loops read from
    a cache populated at full worker parallelism.
    """
    runner.run_points(
        [
            p if isinstance(p, SweepPoint) else SweepPoint(p[0], p[1], ops_per_core, seed)
            for p in points
        ]
    )


def simulate_many(
    workload: str,
    config: SystemConfig,
    ops_per_core: int = DEFAULT_OPS,
    seeds: Sequence[int] = (1, 2, 3),
) -> List[SimulationResult]:
    """Run one configuration across several workload seeds (memoized)."""
    return [simulate(workload, config, ops_per_core, seed) for seed in seeds]


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and (population) standard deviation."""
    if not values:
        return 0.0, 0.0
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(var)


def clear_cache() -> None:
    """Drop memoized results *and* the persistent disk cache.

    Tests use this for isolation; both layers must go, otherwise a run
    cleared from memory would silently resurrect from disk.
    """
    runner.clear_all()


def resolve_workloads(workloads) -> List[str]:
    """Accept a list, the string 'all', or None (quick subset)."""
    if workloads is None:
        return list(QUICK_WORKLOADS)
    if workloads == "all":
        return list(SUITE_ORDER)
    return list(workloads)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's cross-workload aggregate)."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        return 0.0
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))


def _ratio_label(ratio: float) -> str:
    if ratio >= 1:
        return f"{ratio:g}x"
    return f"1/{round(1 / ratio):d}x"


# ----------------------------------------------------------------- T1: configuration

def run_config_table(num_cores: int = 16) -> ExperimentOutput:
    """T1 — the simulated system configuration."""
    config = make_config(num_cores=num_cores)
    text = render_kv(config.describe().items(), title="T1: system configuration")
    return ExperimentOutput("T1", "System configuration", text, {"config": config.describe()})


# ----------------------------------------------------------------- T2: storage table

def run_storage_table(num_cores: int = 16) -> ExperimentOutput:
    """T2 — directory storage per organization and provisioning ratio."""
    rows = []
    data: Dict[str, object] = {}
    baseline = storage_of(make_config(DirectoryKind.SPARSE, 1.0, num_cores))
    # The conflict-free in-LLC embedded directory: one row (no provisioning
    # knob), showing the storage sparse directories exist to avoid.
    in_llc = storage_of(make_config(DirectoryKind.IN_LLC, 1.0, num_cores))
    rows.append(
        [
            DirectoryKind.IN_LLC.value,
            "-",
            in_llc.entries,
            in_llc.bits_per_entry,
            in_llc.stash_bit_overhead,
            in_llc.total_kib,
            in_llc.total_bits / baseline.total_bits,
        ]
    )
    data["in_llc"] = in_llc.total_kib
    for kind in (
        DirectoryKind.SPARSE, DirectoryKind.CUCKOO, DirectoryKind.SCD,
        DirectoryKind.STASH,
    ):
        for ratio in RATIOS:
            config = make_config(kind, ratio, num_cores)
            est = storage_of(config)
            rel = est.total_bits / baseline.total_bits
            rows.append(
                [
                    kind.value,
                    _ratio_label(ratio),
                    est.entries,
                    est.bits_per_entry,
                    est.stash_bit_overhead,
                    est.total_kib,
                    rel,
                ]
            )
            data[f"{kind.value}@{ratio}"] = est.total_kib
    text = render_table(
        ["organization", "R", "entries", "bits/entry", "stash bits", "KiB", "vs sparse@1x"],
        rows,
        title=f"T2: directory storage ({num_cores} cores)",
    )
    return ExperimentOutput("T2", "Directory storage", text, data)


# ----------------------------------------------------------- F1: workload characterization

def run_characterization(
    workloads=None, num_cores: int = 16, ops_per_core: int = DEFAULT_OPS, seed: int = 1
) -> ExperimentOutput:
    """F1 — private-block fraction and sharing-degree histogram."""
    names = resolve_workloads(workloads)
    rows = []
    data: Dict[str, object] = {}
    for name in names:
        trace = build_workload(name, num_cores, ops_per_core, seed=seed)
        profile = profile_trace(trace, 64, name=name)
        buckets = histogram_buckets(profile, num_cores)
        rows.append(
            [
                name,
                profile.unique_blocks,
                profile.private_block_fraction,
                profile.private_access_fraction,
                profile.write_fraction,
            ]
            + buckets
        )
        data[name] = {
            "private_block_fraction": profile.private_block_fraction,
            "buckets": buckets,
        }
    text = render_table(
        [
            "workload", "blocks", "private frac", "private acc frac", "write frac",
            "deg=1", "deg=2", "deg=3-4", "deg=5-8", "deg>8",
        ],
        rows,
        title="F1: workload sharing characterization",
    )
    return ExperimentOutput("F1", "Workload characterization", text, data)


# ------------------------------------------------- F2: invalidations vs provisioning (sparse)

def run_invalidation_sweep(
    workloads=None,
    ratios: Optional[Sequence[float]] = None,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> ExperimentOutput:
    """F2 — conventional sparse: invalidations/1k accesses vs. R."""
    names = resolve_workloads(workloads)
    ratios = list(ratios) if ratios is not None else RATIOS
    prefetch(
        [(n, make_config(DirectoryKind.SPARSE, r)) for n in names for r in ratios],
        ops_per_core, seed,
    )
    series: Dict[str, List[float]] = {name: [] for name in names}
    for name in names:
        for ratio in ratios:
            result = simulate(name, make_config(DirectoryKind.SPARSE, ratio), ops_per_core, seed)
            series[name].append(result.dir_induced_invals_per_kilo)
    x = [_ratio_label(r) for r in ratios]
    text = render_series(
        "F2: sparse directory-induced invalidations per 1k accesses vs provisioning",
        "R", x, series,
    )
    return ExperimentOutput("F2", "Invalidations vs provisioning", text, {"x": x, "series": series})


# --------------------------------------------------------- F3: the headline performance sweep

def run_performance_sweep(
    workloads=None,
    ratios: Optional[Sequence[float]] = None,
    kinds: Optional[Sequence[DirectoryKind]] = None,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> ExperimentOutput:
    """F3 — normalized execution time vs. R for every organization.

    Normalization: each (workload, kind, R) run over the same workload's
    conventional sparse R=1 run; the reported series is the geometric mean
    across workloads — the paper's presentation.
    """
    names = resolve_workloads(workloads)
    ratios = list(ratios) if ratios is not None else RATIOS
    kinds = list(kinds) if kinds is not None else KINDS
    prefetch(
        [(n, make_config(DirectoryKind.SPARSE, 1.0)) for n in names]
        + [
            (n, make_config(kind, ratio))
            for kind in kinds
            for ratio in (ratios[:1] if kind is DirectoryKind.IDEAL else ratios)
            for n in names
        ],
        ops_per_core, seed,
    )

    per_kind: Dict[str, List[float]] = {}
    raw: Dict[str, Dict[str, List[float]]] = {}
    for kind in kinds:
        rows: Dict[str, List[float]] = {name: [] for name in names}
        for name in names:
            baseline = simulate(name, make_config(DirectoryKind.SPARSE, 1.0), ops_per_core, seed)
            for ratio in ratios:
                if kind is DirectoryKind.IDEAL and ratio != ratios[0]:
                    # Ideal has no capacity: one point, replicated.
                    rows[name].append(rows[name][0])
                    continue
                result = simulate(name, make_config(kind, ratio), ops_per_core, seed)
                rows[name].append(result.normalized_time(baseline))
        raw[kind.value] = rows
        per_kind[kind.value] = [
            geomean([rows[name][i] for name in names]) for i in range(len(ratios))
        ]

    x = [_ratio_label(r) for r in ratios]
    text = render_series(
        "F3: normalized execution time vs provisioning (geomean, lower is better; "
        "baseline = sparse@1x)",
        "R", x, per_kind,
    )
    text += "\n\n" + render_grouped_bars(
        "F3 (bars): normalized execution time", x, per_kind
    )
    return ExperimentOutput(
        "F3", "Performance vs provisioning", text,
        {"x": x, "series": per_kind, "per_workload": raw},
    )


def run_headline(
    workloads=None, ops_per_core: int = DEFAULT_OPS, seed: int = 1
) -> ExperimentOutput:
    """The abstract's claim, directly: stash@1/8 vs sparse@1x vs sparse@1/8."""
    names = resolve_workloads(workloads)
    prefetch(
        [
            (n, make_config(kind, ratio))
            for n in names
            for kind, ratio in (
                (DirectoryKind.SPARSE, 1.0),
                (DirectoryKind.SPARSE, 0.125),
                (DirectoryKind.STASH, 0.125),
            )
        ],
        ops_per_core, seed,
    )
    rows = []
    ratios_ok = []
    for name in names:
        sparse_full = simulate(name, make_config(DirectoryKind.SPARSE, 1.0), ops_per_core, seed)
        sparse_small = simulate(name, make_config(DirectoryKind.SPARSE, 0.125), ops_per_core, seed)
        stash_small = simulate(name, make_config(DirectoryKind.STASH, 0.125), ops_per_core, seed)
        n_sparse = sparse_small.normalized_time(sparse_full)
        n_stash = stash_small.normalized_time(sparse_full)
        ratios_ok.append(n_stash)
        rows.append([name, 1.0, n_sparse, n_stash])
    rows.append(["geomean", 1.0, geomean([r[2] for r in rows]), geomean(ratios_ok)])
    text = render_table(
        ["workload", "sparse@1x", "sparse@1/8x", "stash@1/8x"],
        rows,
        title="Headline: normalized execution time at 1/8 provisioning",
    )
    return ExperimentOutput("headline", "Headline claim", text, {"rows": rows})


# ------------------------------------------------- F4: invalidation comparison stash vs sparse

def run_invalidation_comparison(
    workloads=None,
    ratios: Optional[Sequence[float]] = None,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> ExperimentOutput:
    """F4 — directory-induced invalidations: stash vs sparse vs cuckoo."""
    names = resolve_workloads(workloads)
    ratios = list(ratios) if ratios is not None else RATIOS
    comparison_kinds = (
        DirectoryKind.SPARSE, DirectoryKind.CUCKOO, DirectoryKind.SCD,
        DirectoryKind.STASH,
    )
    prefetch(
        [(n, make_config(k, r)) for k in comparison_kinds for r in ratios for n in names],
        ops_per_core, seed,
    )
    series: Dict[str, List[float]] = {}
    for kind in comparison_kinds:
        values = []
        for ratio in ratios:
            per_wl = [
                simulate(n, make_config(kind, ratio), ops_per_core, seed).dir_induced_invals_per_kilo
                for n in names
            ]
            values.append(sum(per_wl) / len(per_wl))
        series[kind.value] = values
    x = [_ratio_label(r) for r in ratios]
    text = render_series(
        "F4: directory-induced invalidations per 1k accesses (mean over workloads)",
        "R", x, series,
    )
    return ExperimentOutput("F4", "Invalidation comparison", text, {"x": x, "series": series})


# --------------------------------------------------------------------- F5: network traffic

def run_traffic_sweep(
    workloads=None,
    ratios: Optional[Sequence[float]] = None,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> ExperimentOutput:
    """F5 — hop-weighted NoC traffic normalized to sparse@1x."""
    names = resolve_workloads(workloads)
    ratios = list(ratios) if ratios is not None else RATIOS
    traffic_kinds = (DirectoryKind.SPARSE, DirectoryKind.CUCKOO, DirectoryKind.STASH)
    prefetch(
        [(n, make_config(DirectoryKind.SPARSE, 1.0)) for n in names]
        + [(n, make_config(k, r)) for k in traffic_kinds for r in ratios for n in names]
        + [
            (n, make_config(k, 0.125))
            for k in (DirectoryKind.SPARSE, DirectoryKind.STASH)
            for n in names
        ],
        ops_per_core, seed,
    )
    series: Dict[str, List[float]] = {}
    for kind in traffic_kinds:
        values = []
        for ratio in ratios:
            normalized = []
            for name in names:
                baseline = simulate(name, make_config(DirectoryKind.SPARSE, 1.0), ops_per_core, seed)
                result = simulate(name, make_config(kind, ratio), ops_per_core, seed)
                normalized.append(result.normalized_traffic(baseline))
            values.append(geomean(normalized))
        series[kind.value] = values
    x = [_ratio_label(r) for r in ratios]
    text = render_series(
        "F5: NoC traffic (flit-hops) vs provisioning, normalized to sparse@1x (geomean)",
        "R", x, series,
    )
    # Class breakdown at the headline point.
    breakdown_rows = []
    for kind in (DirectoryKind.SPARSE, DirectoryKind.STASH):
        for name in names:
            result = simulate(name, make_config(kind, 0.125), ops_per_core, seed)
            breakdown_rows.append(
                [
                    kind.value,
                    name,
                    result.traffic_of("request"),
                    result.traffic_of("data_response"),
                    result.traffic_of("invalidation") + result.traffic_of("inv_ack"),
                    result.traffic_of("discovery_probe") + result.traffic_of("discovery_reply"),
                    result.total_flit_hops,
                ]
            )
    text += "\n\n" + render_table(
        ["org", "workload", "req", "data", "inval", "discovery", "total"],
        breakdown_rows,
        title="F5 (detail): flit-hops by class at R=1/8",
    )
    return ExperimentOutput("F5", "Network traffic", text, {"x": x, "series": series})


# ------------------------------------------------------------------ F6: discovery statistics

def run_discovery_stats(
    workloads=None,
    ratios: Optional[Sequence[float]] = None,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> ExperimentOutput:
    """F6 — discovery broadcasts per 1k accesses and false-discovery rate."""
    names = resolve_workloads(workloads)
    ratios = list(ratios) if ratios is not None else RATIOS
    prefetch(
        [(n, make_config(DirectoryKind.STASH, r)) for n in names for r in ratios],
        ops_per_core, seed,
    )
    rows = []
    data: Dict[str, object] = {}
    for name in names:
        for ratio in ratios:
            result = simulate(name, make_config(DirectoryKind.STASH, ratio), ops_per_core, seed)
            rows.append(
                [
                    name,
                    _ratio_label(ratio),
                    result.discovery_per_kilo,
                    result.false_discovery_rate,
                    result.stash_evictions,
                ]
            )
            data[f"{name}@{ratio}"] = (
                result.discovery_per_kilo,
                result.false_discovery_rate,
            )
    text = render_table(
        ["workload", "R", "discoveries/1k", "false rate", "stash evictions"],
        rows,
        title="F6: discovery broadcast statistics (stash directory)",
    )
    return ExperimentOutput("F6", "Discovery statistics", text, data)


# ------------------------------------------------------------------ F7: effective capacity

def run_effective_capacity(
    workloads=None,
    ratio: float = 0.125,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> ExperimentOutput:
    """F7 — effective tracking capacity (entries + live stash bits)."""
    names = resolve_workloads(workloads)
    prefetch(
        [(n, make_config(DirectoryKind.STASH, ratio)) for n in names],
        ops_per_core, seed,
    )
    rows = []
    data: Dict[str, float] = {}
    sparklines = []
    for name in names:
        config = make_config(DirectoryKind.STASH, ratio)
        result = simulate(name, config, ops_per_core, seed)
        entries = config.directory_entries
        samples = result.effective_tracking_samples or [0]
        avg_effective = sum(samples) / len(samples)
        expansion = avg_effective / entries if entries else 0.0
        rows.append([name, entries, avg_effective, expansion])
        data[name] = expansion
        sparklines.append(f"{name:>20s} |{render_sparkline(samples, width=40)}|")
    text = render_table(
        ["workload", "physical entries", "avg effective", "expansion"],
        rows,
        title=f"F7: effective directory capacity at R={_ratio_label(ratio)}",
    )
    text += (
        "\n\neffective tracking over time (sampled):\n" + "\n".join(sparklines)
    )
    return ExperimentOutput("F7", "Effective capacity", text, data)


# --------------------------------------------------------------- F8: associativity sensitivity

def run_assoc_sensitivity(
    workloads=None,
    ways_list: Sequence[int] = (2, 4, 8, 16),
    ratio: float = 0.125,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> ExperimentOutput:
    """F8 — directory associativity sweep at fixed provisioning."""
    names = resolve_workloads(workloads)
    prefetch(
        [(n, make_config(DirectoryKind.SPARSE, 1.0)) for n in names]
        + [
            (n, make_config(k, ratio, dir_ways=w))
            for k in (DirectoryKind.SPARSE, DirectoryKind.STASH)
            for w in ways_list
            for n in names
        ],
        ops_per_core, seed,
    )
    series: Dict[str, List[float]] = {}
    for kind in (DirectoryKind.SPARSE, DirectoryKind.STASH):
        values = []
        for ways in ways_list:
            normalized = []
            for name in names:
                baseline = simulate(name, make_config(DirectoryKind.SPARSE, 1.0), ops_per_core, seed)
                result = simulate(
                    name, make_config(kind, ratio, dir_ways=ways), ops_per_core, seed
                )
                normalized.append(result.normalized_time(baseline))
            values.append(geomean(normalized))
        series[kind.value] = values
    x = [f"{w}-way" for w in ways_list]
    text = render_series(
        f"F8: normalized execution time vs directory associativity at R={_ratio_label(ratio)}",
        "assoc", x, series,
    )
    return ExperimentOutput("F8", "Associativity sensitivity", text, {"x": x, "series": series})


# ------------------------------------------------------------------------ F9: core scaling

def run_core_scaling(
    workloads=None,
    core_counts: Sequence[int] = (16, 32, 64),
    ratio: float = 0.125,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> ExperimentOutput:
    """F9 — stash vs sparse at R=1/8 as the core count grows."""
    names = resolve_workloads(workloads)
    prefetch(
        [
            (n, make_config(DirectoryKind.SPARSE, 1.0, num_cores=c))
            for c in core_counts
            for n in names
        ]
        + [
            (n, make_config(k, ratio, num_cores=c))
            for k in (DirectoryKind.SPARSE, DirectoryKind.STASH)
            for c in core_counts
            for n in names
        ],
        ops_per_core, seed,
    )
    series: Dict[str, List[float]] = {}
    for kind in (DirectoryKind.SPARSE, DirectoryKind.STASH):
        values = []
        for cores in core_counts:
            normalized = []
            for name in names:
                baseline = simulate(
                    name, make_config(DirectoryKind.SPARSE, 1.0, num_cores=cores),
                    ops_per_core, seed,
                )
                result = simulate(
                    name, make_config(kind, ratio, num_cores=cores), ops_per_core, seed
                )
                normalized.append(result.normalized_time(baseline))
            values.append(geomean(normalized))
        series[kind.value] = values
    x = [f"{c} cores" for c in core_counts]
    text = render_series(
        f"F9: normalized execution time at R={_ratio_label(ratio)} vs core count",
        "cores", x, series,
    )
    return ExperimentOutput("F9", "Core-count scaling", text, {"x": x, "series": series})


# ---------------------------------------------------------------------------- F10: energy

def run_energy_comparison(
    workloads=None,
    ratios: Optional[Sequence[float]] = None,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> ExperimentOutput:
    """F10 — total (dynamic + directory leakage) energy vs sparse@1x."""
    names = resolve_workloads(workloads)
    ratios = list(ratios) if ratios is not None else [1.0, 0.5, 0.25, 0.125]
    prefetch(
        [(n, make_config(DirectoryKind.SPARSE, 1.0)) for n in names]
        + [
            (n, make_config(k, r))
            for k in (DirectoryKind.SPARSE, DirectoryKind.STASH)
            for r in ratios
            for n in names
        ],
        ops_per_core, seed,
    )
    series: Dict[str, List[float]] = {}
    for kind in (DirectoryKind.SPARSE, DirectoryKind.STASH):
        values = []
        for ratio in ratios:
            normalized = []
            for name in names:
                baseline = energy_of(
                    simulate(name, make_config(DirectoryKind.SPARSE, 1.0), ops_per_core, seed)
                )
                result = energy_of(
                    simulate(name, make_config(kind, ratio), ops_per_core, seed)
                )
                normalized.append(result.normalized_to(baseline))
            values.append(geomean(normalized))
        series[kind.value] = values
    x = [_ratio_label(r) for r in ratios]
    text = render_series(
        "F10: total energy (dynamic + directory leakage) normalized to sparse@1x",
        "R", x, series,
    )
    return ExperimentOutput("F10", "Energy comparison", text, {"x": x, "series": series})


# ------------------------------------------------------------- S3: seed stability

def run_seed_stability(
    workloads=None,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    ops_per_core: int = DEFAULT_OPS,
) -> ExperimentOutput:
    """S3 — statistical robustness: the headline across workload seeds.

    Synthetic traces are stochastic; this reports the normalized-time mean
    and standard deviation of stash@1/8 (and sparse@1/8) over independent
    seeds, demonstrating the headline is not a single-draw artifact.
    """
    names = resolve_workloads(workloads)
    prefetch(
        [
            SweepPoint(n, make_config(kind, ratio, seed=s), ops_per_core, s)
            for n in names
            for s in seeds
            for kind, ratio in (
                (DirectoryKind.SPARSE, 1.0),
                (DirectoryKind.SPARSE, 0.125),
                (DirectoryKind.STASH, 0.125),
            )
        ]
    )
    rows = []
    data: Dict[str, object] = {}
    for name in names:
        stash_norms = []
        sparse_norms = []
        for seed in seeds:
            baseline = simulate(
                name, make_config(DirectoryKind.SPARSE, 1.0, seed=seed),
                ops_per_core, seed,
            )
            sparse = simulate(
                name, make_config(DirectoryKind.SPARSE, 0.125, seed=seed),
                ops_per_core, seed,
            )
            stash = simulate(
                name, make_config(DirectoryKind.STASH, 0.125, seed=seed),
                ops_per_core, seed,
            )
            sparse_norms.append(sparse.normalized_time(baseline))
            stash_norms.append(stash.normalized_time(baseline))
        sp_mean, sp_std = mean_std(sparse_norms)
        st_mean, st_std = mean_std(stash_norms)
        rows.append([name, len(seeds), sp_mean, sp_std, st_mean, st_std])
        data[name] = {"sparse": (sp_mean, sp_std), "stash": (st_mean, st_std)}
    text = render_table(
        ["workload", "seeds", "sparse@1/8 mean", "std", "stash@1/8 mean", "std "],
        rows,
        title="S3: headline stability across workload seeds",
    )
    return ExperimentOutput("S3", "Seed stability", text, data)


# ---------------------------------------------------------- F11: two-level private caches

def run_private_l2_headline(
    workloads=None, ops_per_core: int = DEFAULT_OPS, seed: int = 1
) -> ExperimentOutput:
    """F11 — the headline with two-level private caches (L1 + private L2).

    The paper's CMP has private L2s with the directory tracking the L2
    level; this verifies the stash result is not an artifact of the
    single-level private-domain simplification.
    """
    names = resolve_workloads(workloads)
    prefetch(
        [
            (n, make_config(kind, ratio, private_l2=True))
            for n in names
            for kind, ratio in (
                (DirectoryKind.SPARSE, 1.0),
                (DirectoryKind.SPARSE, 0.125),
                (DirectoryKind.STASH, 0.125),
            )
        ],
        ops_per_core, seed,
    )
    rows = []
    stash_norms = []
    sparse_norms = []
    for name in names:
        baseline = simulate(
            name, make_config(DirectoryKind.SPARSE, 1.0, private_l2=True),
            ops_per_core, seed,
        )
        sparse_small = simulate(
            name, make_config(DirectoryKind.SPARSE, 0.125, private_l2=True),
            ops_per_core, seed,
        )
        stash_small = simulate(
            name, make_config(DirectoryKind.STASH, 0.125, private_l2=True),
            ops_per_core, seed,
        )
        n_sparse = sparse_small.normalized_time(baseline)
        n_stash = stash_small.normalized_time(baseline)
        sparse_norms.append(n_sparse)
        stash_norms.append(n_stash)
        rows.append([name, 1.0, n_sparse, n_stash])
    rows.append(["geomean", 1.0, geomean(sparse_norms), geomean(stash_norms)])
    text = render_table(
        ["workload", "sparse@1x", "sparse@1/8x", "stash@1/8x"],
        rows,
        title="F11: headline with private L2s (directory tracks the L2 level)",
    )
    return ExperimentOutput("F11", "Private-L2 headline", text, {"rows": rows})


# ---------------------------------------------------------------------------- ablations

def run_ablation_eligibility(
    workloads=None,
    ratio: float = 0.125,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> ExperimentOutput:
    """A1 — stash eligibility: any-private (paper) vs exclusive-only."""
    names = resolve_workloads(workloads)
    prefetch(
        [(n, make_config(DirectoryKind.SPARSE, 1.0)) for n in names]
        + [
            (n, make_config(DirectoryKind.STASH, ratio, eligibility=e))
            for e in (StashEligibility.ANY_PRIVATE, StashEligibility.EXCLUSIVE_ONLY)
            for n in names
        ],
        ops_per_core, seed,
    )
    rows = []
    for name in names:
        baseline = simulate(name, make_config(DirectoryKind.SPARSE, 1.0), ops_per_core, seed)
        row = [name]
        for eligibility in (StashEligibility.ANY_PRIVATE, StashEligibility.EXCLUSIVE_ONLY):
            result = simulate(
                name,
                make_config(DirectoryKind.STASH, ratio, eligibility=eligibility),
                ops_per_core, seed,
            )
            row.extend([result.normalized_time(baseline), result.stash_evictions])
        rows.append(row)
    text = render_table(
        ["workload", "any-private time", "stashes", "excl-only time", "stashes "],
        rows,
        title=f"A1: stash eligibility ablation at R={_ratio_label(ratio)}",
    )
    return ExperimentOutput("A1", "Eligibility ablation", text, {"rows": rows})


def run_ablation_notification(
    workloads=None,
    ratio: float = 0.125,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> ExperimentOutput:
    """A2 — explicit clean-eviction notification vs silent evictions."""
    names = resolve_workloads(workloads)
    prefetch(
        [
            (n, make_config(DirectoryKind.STASH, ratio, clean_notification=notify))
            for notify in (False, True)
            for n in names
        ],
        ops_per_core, seed,
    )
    rows = []
    for name in names:
        silent = simulate(name, make_config(DirectoryKind.STASH, ratio), ops_per_core, seed)
        noisy = simulate(
            name,
            make_config(DirectoryKind.STASH, ratio, clean_notification=True),
            ops_per_core, seed,
        )
        rows.append(
            [
                name,
                silent.false_discovery_rate,
                noisy.false_discovery_rate,
                silent.total_flit_hops,
                noisy.total_flit_hops,
            ]
        )
    text = render_table(
        ["workload", "false rate (silent)", "false rate (notify)",
         "traffic (silent)", "traffic (notify)"],
        rows,
        title=f"A2: clean-eviction notification ablation at R={_ratio_label(ratio)}",
    )
    return ExperimentOutput("A2", "Notification ablation", text, {"rows": rows})


def run_ablation_sharers(
    workloads=None,
    ratio: float = 0.25,
    ops_per_core: int = DEFAULT_OPS,
    seed: int = 1,
) -> ExperimentOutput:
    """A3 — sharer representation: storage vs invalidation traffic."""
    names = resolve_workloads(workloads)
    prefetch(
        [(n, make_config(DirectoryKind.SPARSE, 1.0)) for n in names]
        + [
            (n, make_config(DirectoryKind.STASH, ratio, sharer_format=fmt))
            for fmt in SharerFormat
            for n in names
        ],
        ops_per_core, seed,
    )
    rows = []
    for fmt in SharerFormat:
        config = make_config(DirectoryKind.STASH, ratio, sharer_format=fmt)
        est = storage_of(config)
        inval_msgs = []
        times = []
        for name in names:
            baseline = simulate(name, make_config(DirectoryKind.SPARSE, 1.0), ops_per_core, seed)
            result = simulate(name, config, ops_per_core, seed)
            msgs = result.stats.get("system.protocol.write_inval_msgs", 0.0) + result.stats.get(
                "system.protocol.dir_eviction_inval_msgs", 0.0
            )
            inval_msgs.append(msgs)
            times.append(result.normalized_time(baseline))
        rows.append(
            [
                fmt.value,
                est.bits_per_entry,
                est.total_kib,
                sum(inval_msgs) / len(inval_msgs),
                geomean(times),
            ]
        )
    text = render_table(
        ["format", "bits/entry", "KiB", "inval msgs (mean)", "norm. time (geomean)"],
        rows,
        title=f"A3: sharer-format ablation (stash at R={_ratio_label(ratio)})",
    )
    return ExperimentOutput("A3", "Sharer-format ablation", text, {"rows": rows})
