"""Text "figures": series tables plus ASCII bar charts.

A paper figure becomes (a) the exact numeric series, printed as a table,
and (b) a quick-look horizontal bar chart so trends are visible in a
terminal or a CI log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .tables import format_cell, render_table

#: Width of the bar area in characters.
BAR_WIDTH = 40


def render_series(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    precision: int = 3,
) -> str:
    """Render multiple named series over a shared x-axis as a table."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [values[i] for values in series.values()])
    return render_table(headers, rows, title=title, precision=precision)


def render_bars(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    unit: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal ASCII bar chart for one series."""
    peak = max_value if max_value is not None else max(values, default=0.0)
    if peak <= 0:
        peak = 1.0
    width = max((len(label) for label in labels), default=0)
    lines: List[str] = [title, "=" * len(title)]
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(BAR_WIDTH * value / peak))
        lines.append(
            f"{label.rjust(width)} | {bar} {format_cell(value)}{unit}"
        )
    return "\n".join(lines)


def render_grouped_bars(
    title: str,
    x_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    unit: str = "",
) -> str:
    """Bar chart with one bar per (x, series) pair, grouped by x."""
    peak = max(
        (value for values in series.values() for value in values), default=1.0
    )
    if peak <= 0:
        peak = 1.0
    name_width = max((len(name) for name in series), default=0)
    x_width = max((len(str(x)) for x in x_labels), default=0)
    lines: List[str] = [title, "=" * len(title)]
    for i, x in enumerate(x_labels):
        for name, values in series.items():
            value = values[i]
            bar = "#" * max(0, round(BAR_WIDTH * value / peak))
            lines.append(
                f"{str(x).rjust(x_width)} {name.ljust(name_width)} | "
                f"{bar} {format_cell(value)}{unit}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


#: Glyphs for sparkline rendering, low to high.
SPARK_GLYPHS = " .:-=+*#%@"


def render_sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line character sparkline of a series (e.g. occupancy over time).

    Values are downsampled to ``width`` points by averaging and mapped onto
    a ten-level glyph ramp scaled to the series maximum.
    """
    if not values:
        return ""
    if len(values) > width:
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket):max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(values[int(i * bucket):max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    peak = max(values)
    if peak <= 0:
        return SPARK_GLYPHS[0] * len(values)
    levels = len(SPARK_GLYPHS) - 1
    return "".join(
        SPARK_GLYPHS[min(levels, round(levels * value / peak))] for value in values
    )
