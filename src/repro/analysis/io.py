"""Result serialization: save, load and diff simulation results.

Long sweeps are expensive in pure Python, so results are first-class
artifacts: ``save_result`` writes one run (config + cycles + the flattened
statistics tree) as JSON, ``load_result`` reconstructs the
:class:`~repro.sim.results.SimulationResult` — including the full typed
:class:`~repro.common.config.SystemConfig` — and ``compare_results``
renders a side-by-side metric table for any number of runs.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from pathlib import Path
from typing import Dict, Union

from ..common.config import (
    CacheConfig,
    DirectoryConfig,
    DirectoryKind,
    DramConfig,
    EnergyConfig,
    MemoryModel,
    NoCConfig,
    SharerFormat,
    StashEligibility,
    SystemConfig,
    TimingConfig,
)
from ..common.errors import TraceError
from ..common.mesi import CoherenceProtocol
from ..sim.results import SimulationResult
from .tables import render_table

#: Format marker written into every result file.
FORMAT_VERSION = 1


def _encode(value):
    if isinstance(value, Enum):
        return value.value
    if dataclasses.is_dataclass(value):
        return {k: _encode(v) for k, v in dataclasses.asdict(value).items()}
    return value


def config_to_dict(config: SystemConfig) -> Dict:
    """Serialize a SystemConfig to plain JSON-able types."""
    raw = dataclasses.asdict(config)
    return json.loads(json.dumps(raw, default=lambda v: v.value if isinstance(v, Enum) else v))


def config_from_dict(data: Dict) -> SystemConfig:
    """Reconstruct a typed SystemConfig from :func:`config_to_dict` output."""
    directory = dict(data["directory"])
    directory["kind"] = DirectoryKind(directory["kind"])
    directory["sharer_format"] = SharerFormat(directory["sharer_format"])
    directory["stash_eligibility"] = StashEligibility(directory["stash_eligibility"])
    l2 = data.get("l2")
    return SystemConfig(
        num_cores=data["num_cores"],
        l1=CacheConfig(**data["l1"]),
        l2=CacheConfig(**l2) if l2 is not None else None,
        llc=CacheConfig(**data["llc"]),
        directory=DirectoryConfig(**directory),
        noc=NoCConfig(**data["noc"]),
        timing=TimingConfig(**data["timing"]),
        energy=EnergyConfig(**data["energy"]),
        memory_model=MemoryModel(data["memory_model"]),
        dram=DramConfig(**data["dram"]),
        protocol=CoherenceProtocol(data.get("protocol", "mesi")),
        check_invariants=data["check_invariants"],
        seed=data["seed"],
    )


def result_to_dict(result: SimulationResult) -> Dict:
    """Serialize one run."""
    return {
        "format_version": FORMAT_VERSION,
        "config": config_to_dict(result.config),
        "cycles_per_core": result.cycles_per_core,
        "stats": result.stats,
        "effective_tracking_samples": result.effective_tracking_samples,
        "engine": result.engine,
    }


def result_from_dict(data: Dict) -> SimulationResult:
    """Reconstruct one run; validates the format marker."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise TraceError(
            f"unsupported result format {version!r} (expected {FORMAT_VERSION})"
        )
    return SimulationResult(
        config=config_from_dict(data["config"]),
        cycles_per_core=list(data["cycles_per_core"]),
        stats=dict(data["stats"]),
        effective_tracking_samples=list(data["effective_tracking_samples"]),
        engine=data.get("engine", "interp"),
    )


def save_result(result: SimulationResult, path: Union[str, Path]) -> None:
    """Write one run to a JSON file."""
    with open(path, "w") as handle:
        json.dump(result_to_dict(result), handle, indent=1)


def load_result(path: Union[str, Path]) -> SimulationResult:
    """Read a run written by :func:`save_result`."""
    with open(path) as handle:
        return result_from_dict(json.load(handle))


def compare_results(results: Dict[str, SimulationResult], title: str = "comparison") -> str:
    """Side-by-side summary table for named runs.

    The first entry is the normalization baseline for time and traffic.
    """
    if not results:
        raise TraceError("compare_results needs at least one result")
    names = list(results)
    baseline = results[names[0]]
    rows = []
    for name in names:
        result = results[name]
        rows.append(
            [
                name,
                result.config.directory.kind.value,
                f"{result.config.directory.coverage_ratio:g}",
                result.normalized_time(baseline),
                result.normalized_traffic(baseline),
                result.dir_induced_invals_per_kilo,
                result.discovery_per_kilo,
            ]
        )
    return render_table(
        ["run", "directory", "R", "norm. time", "norm. traffic",
         "invals/1k", "discoveries/1k"],
        rows,
        title=title,
    )
