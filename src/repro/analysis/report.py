"""One-shot report generation: every experiment in a single document.

``generate_report`` runs the full experiment registry (at a configurable
scale) and writes one markdown file with every table and text figure —
the artifact a release ships alongside EXPERIMENTS.md, and the quickest way
for a reviewer to regenerate the whole evaluation:

    repro-sim report REPORT.md --quick
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from . import experiments as exp

#: The report's experiment order: (id, runner, takes-workloads?).
REPORT_SECTIONS: List[Tuple[str, Callable, bool]] = [
    ("T1", exp.run_config_table, False),
    ("T2", exp.run_storage_table, False),
    ("F1", exp.run_characterization, True),
    ("F2", exp.run_invalidation_sweep, True),
    ("F3", exp.run_performance_sweep, True),
    ("headline", exp.run_headline, True),
    ("F4", exp.run_invalidation_comparison, True),
    ("F5", exp.run_traffic_sweep, True),
    ("F6", exp.run_discovery_stats, True),
    ("F7", exp.run_effective_capacity, True),
    ("F8", exp.run_assoc_sensitivity, True),
    ("F9", exp.run_core_scaling, True),
    ("F10", exp.run_energy_comparison, True),
    ("F11", exp.run_private_l2_headline, True),
    ("A1", exp.run_ablation_eligibility, True),
    ("A2", exp.run_ablation_notification, True),
    ("A3", exp.run_ablation_sharers, True),
    ("S3", exp.run_seed_stability, True),
]


def generate_report(
    path: Union[str, Path],
    workloads=None,
    ops_per_core: int = exp.DEFAULT_OPS,
    sections: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[str]:
    """Run the registry and write one markdown report.

    ``workloads`` follows :func:`~repro.analysis.experiments.resolve_workloads`
    (None = quick subset, "all" = the full suite); ``sections`` restricts
    to specific experiment ids.  Returns the list of section ids written.
    """
    wanted = set(sections) if sections is not None else None
    chunks: List[str] = [
        "# Stash Directory — regenerated evaluation report",
        "",
        f"Scale: {ops_per_core} ops/core; workloads: "
        f"{', '.join(exp.resolve_workloads(workloads))}.",
        "Regenerate with `repro-sim report` (see DESIGN.md for the experiment index).",
        "",
    ]
    written: List[str] = []
    for exp_id, runner, takes_workloads in REPORT_SECTIONS:
        if wanted is not None and exp_id not in wanted:
            continue
        if progress is not None:
            progress(exp_id)
        kwargs = {}
        if takes_workloads:
            kwargs["workloads"] = workloads
            kwargs["ops_per_core"] = ops_per_core
        out = runner(**kwargs)
        chunks.append(f"## {out.experiment_id}: {out.title}")
        chunks.append("")
        chunks.append("```")
        chunks.append(out.text)
        chunks.append("```")
        chunks.append("")
        written.append(exp_id)
    Path(path).write_text("\n".join(chunks))
    return written
