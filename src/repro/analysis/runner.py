"""Parallel sweep execution engine with a two-layer persistent result cache.

Every figure/table in the evaluation fans out over (directory kind x
provisioning ratio x workload) sweep points — dozens of independent pure-
Python simulations.  This module is the one place that executes them:

* **Fan-out** — :func:`run_points` distributes independent sweep points
  across a pluggable :class:`~repro.analysis.dispatch.DispatchBackend`
  (``workers > 1``; a process pool by default) with deterministic result
  ordering: results come back in input order and are byte-identical to a
  serial run, because each simulation is fully determined by its
  :class:`SweepPoint`.  ``workers=1`` (the default), a single pending
  point, or any pool failure (e.g. an unpicklable config) falls back to
  the plain serial loop.  Completed batches write their cache entries
  *incrementally* (atomic per-entry files), and ``KeyboardInterrupt`` /
  SIGTERM mid-sweep cancels pending batches, drains the pool (terminating
  blocked workers) and re-raises — a killed sweep keeps every finished
  point and never leaves a partially-written cache entry.
* **Batched dispatch** — pending points are grouped by *trace key* (the
  workload-generation parameterization) and shipped to workers in batches,
  so each worker derives or loads its input trace once per batch and pays
  process/IPC overhead once per batch instead of once per point.  The
  default batch size splits the pending set evenly across workers
  (``batch_size`` overrides it; ``1`` reproduces per-point dispatch).
* **Shared traces** — workload traces are materialized exactly once per
  distinct key through :mod:`repro.workloads.store`: an in-process memo of
  :class:`~repro.sim.trace.PackedTrace` streams plus a corruption-safe
  binary spool under ``<cache-dir>/traces/``.  The parent pre-materializes
  every distinct trace before dispatch, so a kinds x ratios sweep
  generates each workload once, not ``len(kinds) * len(ratios)`` times.
* **Persistent cache** — results are cached on disk as JSON under
  ``.repro_cache/`` (override with ``REPRO_CACHE_DIR`` / ``configure``),
  keyed by a stable SHA-256 of the full :class:`~repro.common.config.
  SystemConfig` plus the workload name, trace length and seed.  The key
  also folds in :data:`CACHE_SCHEMA_VERSION` and :data:`CODE_VERSION`, so
  bumping either invalidates every stale entry.  Corrupt or truncated
  files are detected, dropped and recomputed — never crashed on.
* **In-memory memo** — the per-process memo (shared with
  :mod:`repro.analysis.experiments`) sits above the disk layer, so hot
  sweep points never touch the filesystem twice in one process.
* **Observability** — :data:`counters` tracks memo/disk hit rates,
  per-point compute wall-times and parallel fallbacks;
  :func:`counters_summary` renders them (CLI ``--cache-stats``).

Environment knobs (read once at import, overridable via :func:`configure`
or per-call arguments): ``REPRO_WORKERS`` (worker processes, default 1),
``REPRO_CACHE_DIR`` (cache root, default ``.repro_cache``),
``REPRO_NO_CACHE`` (any non-empty value disables the result disk layer),
``REPRO_NO_TRACE_CACHE`` (disables the trace spool), ``REPRO_BATCH_SIZE``
(points per worker dispatch, 0 = auto) and ``REPRO_BACKEND`` (dispatch
backend name from :data:`repro.analysis.dispatch.BACKENDS`, default
``pool``).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..common.config import SystemConfig
from ..obs import ObsConfig, attach
from ..sim.results import SimulationResult
from ..sim.simulator import run_trace
from ..sim.system import build_system
from ..workloads import store as trace_store
from . import dispatch
from .io import FORMAT_VERSION, config_to_dict, result_from_dict, result_to_dict

# Re-exported for callers that think in runner terms (CLI, benchmarks).
trace_counters = trace_store.counters

#: Layout version of the on-disk cache wrapper; bump on wrapper changes.
CACHE_SCHEMA_VERSION = 1

#: Simulator-semantics version.  Bump whenever a change to the simulator,
#: protocol, workload generators or timing model alters results for the
#: same configuration — every existing disk entry is then invalidated
#: (its key changes) without touching the cache directory.
CODE_VERSION = 1


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation: a workload run on one configuration.

    ``obs`` attaches a :class:`repro.obs.ObsConfig` to the run: the worker
    wires an observer into the built system and, when ``obs.out_prefix``
    is set, writes the epoch/trace exports next to the simulation.
    Observed points are **never cached** (neither memo nor disk): their
    value is the side-channel files, and serving them from cache would
    silently skip the exports.  ``cache_key`` builds its payload from
    explicit fields, so plain points keep their existing cache keys.

    ``engine`` selects the execution engine (``"interp"`` or
    ``"vector"``, see :func:`repro.sim.simulator.run_trace`).  Both
    produce bit-identical results, but the engines are cached separately
    (the vector engine may transparently fall back, and ``result.engine``
    records what actually ran — serving an interp result for a vector
    request would silently lie about that).
    """

    workload: str
    config: SystemConfig
    ops_per_core: int = 3000
    seed: int = 1
    obs: Optional[ObsConfig] = None
    engine: str = "interp"

    @property
    def memo_key(self) -> tuple:
        """Hashable in-memory memo key (the full parameterization)."""
        return (
            self.workload,
            self.ops_per_core,
            self.seed,
            self.config,
            self.engine,
        )

    @property
    def trace_memo_key(self) -> tuple:
        """The workload-generation key this point's input trace shares.

        Points that differ only in directory/NoC/protocol configuration
        replay the identical trace; the batched scheduler groups on this.
        """
        return trace_store.memo_key(
            self.workload,
            self.config.num_cores,
            self.ops_per_core,
            self.seed,
            self.config.block_bytes,
        )

    @property
    def observed(self) -> bool:
        """Does this point carry live observability (and bypass caching)?"""
        return self.obs is not None and self.obs.enabled


def cache_key(point: SweepPoint) -> str:
    """Stable content-addressed key for one sweep point.

    SHA-256 over a canonical (sorted-key, no-whitespace) JSON encoding of
    the complete configuration and workload spec plus the cache and code
    versions.  Identical parameterizations hash identically across
    processes and machines; any changed field produces a distinct key.
    """
    payload = {
        "cache_schema": CACHE_SCHEMA_VERSION,
        "code_version": CODE_VERSION,
        "result_format": FORMAT_VERSION,
        "workload": point.workload,
        "ops_per_core": point.ops_per_core,
        "seed": point.seed,
        "config": config_to_dict(point.config),
    }
    if point.engine != "interp":
        # Folded in only for non-default engines so every existing interp
        # cache entry keeps its key.
        payload["engine"] = point.engine
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class DiskCache:
    """Content-addressed JSON result store under one directory.

    One file per sweep point (``<sha256>.json``), written atomically
    (temp file + ``os.replace``) so readers never observe partial writes.
    Unreadable, truncated or version-mismatched files are treated as
    misses and deleted.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """The file a key maps to (exists only after :meth:`store`)."""
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                wrapper = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            counters.corrupt_entries += 1
            self._discard(path)
            return None
        try:
            if (
                wrapper.get("cache_schema") != CACHE_SCHEMA_VERSION
                or wrapper.get("code_version") != CODE_VERSION
                or wrapper.get("key") != key
            ):
                raise ValueError("cache wrapper version/key mismatch")
            return result_from_dict(wrapper["result"])
        except Exception:
            counters.corrupt_entries += 1
            self._discard(path)
            return None

    def store(self, key: str, point: SweepPoint, result: SimulationResult) -> None:
        """Atomically persist one result (best-effort: IO errors ignored)."""
        wrapper = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "code_version": CODE_VERSION,
            "key": key,
            "workload": point.workload,
            "ops_per_core": point.ops_per_core,
            "seed": point.seed,
            "result": result_to_dict(result),
        }
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as handle:
                json.dump(wrapper, handle, separators=(",", ":"))
            os.replace(tmp, path)
            counters.disk_writes += 1
        except OSError:
            self._discard(tmp)

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.iterdir():
            if path.suffix == ".json" or ".tmp." in path.name:
                self._discard(path)
                removed += 1
        return removed

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


# ------------------------------------------------------------------ module state

@dataclass
class RunnerCounters:
    """Hit-rate and wall-time counters for the sweep engine.

    ``point_seconds`` holds the per-point compute wall-times of the most
    recent :func:`run_points` batch (cache hits contribute nothing — they
    are the point).  ``trace_seconds`` is the share of compute time spent
    acquiring input traces (store lookups + any generation inside
    workers); ``dispatches`` counts worker batches shipped through the
    pool across all parallel runs.
    """

    memo_hits: int = 0
    disk_hits: int = 0
    computed: int = 0
    disk_writes: int = 0
    corrupt_entries: int = 0
    parallel_fallbacks: int = 0
    parallel_batches: int = 0
    dispatches: int = 0
    compute_seconds: float = 0.0
    trace_seconds: float = 0.0
    batch_seconds: float = 0.0
    point_seconds: List[float] = field(default_factory=list)

    @property
    def lookups(self) -> int:
        """Total sweep points requested (after in-batch deduplication)."""
        return self.memo_hits + self.disk_hits + self.computed

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either cache layer."""
        total = self.lookups
        return (self.memo_hits + self.disk_hits) / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter (tests and benchmarks)."""
        self.__init__()


#: Process-global counters (reset with ``counters.reset()``).
counters = RunnerCounters()

#: In-memory memo layered above the disk cache; shared (by object
#: identity) with ``repro.analysis.experiments._RESULT_CACHE``.
_MEMO: Dict[tuple, SimulationResult] = {}

_DEFAULTS = {
    "workers": max(1, int(os.environ.get("REPRO_WORKERS", "1") or "1")),
    "cache_dir": os.environ.get("REPRO_CACHE_DIR") or ".repro_cache",
    "cache_enabled": not os.environ.get("REPRO_NO_CACHE"),
    "trace_cache_enabled": not os.environ.get("REPRO_NO_TRACE_CACHE"),
    "batch_size": max(0, int(os.environ.get("REPRO_BATCH_SIZE", "0") or "0")),
    "backend": os.environ.get("REPRO_BACKEND") or dispatch.ProcessPoolBackend.name,
}


def configure(
    workers: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    cache_enabled: Optional[bool] = None,
    trace_cache_enabled: Optional[bool] = None,
    batch_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """Set process-wide runner defaults; None leaves a field unchanged.

    Returns the resolved defaults (also the way to inspect them).
    ``batch_size=0`` means auto (split the pending set evenly across
    workers); the trace spool lives under ``<cache_dir>/traces/``;
    ``backend`` names a dispatch backend from
    :data:`repro.analysis.dispatch.BACKENDS`.
    """
    if workers is not None:
        _DEFAULTS["workers"] = max(1, int(workers))
    if cache_dir is not None:
        _DEFAULTS["cache_dir"] = str(cache_dir)
    if cache_enabled is not None:
        _DEFAULTS["cache_enabled"] = bool(cache_enabled)
    if trace_cache_enabled is not None:
        _DEFAULTS["trace_cache_enabled"] = bool(trace_cache_enabled)
    if batch_size is not None:
        _DEFAULTS["batch_size"] = max(0, int(batch_size))
    if backend is not None:
        if backend not in dispatch.BACKENDS:
            raise ValueError(
                f"unknown dispatch backend {backend!r}; "
                f"known: {sorted(dispatch.BACKENDS)}"
            )
        _DEFAULTS["backend"] = backend
    return dict(_DEFAULTS)


def default_cache() -> DiskCache:
    """A DiskCache rooted at the currently configured directory."""
    return DiskCache(_DEFAULTS["cache_dir"])


def trace_spool_root(cache_dir: Optional[Union[str, Path]] = None) -> Path:
    """The trace-spool directory under a cache root (default: configured)."""
    root = Path(cache_dir) if cache_dir is not None else Path(_DEFAULTS["cache_dir"])
    return root / "traces"


def default_trace_store() -> trace_store.TraceStore:
    """A TraceStore spooling under the configured cache directory."""
    return trace_store.TraceStore(trace_spool_root())


def campaigns_root(cache_dir: Optional[Union[str, Path]] = None) -> Path:
    """The campaign-journal directory under a cache root (default: configured)."""
    root = Path(cache_dir) if cache_dir is not None else Path(_DEFAULTS["cache_dir"])
    return root / "campaigns"


def clear_memo() -> None:
    """Drop the in-memory result memo only."""
    _MEMO.clear()


def clear_disk_cache() -> int:
    """Delete every entry in the configured disk cache; returns the count."""
    return default_cache().clear()


def clear_trace_cache() -> int:
    """Drop the trace memo and the configured spool; returns files removed."""
    trace_store.clear_memo()
    return default_trace_store().clear()


def clear_campaign_store() -> int:
    """Delete every journaled campaign under the configured cache dir."""
    # Imported lazily: repro.service sits above the analysis layer.
    from ..service.store import CampaignStore

    return CampaignStore(campaigns_root()).clear()


def clear_all() -> None:
    """Drop every cache layer — result memo+disk, trace memo+spool and the
    campaign journal store."""
    clear_memo()
    clear_disk_cache()
    clear_trace_cache()
    clear_campaign_store()


# ------------------------------------------------------------------ execution

def _compute_point(
    point: SweepPoint,
    spool_dir: Optional[str] = None,
    spool_enabled: bool = True,
) -> Tuple[SimulationResult, float, float]:
    """Run one sweep point; returns (result, seconds, trace_seconds).

    The input trace comes from the shared trace store (memo -> spool ->
    generate) in packed form, so repeated points over one workload never
    regenerate it; ``trace_seconds`` is the acquisition share of the
    point's wall time.  Top-level so :class:`ProcessPoolExecutor` can
    pickle it.
    """
    start = time.perf_counter()
    trace = trace_store.get_packed_trace(
        point.workload,
        point.config.num_cores,
        point.ops_per_core,
        seed=point.seed,
        block_bytes=point.config.block_bytes,
        root=spool_dir,
        disk_enabled=spool_enabled,
    )
    trace_seconds = time.perf_counter() - start
    if point.observed:
        system = build_system(point.config)
        observer = attach(system, point.obs)
        result = run_trace(point.config, trace, system=system, observer=observer)
        observer.write_all(
            meta={"workload": point.workload, "ops_per_core": point.ops_per_core,
                  "seed": point.seed}
        )
    else:
        result = run_trace(point.config, trace, engine=point.engine)
    return result, time.perf_counter() - start, trace_seconds


def _run_batch(
    batch: Sequence[SweepPoint],
    spool_dir: Optional[str] = None,
    spool_enabled: bool = True,
) -> List[Tuple[SimulationResult, float, float]]:
    """Worker entry point: compute one batch of points in order.

    A batch is the unit of pool dispatch — the worker pays pickling/IPC
    once for the whole list, and the trace store's in-process memo
    guarantees each distinct trace key inside the batch is derived once
    (with a forking pool it is usually already memoized by the parent's
    pre-materialization pass).
    """
    return [_compute_point(point, spool_dir, spool_enabled) for point in batch]


def _effective_workers(requested: Optional[int]) -> int:
    """Resolve a per-call ``workers`` argument to the count actually used.

    An explicit request is honored as-is (floored at 1) — tests and
    benchmarks deliberately oversubscribe.  The configured *default* is
    clamped to ``os.cpu_count()``: spawning more sweep processes than
    cores only adds pool overhead, and on a single-CPU host the clamp
    makes the default path purely serial (no executor at all).
    """
    if requested is not None:
        return max(1, int(requested))
    configured = int(_DEFAULTS["workers"])
    return max(1, min(configured, os.cpu_count() or 1))


def _plan_batches(
    points: Sequence[SweepPoint], workers: int, batch_size: int
) -> List[List[int]]:
    """Partition point indices into dispatch batches, grouped by trace key.

    Points sharing a trace key are laid out adjacently (first-occurrence
    order, so the plan is deterministic), then cut into batches of
    ``batch_size``; ``batch_size <= 0`` picks the even split
    ``ceil(len(points) / workers)`` — one dispatch per worker for uniform
    sweeps, which is where per-point IPC overhead goes to die.
    """
    groups: Dict[tuple, List[int]] = {}
    order: List[tuple] = []
    for index, point in enumerate(points):
        key = point.trace_memo_key
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(index)
    if batch_size <= 0:
        batch_size = max(1, math.ceil(len(points) / workers))
    batches: List[List[int]] = []
    current: List[int] = []
    for key in order:
        for index in groups[key]:
            current.append(index)
            if len(current) >= batch_size:
                batches.append(current)
                current = []
    if current:
        batches.append(current)
    return batches


def _serial_compute(
    points: Sequence[SweepPoint],
    spool_dir: Optional[str],
    spool_enabled: bool,
    on_output: Optional[Callable[[int, Tuple], None]] = None,
) -> List[Tuple[SimulationResult, float, float]]:
    """The plain serial loop (also the parallel-failure fallback)."""
    outputs: List[Tuple[SimulationResult, float, float]] = []
    for index, point in enumerate(points):
        output = _compute_point(point, spool_dir, spool_enabled)
        if on_output is not None:
            on_output(index, output)
        outputs.append(output)
    return outputs


def _compute_batch(
    points: Sequence[SweepPoint],
    workers: int,
    spool_dir: Optional[str],
    spool_enabled: bool,
    batch_size: int,
    backend_name: Optional[str] = None,
    on_output: Optional[Callable[[int, Tuple], None]] = None,
) -> List[Tuple[SimulationResult, float, float]]:
    """Compute every point through a dispatch backend when asked.

    Output order matches input order regardless of worker scheduling;
    ``on_output(point_index, output)`` fires in *completion* order (the
    hook incremental cache writes hang off — an interrupted sweep keeps
    everything that finished).  Any backend-level failure (pickling,
    missing OS support, broken pool) falls back to the serial loop so a
    sweep never dies on parallel plumbing; ``KeyboardInterrupt`` and
    SIGTERM cancel pending batches, drain the pool and re-raise.
    """
    with dispatch.graceful_sigterm():
        if workers <= 1 or len(points) <= 1:
            # Explicit serial path: one worker never pays for an executor.
            return _serial_compute(points, spool_dir, spool_enabled, on_output)
        plan = _plan_batches(points, workers, batch_size)
        run = partial(_run_batch, spool_dir=spool_dir, spool_enabled=spool_enabled)
        backend = dispatch.make_backend(
            backend_name or str(_DEFAULTS["backend"]), min(workers, len(plan))
        )
        computed: List[Optional[Tuple[SimulationResult, float, float]]]
        computed = [None] * len(points)

        def _fold(batch_index: int, outputs: List[Tuple]) -> None:
            for point_index, output in zip(plan[batch_index], outputs):
                computed[point_index] = output
                if on_output is not None:
                    on_output(point_index, output)

        try:
            dispatch.run_batches(
                backend,
                run,
                [[points[i] for i in batch] for batch in plan],
                on_batch=_fold,
            )
            counters.parallel_batches += 1
            counters.dispatches += len(plan)
            return computed  # type: ignore[return-value]
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            counters.parallel_fallbacks += 1
        finally:
            backend.shutdown()
        return _serial_compute(points, spool_dir, spool_enabled, on_output)


def run_points(
    points: Sequence[SweepPoint],
    workers: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    cache_enabled: Optional[bool] = None,
    trace_cache_enabled: Optional[bool] = None,
    batch_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[SimulationResult]:
    """Execute sweep points through memo -> disk cache -> (parallel) compute.

    Results are returned in input order; duplicate points are simulated
    once.  Pending points are dispatched to workers in trace-key-grouped
    batches, and every distinct input trace is materialized exactly once
    in this process (memo + spool) before any dispatch.  Completed points
    land in the memo and disk cache *as their batches finish*, so an
    interrupted sweep resumes from everything already computed.  Per-call
    arguments override the configured defaults (None means "use the
    default").
    """
    workers = _effective_workers(workers)
    use_disk = _DEFAULTS["cache_enabled"] if cache_enabled is None else bool(cache_enabled)
    use_spool = (
        _DEFAULTS["trace_cache_enabled"]
        if trace_cache_enabled is None
        else bool(trace_cache_enabled)
    )
    batch_size = (
        int(_DEFAULTS["batch_size"]) if batch_size is None else max(0, int(batch_size))
    )
    disk = DiskCache(cache_dir) if cache_dir is not None else default_cache()
    spool_dir = str(trace_spool_root(cache_dir))

    batch_start = time.perf_counter()
    results: List[Optional[SimulationResult]] = [None] * len(points)
    # memo_key -> (point, indices still waiting, disk key)
    pending: Dict[tuple, Tuple[SweepPoint, List[int], str]] = {}
    for index, point in enumerate(points):
        if point.observed:
            # Observed points bypass both cache layers (their exports are
            # the point); key on the obs config too so identical sims with
            # different observability stay distinct.
            key = (point.memo_key, point.obs)
            if key in pending:
                pending[key][1].append(index)
            else:
                pending[key] = (point, [index], "")
            continue
        key = point.memo_key
        hit = _MEMO.get(key)
        if hit is not None:
            counters.memo_hits += 1
            results[index] = hit
            continue
        if key in pending:
            pending[key][1].append(index)
            continue
        disk_key = cache_key(point)
        if use_disk:
            loaded = disk.load(disk_key)
            if loaded is not None:
                counters.disk_hits += 1
                _MEMO[key] = loaded
                results[index] = loaded
                continue
        pending[key] = (point, [index], disk_key)

    if pending:
        entries = list(pending.values())
        todo = [entry[0] for entry in entries]
        # Materialize every distinct input trace once, up front: later
        # worker batches find it in the spool (or, with a forking pool,
        # already in the inherited memo), so a kinds x ratios sweep
        # performs exactly one generation per workload.
        seen_traces = set()
        for point in todo:
            trace_key = point.trace_memo_key
            if trace_key not in seen_traces:
                seen_traces.add(trace_key)
                trace_store.get_packed_trace(
                    *trace_key, root=spool_dir, disk_enabled=use_spool
                )

        def _store_output(todo_index: int, output: Tuple) -> None:
            # Fires as each batch completes: an interrupted sweep keeps
            # every finished point in both cache layers (idempotent, so
            # the serial fallback re-calling it is harmless).
            point, _, disk_key = entries[todo_index]
            if not point.observed:
                _MEMO[point.memo_key] = output[0]
                if use_disk:
                    disk.store(disk_key, point, output[0])

        computed = _compute_batch(
            todo, workers, spool_dir, use_spool, batch_size,
            backend_name=backend, on_output=_store_output,
        )
        counters.point_seconds = [seconds for _, seconds, _ in computed]
        for (point, indices, disk_key), (result, seconds, trace_seconds) in zip(
            entries, computed
        ):
            counters.computed += 1
            counters.compute_seconds += seconds
            counters.trace_seconds += trace_seconds
            for index in indices:
                results[index] = result
    counters.batch_seconds += time.perf_counter() - batch_start
    return results  # type: ignore[return-value]


def simulate_point(
    workload: str,
    config: SystemConfig,
    ops_per_core: int = 3000,
    seed: int = 1,
    engine: str = "interp",
) -> SimulationResult:
    """Single-point convenience wrapper over :func:`run_points`."""
    return run_points(
        [SweepPoint(workload, config, ops_per_core, seed, engine=engine)]
    )[0]


def counters_summary() -> str:
    """One-paragraph human-readable counter report (results, traces,
    campaign journals)."""
    from ..service.store import CampaignStore

    c = counters
    t = trace_store.counters
    spool = default_trace_store().stats()
    campaigns = CampaignStore(campaigns_root()).stats()
    lines = [
        "sweep runner counters:",
        f"  lookups        {c.lookups}  (memo {c.memo_hits}, disk {c.disk_hits}, "
        f"computed {c.computed})",
        f"  hit rate       {c.hit_rate:.1%}",
        f"  compute time   {c.compute_seconds:.2f}s over {c.computed} points"
        + (
            f" (last batch: {len(c.point_seconds)} points, "
            f"max {max(c.point_seconds):.2f}s)"
            if c.point_seconds
            else ""
        ),
        f"  batch time     {c.batch_seconds:.2f}s  "
        f"(parallel batches {c.parallel_batches}, dispatches {c.dispatches}, "
        f"fallbacks {c.parallel_fallbacks})",
        f"  disk           writes {c.disk_writes}, corrupt dropped {c.corrupt_entries}",
        f"  traces         {t.lookups} lookups (memo {t.memo_hits}, "
        f"spool {t.disk_hits}, generated {t.generated} in {t.gen_seconds:.2f}s); "
        f"acquisition {c.trace_seconds:.2f}s of compute",
        f"  trace spool    {spool['files']} files, {spool['bytes']} bytes "
        f"(writes {t.disk_writes}, corrupt dropped {t.corrupt_entries})",
        f"  campaigns      {campaigns['campaigns']} journaled "
        f"({campaigns['files']} files, {campaigns['bytes']} bytes)",
    ]
    return "\n".join(lines)
