"""Parallel sweep execution engine with a two-layer persistent result cache.

Every figure/table in the evaluation fans out over (directory kind x
provisioning ratio x workload) sweep points — dozens of independent pure-
Python simulations.  This module is the one place that executes them:

* **Fan-out** — :func:`run_points` distributes independent sweep points
  across a :class:`concurrent.futures.ProcessPoolExecutor` (``workers > 1``)
  with deterministic result ordering: results come back in input order and
  are byte-identical to a serial run, because each simulation is fully
  determined by its :class:`SweepPoint`.  ``workers=1`` (the default), a
  single pending point, or any pool failure (e.g. an unpicklable config)
  falls back to the plain serial loop.
* **Persistent cache** — results are cached on disk as JSON under
  ``.repro_cache/`` (override with ``REPRO_CACHE_DIR`` / ``configure``),
  keyed by a stable SHA-256 of the full :class:`~repro.common.config.
  SystemConfig` plus the workload name, trace length and seed.  The key
  also folds in :data:`CACHE_SCHEMA_VERSION` and :data:`CODE_VERSION`, so
  bumping either invalidates every stale entry.  Corrupt or truncated
  files are detected, dropped and recomputed — never crashed on.
* **In-memory memo** — the per-process memo (shared with
  :mod:`repro.analysis.experiments`) sits above the disk layer, so hot
  sweep points never touch the filesystem twice in one process.
* **Observability** — :data:`counters` tracks memo/disk hit rates,
  per-point compute wall-times and parallel fallbacks;
  :func:`counters_summary` renders them (CLI ``--cache-stats``).

Environment knobs (read once at import, overridable via :func:`configure`
or per-call arguments): ``REPRO_WORKERS`` (worker processes, default 1),
``REPRO_CACHE_DIR`` (cache root, default ``.repro_cache``) and
``REPRO_NO_CACHE`` (any non-empty value disables the disk layer).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..common.config import SystemConfig
from ..obs import ObsConfig, attach
from ..sim.results import SimulationResult
from ..sim.simulator import run_trace
from ..sim.system import build_system
from ..workloads.suite import build_workload
from .io import FORMAT_VERSION, config_to_dict, result_from_dict, result_to_dict

#: Layout version of the on-disk cache wrapper; bump on wrapper changes.
CACHE_SCHEMA_VERSION = 1

#: Simulator-semantics version.  Bump whenever a change to the simulator,
#: protocol, workload generators or timing model alters results for the
#: same configuration — every existing disk entry is then invalidated
#: (its key changes) without touching the cache directory.
CODE_VERSION = 1


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation: a workload run on one configuration.

    ``obs`` attaches a :class:`repro.obs.ObsConfig` to the run: the worker
    wires an observer into the built system and, when ``obs.out_prefix``
    is set, writes the epoch/trace exports next to the simulation.
    Observed points are **never cached** (neither memo nor disk): their
    value is the side-channel files, and serving them from cache would
    silently skip the exports.  ``cache_key`` builds its payload from
    explicit fields, so plain points keep their existing cache keys.
    """

    workload: str
    config: SystemConfig
    ops_per_core: int = 3000
    seed: int = 1
    obs: Optional[ObsConfig] = None

    @property
    def memo_key(self) -> tuple:
        """Hashable in-memory memo key (the full parameterization)."""
        return (self.workload, self.ops_per_core, self.seed, self.config)

    @property
    def observed(self) -> bool:
        """Does this point carry live observability (and bypass caching)?"""
        return self.obs is not None and self.obs.enabled


def cache_key(point: SweepPoint) -> str:
    """Stable content-addressed key for one sweep point.

    SHA-256 over a canonical (sorted-key, no-whitespace) JSON encoding of
    the complete configuration and workload spec plus the cache and code
    versions.  Identical parameterizations hash identically across
    processes and machines; any changed field produces a distinct key.
    """
    payload = {
        "cache_schema": CACHE_SCHEMA_VERSION,
        "code_version": CODE_VERSION,
        "result_format": FORMAT_VERSION,
        "workload": point.workload,
        "ops_per_core": point.ops_per_core,
        "seed": point.seed,
        "config": config_to_dict(point.config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class DiskCache:
    """Content-addressed JSON result store under one directory.

    One file per sweep point (``<sha256>.json``), written atomically
    (temp file + ``os.replace``) so readers never observe partial writes.
    Unreadable, truncated or version-mismatched files are treated as
    misses and deleted.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """The file a key maps to (exists only after :meth:`store`)."""
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                wrapper = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            counters.corrupt_entries += 1
            self._discard(path)
            return None
        try:
            if (
                wrapper.get("cache_schema") != CACHE_SCHEMA_VERSION
                or wrapper.get("code_version") != CODE_VERSION
                or wrapper.get("key") != key
            ):
                raise ValueError("cache wrapper version/key mismatch")
            return result_from_dict(wrapper["result"])
        except Exception:
            counters.corrupt_entries += 1
            self._discard(path)
            return None

    def store(self, key: str, point: SweepPoint, result: SimulationResult) -> None:
        """Atomically persist one result (best-effort: IO errors ignored)."""
        wrapper = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "code_version": CODE_VERSION,
            "key": key,
            "workload": point.workload,
            "ops_per_core": point.ops_per_core,
            "seed": point.seed,
            "result": result_to_dict(result),
        }
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as handle:
                json.dump(wrapper, handle, separators=(",", ":"))
            os.replace(tmp, path)
            counters.disk_writes += 1
        except OSError:
            self._discard(tmp)

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.iterdir():
            if path.suffix == ".json" or ".tmp." in path.name:
                self._discard(path)
                removed += 1
        return removed

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


# ------------------------------------------------------------------ module state

@dataclass
class RunnerCounters:
    """Hit-rate and wall-time counters for the sweep engine.

    ``point_seconds`` holds the per-point compute wall-times of the most
    recent :func:`run_points` batch (cache hits contribute nothing — they
    are the point).
    """

    memo_hits: int = 0
    disk_hits: int = 0
    computed: int = 0
    disk_writes: int = 0
    corrupt_entries: int = 0
    parallel_fallbacks: int = 0
    parallel_batches: int = 0
    compute_seconds: float = 0.0
    batch_seconds: float = 0.0
    point_seconds: List[float] = field(default_factory=list)

    @property
    def lookups(self) -> int:
        """Total sweep points requested (after in-batch deduplication)."""
        return self.memo_hits + self.disk_hits + self.computed

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either cache layer."""
        total = self.lookups
        return (self.memo_hits + self.disk_hits) / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter (tests and benchmarks)."""
        self.__init__()


#: Process-global counters (reset with ``counters.reset()``).
counters = RunnerCounters()

#: In-memory memo layered above the disk cache; shared (by object
#: identity) with ``repro.analysis.experiments._RESULT_CACHE``.
_MEMO: Dict[tuple, SimulationResult] = {}

_DEFAULTS = {
    "workers": max(1, int(os.environ.get("REPRO_WORKERS", "1") or "1")),
    "cache_dir": os.environ.get("REPRO_CACHE_DIR") or ".repro_cache",
    "cache_enabled": not os.environ.get("REPRO_NO_CACHE"),
}


def configure(
    workers: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    cache_enabled: Optional[bool] = None,
) -> Dict[str, object]:
    """Set process-wide runner defaults; None leaves a field unchanged.

    Returns the resolved defaults (also the way to inspect them).
    """
    if workers is not None:
        _DEFAULTS["workers"] = max(1, int(workers))
    if cache_dir is not None:
        _DEFAULTS["cache_dir"] = str(cache_dir)
    if cache_enabled is not None:
        _DEFAULTS["cache_enabled"] = bool(cache_enabled)
    return dict(_DEFAULTS)


def default_cache() -> DiskCache:
    """A DiskCache rooted at the currently configured directory."""
    return DiskCache(_DEFAULTS["cache_dir"])


def clear_memo() -> None:
    """Drop the in-memory memo only."""
    _MEMO.clear()


def clear_disk_cache() -> int:
    """Delete every entry in the configured disk cache; returns the count."""
    return default_cache().clear()


def clear_all() -> None:
    """Drop both cache layers (test isolation)."""
    clear_memo()
    clear_disk_cache()


# ------------------------------------------------------------------ execution

def _compute_point(point: SweepPoint) -> Tuple[SimulationResult, float]:
    """Build the trace and run one sweep point; returns (result, seconds).

    Top-level so :class:`ProcessPoolExecutor` can pickle it; the trace is
    generated inside the worker (cheap and deterministic) so only the
    small :class:`SweepPoint` crosses the process boundary.
    """
    start = time.perf_counter()
    trace = build_workload(
        point.workload,
        point.config.num_cores,
        point.ops_per_core,
        seed=point.seed,
        block_bytes=point.config.block_bytes,
    )
    if point.observed:
        system = build_system(point.config)
        observer = attach(system, point.obs)
        result = run_trace(point.config, trace, system=system, observer=observer)
        observer.write_all(
            meta={"workload": point.workload, "ops_per_core": point.ops_per_core,
                  "seed": point.seed}
        )
    else:
        result = run_trace(point.config, trace)
    return result, time.perf_counter() - start


def _effective_workers(requested: Optional[int]) -> int:
    """Resolve a per-call ``workers`` argument to the count actually used.

    An explicit request is honored as-is (floored at 1) — tests and
    benchmarks deliberately oversubscribe.  The configured *default* is
    clamped to ``os.cpu_count()``: spawning more sweep processes than
    cores only adds pool overhead, and on a single-CPU host the clamp
    makes the default path purely serial (no executor at all).
    """
    if requested is not None:
        return max(1, int(requested))
    configured = int(_DEFAULTS["workers"])
    return max(1, min(configured, os.cpu_count() or 1))


def _compute_batch(
    points: Sequence[SweepPoint], workers: int
) -> List[Tuple[SimulationResult, float]]:
    """Compute every point, fanning out across processes when asked.

    Output order matches input order regardless of worker scheduling.  Any
    pool-level failure (pickling, missing OS support, broken pool) falls
    back to the serial loop so a sweep never dies on parallel plumbing.
    """
    if workers <= 1 or len(points) <= 1:
        # Explicit serial path: one worker never pays for an executor.
        return [_compute_point(point) for point in points]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(points))) as pool:
            computed = list(pool.map(_compute_point, points))
        counters.parallel_batches += 1
        return computed
    except Exception:
        counters.parallel_fallbacks += 1
    return [_compute_point(point) for point in points]


def run_points(
    points: Sequence[SweepPoint],
    workers: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    cache_enabled: Optional[bool] = None,
) -> List[SimulationResult]:
    """Execute sweep points through memo -> disk cache -> (parallel) compute.

    Results are returned in input order; duplicate points are simulated
    once.  Per-call arguments override the configured defaults (None means
    "use the default").
    """
    workers = _effective_workers(workers)
    use_disk = _DEFAULTS["cache_enabled"] if cache_enabled is None else bool(cache_enabled)
    disk = DiskCache(cache_dir) if cache_dir is not None else default_cache()

    batch_start = time.perf_counter()
    results: List[Optional[SimulationResult]] = [None] * len(points)
    # memo_key -> (point, indices still waiting, disk key)
    pending: Dict[tuple, Tuple[SweepPoint, List[int], str]] = {}
    for index, point in enumerate(points):
        if point.observed:
            # Observed points bypass both cache layers (their exports are
            # the point); key on the obs config too so identical sims with
            # different observability stay distinct.
            key = (point.memo_key, point.obs)
            if key in pending:
                pending[key][1].append(index)
            else:
                pending[key] = (point, [index], "")
            continue
        key = point.memo_key
        hit = _MEMO.get(key)
        if hit is not None:
            counters.memo_hits += 1
            results[index] = hit
            continue
        if key in pending:
            pending[key][1].append(index)
            continue
        disk_key = cache_key(point)
        if use_disk:
            loaded = disk.load(disk_key)
            if loaded is not None:
                counters.disk_hits += 1
                _MEMO[key] = loaded
                results[index] = loaded
                continue
        pending[key] = (point, [index], disk_key)

    if pending:
        todo = [entry[0] for entry in pending.values()]
        computed = _compute_batch(todo, workers)
        counters.point_seconds = [seconds for _, seconds in computed]
        for (point, indices, disk_key), (result, seconds) in zip(
            pending.values(), computed
        ):
            counters.computed += 1
            counters.compute_seconds += seconds
            if not point.observed:
                _MEMO[point.memo_key] = result
                if use_disk:
                    disk.store(disk_key, point, result)
            for index in indices:
                results[index] = result
    counters.batch_seconds += time.perf_counter() - batch_start
    return results  # type: ignore[return-value]


def simulate_point(
    workload: str,
    config: SystemConfig,
    ops_per_core: int = 3000,
    seed: int = 1,
) -> SimulationResult:
    """Single-point convenience wrapper over :func:`run_points`."""
    return run_points([SweepPoint(workload, config, ops_per_core, seed)])[0]


def counters_summary() -> str:
    """One-paragraph human-readable counter report."""
    c = counters
    lines = [
        "sweep runner counters:",
        f"  lookups        {c.lookups}  (memo {c.memo_hits}, disk {c.disk_hits}, "
        f"computed {c.computed})",
        f"  hit rate       {c.hit_rate:.1%}",
        f"  compute time   {c.compute_seconds:.2f}s over {c.computed} points"
        + (
            f" (last batch: {len(c.point_seconds)} points, "
            f"max {max(c.point_seconds):.2f}s)"
            if c.point_seconds
            else ""
        ),
        f"  batch time     {c.batch_seconds:.2f}s  "
        f"(parallel batches {c.parallel_batches}, fallbacks {c.parallel_fallbacks})",
        f"  disk           writes {c.disk_writes}, corrupt dropped {c.corrupt_entries}",
    ]
    return "\n".join(lines)
