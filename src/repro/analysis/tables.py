"""Plain-text table rendering for experiment output.

Every table and "figure" in this reproduction is printed as text — the same
rows/series the paper plots — so results diff cleanly and run anywhere.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 3) -> str:
    """Render one cell: floats get fixed precision, the rest str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 10 ** -precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_kv(pairs: Iterable[Sequence[Cell]], title: Optional[str] = None) -> str:
    """Render key/value pairs (configuration summaries)."""
    return render_table(["parameter", "value"], pairs, title=title)
