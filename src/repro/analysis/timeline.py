"""Timeline comparison: sparse vs. stash behaviour *over a run*, not just
at the end.

The evaluation's headline tables compare end-of-run totals; this module is
the :mod:`repro.obs` consumer that shows **when** the two designs diverge.
It runs the same workload on an under-provisioned sparse directory and on
the stash directory — both observed with an epoch sampler and an event
tracer, propagated per sweep point through the runner
(:class:`~repro.analysis.runner.SweepPoint` ``obs`` field) — then reads
the exported epoch series back and renders side-by-side time-series of the
divergence metrics:

* directory-eviction invalidation messages per epoch (the sparse
  directory's inclusion tax; near-zero for stash),
* coverage misses per epoch (the performance cost of those messages),
* directory occupancy and effective tracking (stash bits extend coverage
  past physical capacity).

The exports land next to the report (``<prefix>.<kind>.epochs.jsonl`` /
``.trace.json``), so the same run can be opened in Perfetto.
"""

from __future__ import annotations

from typing import Dict, List

from ..common.config import DirectoryKind
from ..obs import ObsConfig, read_epochs_jsonl
from .experiments import ExperimentOutput, make_config
from .figures import render_series, render_sparkline
from .runner import SweepPoint, run_points

#: Per-epoch delta keys the comparison tabulates (stats-tree keys).
DIVERGENCE_KEYS = (
    "system.protocol.dir_eviction_inval_msgs",
    "system.protocol.coverage_misses",
    "system.directory.evictions_invalidate",
)

#: Per-epoch gauges the comparison tabulates.
DIVERGENCE_GAUGES = ("dir_occupancy", "effective_tracking")


def _delta_series(epochs: List[Dict], key: str) -> List[float]:
    return [epoch.get("d", {}).get(key, 0.0) for epoch in epochs]


def _gauge_series(epochs: List[Dict], name: str) -> List[float]:
    return [epoch.get("g", {}).get(name, 0.0) for epoch in epochs]


def run_timeline(
    workload: str = "mix",
    ratio: float = 0.125,
    num_cores: int = 16,
    ops_per_core: int = 3000,
    seed: int = 1,
    out_prefix: str = "timeline",
    epoch_interval: int = 256,
    trace_capacity: int = 65_536,
) -> ExperimentOutput:
    """Observed sparse-vs-stash run at one provisioning ratio.

    Returns an :class:`ExperimentOutput` whose ``data`` carries the raw
    epoch series and the export paths; the text report shows the per-epoch
    divergence tables and sparklines.
    """
    kinds = [DirectoryKind.SPARSE, DirectoryKind.STASH]
    points = [
        SweepPoint(
            workload,
            make_config(kind, ratio, num_cores=num_cores, seed=seed),
            ops_per_core=ops_per_core,
            seed=seed,
            obs=ObsConfig(
                epoch_interval=epoch_interval,
                trace_capacity=trace_capacity,
                out_prefix=f"{out_prefix}.{kind.value}",
            ),
        )
        for kind in kinds
    ]
    results = run_points(points)

    epochs_by_kind: Dict[str, List[Dict]] = {}
    for kind in kinds:
        _, epochs = read_epochs_jsonl(f"{out_prefix}.{kind.value}.epochs.jsonl")
        epochs_by_kind[kind.value] = epochs

    # Tables share an x-axis; the run lengths are identical by construction
    # (same trace), so every kind has the same epoch boundaries.
    x = [epoch["op"] for epoch in epochs_by_kind[kinds[0].value]]
    sections: List[str] = [
        f"timeline: {workload} @ R={ratio:g} "
        f"({num_cores} cores, {ops_per_core} ops/core, "
        f"epoch={epoch_interval} ops)",
        "",
    ]
    for key in DIVERGENCE_KEYS:
        short = key.rsplit(".", 1)[-1]
        series = {
            kind: _delta_series(epochs_by_kind[kind], key)
            for kind in epochs_by_kind
        }
        sections.append(
            render_series(f"{short} per epoch", "op", x, series, precision=0)
        )
        for kind, values in series.items():
            sections.append(f"  {kind:>7}  {render_sparkline(values)}")
        sections.append("")
    for name in DIVERGENCE_GAUGES:
        series = {
            kind: _gauge_series(epochs_by_kind[kind], name)
            for kind in epochs_by_kind
        }
        sections.append(render_series(name, "op", x, series, precision=0))
        sections.append("")

    totals = {
        kind: sum(_delta_series(epochs_by_kind[kind],
                                "system.protocol.dir_eviction_inval_msgs"))
        for kind in epochs_by_kind
    }
    sections.append(
        "directory-eviction invalidation messages, whole run: "
        + ", ".join(f"{kind}={int(total)}" for kind, total in totals.items())
    )
    exports = [
        f"{out_prefix}.{kind.value}{suffix}"
        for kind in kinds
        for suffix in (".epochs.jsonl", ".epochs.csv", ".trace.json")
    ]
    sections.append("exports: " + ", ".join(exports))

    return ExperimentOutput(
        experiment_id="timeline",
        title="sparse vs stash divergence timeline",
        text="\n".join(sections),
        data={
            "x": x,
            "epochs": epochs_by_kind,
            "totals": totals,
            "exports": exports,
            "cycles": {
                kind.value: sum(result.cycles_per_core)
                for kind, result in zip(kinds, results)
            },
        },
    )
