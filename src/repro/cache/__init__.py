"""Cache substrate: generic set-associative arrays, L1s and the shared LLC."""

from .array import CacheArray, CacheSet
from .block import CacheBlock, copy_block
from .l1 import L1Cache
from .llc import SharedLLC
from .replacement import (
    LruPolicy,
    NruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SrripPolicy,
    TreePlruPolicy,
    make_policy,
    policy_names,
)

__all__ = [
    "CacheArray",
    "CacheBlock",
    "CacheSet",
    "L1Cache",
    "LruPolicy",
    "NruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SharedLLC",
    "SrripPolicy",
    "TreePlruPolicy",
    "copy_block",
    "make_policy",
    "policy_names",
]
