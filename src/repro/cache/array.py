"""Generic set-associative tag array.

:class:`CacheArray` implements lookup / allocate / evict mechanics once, for
every set-associative structure in the system (L1s, the LLC, and the sparse
and stash directories reuse the same set discipline through their own entry
tables).  It stores :class:`~repro.cache.block.CacheBlock` records and
delegates victim choice to a per-set replacement policy.

Allocation is split into two phases so protocol code can interleave side
effects correctly:

1. :meth:`peek_victim` — report which block *would* be evicted for a fill,
   without mutating anything.  The caller performs the coherence actions the
   eviction requires (back-invalidations, writebacks, discovery).
2. :meth:`allocate` — actually evict that victim and install the new line.
   The set and tag located by the peek are reused, so the second phase skips
   the index arithmetic.

Every operation runs once per simulated memory access, so the code here
trades a little repetition for flat, dispatch-free paths: set/tag extraction
is inlined, replacement hooks are bound per set at construction, and the
fill/eviction statistics are bound counter cells.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..common.config import CacheConfig
from ..common.errors import ProtocolError
from ..common.rng import DeterministicRng
from ..common.stats import StatCounter, StatGroup
from .block import CacheBlock
from .replacement import LruPolicy, ReplacementPolicy, make_policy


class CacheSet:
    """One set: way-indexed blocks, a tag index, and replacement metadata.

    ``touch``/``fill_touch``/``pick_victim`` are the policy's hooks bound
    once at construction — the hot path calls them without re-fetching the
    policy object per access.  For the default LRU policy, ``lru`` exposes
    the policy object itself so :meth:`CacheArray.lookup` can advance the
    recency clock inline (one call frame saved per hit).
    """

    __slots__ = (
        "ways", "blocks", "by_tag", "policy", "touch", "fill_touch",
        "pick_victim", "lru",
    )

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        self.ways = ways
        self.blocks: List[Optional[CacheBlock]] = [None] * ways
        self.by_tag: Dict[int, int] = {}
        self.policy = policy
        self.touch = policy.on_access
        self.fill_touch = policy.on_fill
        self.pick_victim = policy.victim
        self.lru = policy if type(policy) is LruPolicy else None

    def find(self, tag: int) -> Optional[int]:
        """Way holding ``tag``, or None."""
        return self.by_tag.get(tag)

    def free_way(self) -> Optional[int]:
        """An unoccupied way, or None if the set is full."""
        if len(self.by_tag) == self.ways:
            return None
        for way, block in enumerate(self.blocks):
            if block is None:
                return way
        raise ProtocolError("set bookkeeping out of sync")  # pragma: no cover

    def occupancy(self) -> int:
        """Number of valid lines in the set."""
        return len(self.by_tag)


class CacheArray:
    """A set-associative array of :class:`CacheBlock` records."""

    def __init__(self, config: CacheConfig, rng: DeterministicRng, stats: StatGroup) -> None:
        self.config = config
        self.stats = stats
        self._sets: List[CacheSet] = [
            CacheSet(config.ways, make_policy(config.replacement, config.ways, rng.spawn(i)))
            for i in range(config.sets)
        ]
        # Hot-path index/tag extraction (equivalent to set_index/tag_bits).
        self._index_mask = config.sets - 1
        self._tag_shift = config.sets.bit_length() - 1
        # (block_addr, set, tag) located by the last peek_victim, reused by
        # the allocate that completes the two-phase fill.
        self._peeked: Optional[Tuple[int, CacheSet, int]] = None
        # Event counters, bound on first use so untouched arrays stay absent
        # from the stats tree.
        self._c_fills: Optional[StatCounter] = None
        self._c_evictions: Optional[StatCounter] = None
        self._c_removals: Optional[StatCounter] = None

    # -- lookup --------------------------------------------------------------

    def _locate(self, block_addr: int) -> Tuple[CacheSet, int]:
        return (
            self._sets[block_addr & self._index_mask],
            block_addr >> self._tag_shift,
        )

    def lookup(self, block_addr: int, touch: bool = True) -> Optional[CacheBlock]:
        """Return the block if present; update replacement state if ``touch``."""
        cset = self._sets[block_addr & self._index_mask]
        way = cset.by_tag.get(block_addr >> self._tag_shift)
        if way is None:
            return None
        if touch:
            lru = cset.lru
            if lru is not None:
                # Inline of LruPolicy.on_access (package-internal fast path).
                lru._clock = clock = lru._clock + 1
                lru._last_use[way] = clock
            else:
                cset.touch(way)
        return cset.blocks[way]

    def contains(self, block_addr: int) -> bool:
        """Presence test with no replacement-state side effect."""
        cset = self._sets[block_addr & self._index_mask]
        return (block_addr >> self._tag_shift) in cset.by_tag

    # -- allocation ----------------------------------------------------------

    def peek_victim(self, block_addr: int) -> Optional[CacheBlock]:
        """The block a fill of ``block_addr`` would evict (None if a way is free).

        Does not mutate replacement state; the subsequent :meth:`allocate`
        will evict exactly this block (policies are only advanced by
        accesses/fills, which the caller does not interleave).
        """
        cset = self._sets[block_addr & self._index_mask]
        tag = block_addr >> self._tag_shift
        if tag in cset.by_tag:
            raise ProtocolError(f"block {block_addr:#x} already present; fill is invalid")
        self._peeked = (block_addr, cset, tag)
        if len(cset.by_tag) != cset.ways:  # a way is free
            return None
        return cset.blocks[cset.pick_victim()]

    def allocate(self, block_addr: int, state: int) -> Tuple[CacheBlock, Optional[CacheBlock]]:
        """Install ``block_addr`` and return ``(new_block, evicted_block)``.

        The caller must have already handled the coherence consequences of
        the eviction reported by :meth:`peek_victim`.
        """
        peeked = self._peeked
        if peeked is not None and peeked[0] == block_addr:
            _, cset, tag = peeked
            self._peeked = None
        else:
            cset = self._sets[block_addr & self._index_mask]
            tag = block_addr >> self._tag_shift
        by_tag = cset.by_tag
        if tag in by_tag:
            raise ProtocolError(f"block {block_addr:#x} already present; fill is invalid")
        blocks = cset.blocks
        evicted: Optional[CacheBlock] = None
        if len(by_tag) == cset.ways:
            way = cset.pick_victim()
            evicted = blocks[way]
            assert evicted is not None
            del by_tag[evicted.tag]
            cell = self._c_evictions
            if cell is None:
                cell = self._c_evictions = self.stats.counter("evictions")
            cell.value += 1
        else:
            way = 0
            while blocks[way] is not None:
                way += 1
        block = CacheBlock(block_addr, tag, state)
        blocks[way] = block
        by_tag[tag] = way
        cset.fill_touch(way)
        cell = self._c_fills
        if cell is None:
            cell = self._c_fills = self.stats.counter("fills")
        cell.value += 1
        return block, evicted

    # -- removal -------------------------------------------------------------

    def remove(self, block_addr: int) -> Optional[CacheBlock]:
        """Drop the block (invalidation); return it, or None if absent."""
        cset = self._sets[block_addr & self._index_mask]
        tag = block_addr >> self._tag_shift
        way = cset.by_tag.get(tag)
        if way is None:
            return None
        block = cset.blocks[way]
        cset.blocks[way] = None
        del cset.by_tag[tag]
        cell = self._c_removals
        if cell is None:
            cell = self._c_removals = self.stats.counter("removals")
        cell.value += 1
        return block

    # -- inspection ----------------------------------------------------------

    def iter_blocks(self) -> Iterator[CacheBlock]:
        """Every valid block, set by set (deterministic order)."""
        for cset in self._sets:
            for block in cset.blocks:
                if block is not None:
                    yield block

    def occupancy(self) -> int:
        """Total valid lines."""
        return sum(cset.occupancy() for cset in self._sets)

    def set_occupancy(self, block_addr: int) -> int:
        """Valid lines in the set that ``block_addr`` maps to."""
        return self._sets[block_addr & self._index_mask].occupancy()
