"""Generic set-associative tag array.

:class:`CacheArray` implements lookup / allocate / evict mechanics once, for
every set-associative structure in the system (L1s, the LLC, and the sparse
and stash directories reuse the same set discipline through their own entry
tables).  It stores :class:`~repro.cache.block.CacheBlock` records and
delegates victim choice to a per-set replacement policy.

Allocation is split into two phases so protocol code can interleave side
effects correctly:

1. :meth:`peek_victim` — report which block *would* be evicted for a fill,
   without mutating anything.  The caller performs the coherence actions the
   eviction requires (back-invalidations, writebacks, discovery).
2. :meth:`allocate` — actually evict that victim and install the new line.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..common.config import CacheConfig
from ..common.errors import ProtocolError
from ..common.rng import DeterministicRng
from ..common.stats import StatGroup
from .block import CacheBlock
from .replacement import ReplacementPolicy, make_policy


class CacheSet:
    """One set: way-indexed blocks, a tag index, and replacement metadata."""

    __slots__ = ("ways", "blocks", "by_tag", "policy")

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        self.ways = ways
        self.blocks: List[Optional[CacheBlock]] = [None] * ways
        self.by_tag: Dict[int, int] = {}
        self.policy = policy

    def find(self, tag: int) -> Optional[int]:
        """Way holding ``tag``, or None."""
        return self.by_tag.get(tag)

    def free_way(self) -> Optional[int]:
        """An unoccupied way, or None if the set is full."""
        if len(self.by_tag) == self.ways:
            return None
        for way, block in enumerate(self.blocks):
            if block is None:
                return way
        raise ProtocolError("set bookkeeping out of sync")  # pragma: no cover

    def occupancy(self) -> int:
        """Number of valid lines in the set."""
        return len(self.by_tag)


class CacheArray:
    """A set-associative array of :class:`CacheBlock` records."""

    def __init__(self, config: CacheConfig, rng: DeterministicRng, stats: StatGroup) -> None:
        self.config = config
        self.stats = stats
        self._sets: List[CacheSet] = [
            CacheSet(config.ways, make_policy(config.replacement, config.ways, rng.spawn(i)))
            for i in range(config.sets)
        ]
        # Hot-path index/tag extraction (equivalent to set_index/tag_bits).
        self._index_mask = config.sets - 1
        self._tag_shift = config.sets.bit_length() - 1

    # -- lookup --------------------------------------------------------------

    def _locate(self, block_addr: int) -> Tuple[CacheSet, int]:
        return (
            self._sets[block_addr & self._index_mask],
            block_addr >> self._tag_shift,
        )

    def lookup(self, block_addr: int, touch: bool = True) -> Optional[CacheBlock]:
        """Return the block if present; update replacement state if ``touch``."""
        cset, tag = self._locate(block_addr)
        way = cset.find(tag)
        if way is None:
            return None
        if touch:
            cset.policy.on_access(way)
        return cset.blocks[way]

    def contains(self, block_addr: int) -> bool:
        """Presence test with no replacement-state side effect."""
        cset, tag = self._locate(block_addr)
        return cset.find(tag) is not None

    # -- allocation ----------------------------------------------------------

    def peek_victim(self, block_addr: int) -> Optional[CacheBlock]:
        """The block a fill of ``block_addr`` would evict (None if a way is free).

        Does not mutate replacement state; the subsequent :meth:`allocate`
        will evict exactly this block (policies are only advanced by
        accesses/fills, which the caller does not interleave).
        """
        cset, tag = self._locate(block_addr)
        if cset.find(tag) is not None:
            raise ProtocolError(f"block {block_addr:#x} already present; fill is invalid")
        if cset.free_way() is not None:
            return None
        return cset.blocks[cset.policy.victim()]

    def allocate(self, block_addr: int, state: int) -> Tuple[CacheBlock, Optional[CacheBlock]]:
        """Install ``block_addr`` and return ``(new_block, evicted_block)``.

        The caller must have already handled the coherence consequences of
        the eviction reported by :meth:`peek_victim`.
        """
        cset, tag = self._locate(block_addr)
        if cset.find(tag) is not None:
            raise ProtocolError(f"block {block_addr:#x} already present; fill is invalid")
        way = cset.free_way()
        evicted: Optional[CacheBlock] = None
        if way is None:
            way = cset.policy.victim()
            evicted = cset.blocks[way]
            assert evicted is not None
            del cset.by_tag[evicted.tag]
            self.stats.add("evictions")
        block = CacheBlock(block_addr, tag, state)
        cset.blocks[way] = block
        cset.by_tag[tag] = way
        cset.policy.on_fill(way)
        self.stats.add("fills")
        return block, evicted

    # -- removal -------------------------------------------------------------

    def remove(self, block_addr: int) -> Optional[CacheBlock]:
        """Drop the block (invalidation); return it, or None if absent."""
        cset, tag = self._locate(block_addr)
        way = cset.find(tag)
        if way is None:
            return None
        block = cset.blocks[way]
        cset.blocks[way] = None
        del cset.by_tag[tag]
        self.stats.add("removals")
        return block

    # -- inspection ----------------------------------------------------------

    def iter_blocks(self) -> Iterator[CacheBlock]:
        """Every valid block, set by set (deterministic order)."""
        for cset in self._sets:
            for block in cset.blocks:
                if block is not None:
                    yield block

    def occupancy(self) -> int:
        """Total valid lines."""
        return sum(cset.occupancy() for cset in self._sets)

    def set_occupancy(self, block_addr: int) -> int:
        """Valid lines in the set that ``block_addr`` maps to."""
        cset, _ = self._locate(block_addr)
        return cset.occupancy()
