"""The cache-line metadata record shared by every array in the system.

One class serves L1s, the LLC and (via composition) directory entries'
residency bookkeeping, so invariant checkers can treat them uniformly.  The
fields that only one structure uses are documented as such:

* ``state`` — MESI state in L1s; VALID/INVALID-style use in the LLC.
* ``dirty`` — LLC: line differs from memory; L1: implied by state M.
* ``stash`` — **LLC only**: the stash bit of the paper.  Set when the
  directory stashed (silently dropped) the entry tracking this block; it
  marks the line as *possibly hidden* in exactly one private cache.
* ``version`` — monotonically increasing write version used by the
  data-value invariant checker (a stand-in for the actual data payload).
"""

from __future__ import annotations

from typing import Optional


class CacheBlock:
    """Mutable per-line metadata. ``__slots__`` keeps millions of them cheap."""

    __slots__ = ("addr", "tag", "state", "dirty", "stash", "version")

    def __init__(self, addr: int, tag: int, state: int, dirty: bool = False) -> None:
        self.addr = addr      # full block address (not just the tag)
        self.tag = tag
        self.state = state
        self.dirty = dirty
        self.stash = False
        self.version = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.dirty:
            flags.append("dirty")
        if self.stash:
            flags.append("stash")
        extra = f" [{','.join(flags)}]" if flags else ""
        return f"CacheBlock(addr={self.addr:#x}, state={self.state}{extra})"


def copy_block(block: Optional[CacheBlock]) -> Optional[CacheBlock]:
    """Snapshot a block's metadata (used when reporting evicted victims)."""
    if block is None:
        return None
    clone = CacheBlock(block.addr, block.tag, block.state, block.dirty)
    clone.stash = block.stash
    clone.version = block.version
    return clone
