"""Two-level private cache hierarchy (L1 + inclusive private L2).

The paper's CMP gives each core an L1 and a private L2; the directory
tracks the L2 level.  :class:`PrivateHierarchy` is a drop-in for
:class:`~repro.cache.l1.L1Cache` in the protocol engine: it exposes the
same coherence interface (probe / fill / invalidate / downgrade / upgrade)
over the whole private domain, and manages the L1/L2 interaction
internally:

* **Inclusion** — every L1 line is also in the L2; an L2 eviction silently
  drops the L1 copy (it is the same coherence unit leaving the domain).
* **Promotion** — a local access that misses L1 but hits L2 promotes the
  line into the L1 (the demoted L1 victim folds its dirty state into its
  L2 copy; no protocol message).
* **State mirroring** — coherence state/dirty/version are kept identical
  in both copies at every externally visible point, so the L2 view
  (:meth:`iter_blocks`) is always the authoritative content of the private
  domain for invariant checking.

Only the *hierarchy-level* victim (an L2 eviction) is reported to the home
as a putback; L1↔L2 movement is invisible to the directory, exactly as in
hardware.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..common.config import CacheConfig
from ..common.errors import ConfigError, ProtocolError
from ..common.mesi import MesiState
from ..common.rng import DeterministicRng
from ..common.stats import StatGroup
from .array import CacheArray
from .block import CacheBlock


class PrivateHierarchy:
    """One core's private L1 + inclusive private L2."""

    def __init__(
        self,
        core_id: int,
        l1_config: CacheConfig,
        l2_config: CacheConfig,
        rng: DeterministicRng,
        stats: StatGroup,
    ) -> None:
        if l2_config.block_bytes != l1_config.block_bytes:
            raise ConfigError("L1 and private L2 must share one block size")
        if l2_config.blocks < l1_config.blocks:
            raise ConfigError(
                "inclusive private L2 must be at least as large as the L1 "
                f"({l2_config.blocks} < {l1_config.blocks} blocks)"
            )
        self.core_id = core_id
        self.config = l1_config      # interface parity with L1Cache
        self.l2_config = l2_config
        self.stats = stats
        self._l1 = CacheArray(l1_config, rng.spawn(1), stats.child("l1_array"))
        self._l2 = CacheArray(l2_config, rng.spawn(2), stats.child("l2_array"))

    # -- internal helpers ---------------------------------------------------------

    def _sync_down(self, l1_block: CacheBlock) -> None:
        """Fold an L1 copy's state into its (mandatory) L2 copy."""
        l2_block = self._l2.lookup(l1_block.addr, touch=False)
        if l2_block is None:  # pragma: no cover - inclusion violation
            raise ProtocolError(
                f"L1 holds {l1_block.addr:#x} without an L2 copy (inclusion bug)"
            )
        l2_block.state = l1_block.state
        l2_block.dirty = l1_block.dirty
        l2_block.version = l1_block.version

    def _demote_l1_victim(self, addr: int) -> None:
        """Make room in the L1 for ``addr``: demote the victim into the L2."""
        victim = self._l1.peek_victim(addr)
        if victim is not None:
            self._sync_down(victim)
            self._l1.remove(victim.addr)
            self.stats.add("l1_demotions")

    def _install_l1(self, l2_block: CacheBlock) -> CacheBlock:
        """Mirror an L2 line into the L1 (promotion / fill path)."""
        self._demote_l1_victim(l2_block.addr)
        l1_block, evicted = self._l1.allocate(l2_block.addr, l2_block.state)
        assert evicted is None
        l1_block.dirty = l2_block.dirty
        l1_block.version = l2_block.version
        return l1_block

    # -- local access path (used by the L1 controller) ------------------------------

    def access_block(self, addr: int) -> Tuple[Optional[CacheBlock], str]:
        """Local lookup: returns ``(block, level)``.

        ``level`` is ``"l1"``, ``"l2"`` (line was promoted) or ``"miss"``.
        The returned block is always the (possibly fresh) L1 copy.
        """
        l1_block = self._l1.lookup(addr)
        if l1_block is not None:
            return l1_block, "l1"
        l2_block = self._l2.lookup(addr)
        if l2_block is not None:
            self.stats.add("l2_promotions")
            return self._install_l1(l2_block), "l2"
        return None, "miss"

    # -- coherence interface (same surface as L1Cache) --------------------------------

    def probe(self, block_addr: int, touch: bool = True) -> Optional[CacheBlock]:
        """Does the private domain hold the line?  (No promotion.)

        Returns the L2 copy — the authoritative view — so remote flows
        (forwards, discovery) see correct state/dirty/version.
        """
        l1_block = self._l1.lookup(block_addr, touch=False)
        if l1_block is not None:
            self._sync_down(l1_block)  # L1 may be ahead (recent write)
        return self._l2.lookup(block_addr, touch=touch)

    def state_of(self, block_addr: int) -> MesiState:
        """MESI state of the line in the private domain."""
        block = self.probe(block_addr, touch=False)
        return MesiState(block.state) if block is not None else MesiState.INVALID

    def peek_fill_victim(self, block_addr: int) -> Optional[CacheBlock]:
        """The block a fill would push out of the private domain (L2 victim).

        The returned view carries the *merged* dirty state (an L1 copy may
        be dirtier than its L2 mirror), which is what the putback needs.
        """
        victim = self._l2.peek_victim(block_addr)
        if victim is None:
            return None
        l1_copy = self._l1.lookup(victim.addr, touch=False)
        if l1_copy is not None:
            self._sync_down(l1_copy)
        return victim

    def fill(self, block_addr: int, state: MesiState, version: int) -> CacheBlock:
        """Install a granted line into both levels.

        The caller has already retired the hierarchy victim reported by
        :meth:`peek_fill_victim` (via ``invalidate`` + putback).
        """
        if state == MesiState.INVALID:
            raise ProtocolError("cannot fill a line in INVALID state")
        l2_block, evicted = self._l2.allocate(block_addr, int(state))
        assert evicted is None
        l2_block.dirty = state == MesiState.MODIFIED
        l2_block.version = version
        return self._install_l1(l2_block)

    def upgrade_to_modified(self, block_addr: int) -> CacheBlock:
        """S/E -> M on a local write; both copies move together."""
        l2_block = self._l2.lookup(block_addr, touch=False)
        if l2_block is None:
            raise ProtocolError(f"upgrade of uncached block {block_addr:#x}")
        l2_block.state = int(MesiState.MODIFIED)
        l2_block.dirty = True
        l1_block = self._l1.lookup(block_addr, touch=False)
        if l1_block is not None:
            l1_block.state = l2_block.state
            l1_block.dirty = True
        return l2_block

    def downgrade_to_owned(self, block_addr: int) -> CacheBlock:
        """M -> O on a remote read under MOESI (both copies stay dirty)."""
        l2_block = self._l2.lookup(block_addr, touch=False)
        if l2_block is None:
            raise ProtocolError(f"owned-downgrade of uncached block {block_addr:#x}")
        l1_block = self._l1.lookup(block_addr, touch=False)
        if l1_block is not None:
            self._sync_down(l1_block)
            l1_block.state = int(MesiState.OWNED)
        l2_block.state = int(MesiState.OWNED)
        return l2_block

    def downgrade_to_shared(self, block_addr: int) -> CacheBlock:
        """M/E -> S on a remote read (data collected by the caller)."""
        l2_block = self._l2.lookup(block_addr, touch=False)
        if l2_block is None:
            raise ProtocolError(f"downgrade of uncached block {block_addr:#x}")
        l1_block = self._l1.lookup(block_addr, touch=False)
        if l1_block is not None:
            self._sync_down(l1_block)
            l1_block.state = int(MesiState.SHARED)
            l1_block.dirty = False
        l2_block.state = int(MesiState.SHARED)
        l2_block.dirty = False
        return l2_block

    def invalidate(self, block_addr: int) -> Optional[CacheBlock]:
        """Drop the line from the whole private domain; returns the merged
        view (for writeback decisions) or None."""
        l1_block = self._l1.lookup(block_addr, touch=False)
        if l1_block is not None:
            self._sync_down(l1_block)
            self._l1.remove(block_addr)
        return self._l2.remove(block_addr)

    # -- inspection --------------------------------------------------------------------

    def iter_blocks(self) -> Iterator[CacheBlock]:
        """Authoritative private-domain contents (the L2 view)."""
        for l1_block in self._l1.iter_blocks():
            self._sync_down(l1_block)
        return self._l2.iter_blocks()

    def occupancy(self) -> int:
        """Lines in the private domain."""
        return self._l2.occupancy()

    def l1_occupancy(self) -> int:
        """Lines currently mirrored in the L1."""
        return self._l1.occupancy()

    def check_internal_inclusion(self) -> None:
        """Every L1 line must have an L2 copy (test/debug helper)."""
        for block in self._l1.iter_blocks():
            if not self._l2.contains(block.addr):
                raise ProtocolError(
                    f"core {self.core_id}: L1 line {block.addr:#x} missing from L2"
                )
