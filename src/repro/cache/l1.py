"""Per-core private L1 cache.

A thin coherence-aware wrapper over :class:`~repro.cache.array.CacheArray`:
the L1 stores MESI state per line and exposes exactly the operations the L1
controller needs (probe, fill, invalidate, downgrade).  All *protocol*
decisions live in :mod:`repro.coherence.l1_controller`; this class is pure
state.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..common.mesi import MesiState
from ..common.config import CacheConfig
from ..common.errors import ProtocolError
from ..common.rng import DeterministicRng
from ..common.stats import StatGroup
from .array import CacheArray
from .block import CacheBlock


class L1Cache:
    """One core's private cache with MESI per-line state."""

    def __init__(
        self,
        core_id: int,
        config: CacheConfig,
        rng: DeterministicRng,
        stats: StatGroup,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.stats = stats
        self._array = CacheArray(config, rng, stats.child("array"))
        # Hot-path handles: these operations are pure delegations to the
        # array, so the instance binds them directly and callers skip a
        # wrapper frame per event.
        self.lookup_block = self._array.lookup
        self.probe = self._array.lookup
        self.peek_fill_victim = self._array.peek_victim
        self.invalidate = self._array.remove

    # -- lookups -------------------------------------------------------------

    def access_block(self, block_addr: int):
        """Local lookup: ``(block, level)`` with level "l1" or "miss".

        Interface parity with
        :meth:`repro.cache.hierarchy.PrivateHierarchy.access_block`.
        """
        block = self._array.lookup(block_addr)
        return block, ("l1" if block is not None else "miss")

    def probe(self, block_addr: int, touch: bool = True) -> Optional[CacheBlock]:
        """Return the line if cached (any valid state), else None.

        Shadowed per instance by the bound array lookup (same signature);
        kept for documentation and subclass overriding.
        """
        return self._array.lookup(block_addr, touch=touch)

    def state_of(self, block_addr: int) -> MesiState:
        """MESI state of the line, INVALID if not present (no LRU touch)."""
        block = self._array.lookup(block_addr, touch=False)
        return MesiState(block.state) if block is not None else MesiState.INVALID

    # -- fills ---------------------------------------------------------------

    def peek_fill_victim(self, block_addr: int) -> Optional[CacheBlock]:
        """Which line a fill would displace (None if a way is free)."""
        return self._array.peek_victim(block_addr)

    def fill(self, block_addr: int, state: MesiState, version: int) -> CacheBlock:
        """Install a line in ``state``.

        The caller must have already consumed :meth:`peek_fill_victim` and
        handled the victim's writeback/notification; ``fill`` asserts the
        resulting eviction matches that expectation by returning only the new
        block (the array's eviction is the same block peeked).
        """
        if state == MesiState.INVALID:
            raise ProtocolError("cannot fill a line in INVALID state")
        block, _evicted = self._array.allocate(block_addr, int(state))
        block.dirty = state == MesiState.MODIFIED
        block.version = version
        return block

    # -- state transitions ---------------------------------------------------

    def upgrade_to_modified(self, block_addr: int) -> CacheBlock:
        """S/E -> M on a local write (the write itself; messages are the
        controller's business)."""
        block = self._array.lookup(block_addr, touch=False)
        if block is None:
            raise ProtocolError(f"upgrade of uncached block {block_addr:#x}")
        block.state = int(MesiState.MODIFIED)
        block.dirty = True
        return block

    def downgrade_to_owned(self, block_addr: int) -> CacheBlock:
        """M -> O on a remote read under MOESI: stay dirty, keep servicing
        readers (no LLC writeback)."""
        block = self._array.lookup(block_addr, touch=False)
        if block is None:
            raise ProtocolError(f"owned-downgrade of uncached block {block_addr:#x}")
        block.state = int(MesiState.OWNED)
        return block

    def downgrade_to_shared(self, block_addr: int) -> CacheBlock:
        """M/E -> S on a remote read; returns the line so the caller can
        collect dirty data for writeback."""
        block = self._array.lookup(block_addr, touch=False)
        if block is None:
            raise ProtocolError(f"downgrade of uncached block {block_addr:#x}")
        block.state = int(MesiState.SHARED)
        block.dirty = False
        return block

    def invalidate(self, block_addr: int) -> Optional[CacheBlock]:
        """Drop the line (remote write / directory eviction / back-inval).

        Returns the removed line (caller inspects ``dirty``/``version`` for
        writeback) or None if it was not present.
        """
        return self._array.remove(block_addr)

    # -- inspection ----------------------------------------------------------

    def iter_blocks(self) -> Iterator[CacheBlock]:
        """All valid lines (for invariant checking)."""
        return self._array.iter_blocks()

    def occupancy(self) -> int:
        """Number of valid lines."""
        return self._array.occupancy()
