"""Shared, inclusive, banked last-level cache.

The LLC is the data home for every block and — central to the paper — the
keeper of the per-line **stash bit**.  When the stash directory silently
drops an entry that tracked a private block, it sets the stash bit on the
corresponding LLC line; a later directory miss that hits a stash-bit line
triggers the discovery broadcast (see :mod:`repro.core.discovery`).

Banking is logical: the array is one structure, but every block has a static
home bank (:func:`~repro.common.addr.home_bank`) used for NoC distances; this
matches the usual "directory slice co-located with LLC bank" floorplan.

Inclusion is enforced by the protocol engine: before the LLC evicts a line it
back-invalidates every private copy (via the directory if tracked, via
discovery if the stash bit is set).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..common.mesi import LlcState
from ..common.addr import home_bank
from ..common.config import CacheConfig
from ..common.errors import ProtocolError
from ..common.rng import DeterministicRng
from ..common.stats import StatGroup
from .array import CacheArray
from .block import CacheBlock


class SharedLLC:
    """The shared inclusive LLC with stash-bit support."""

    def __init__(
        self,
        config: CacheConfig,
        num_banks: int,
        rng: DeterministicRng,
        stats: StatGroup,
    ) -> None:
        self.config = config
        self.num_banks = num_banks
        self.stats = stats
        self._array = CacheArray(config, rng, stats.child("array"))
        # Hot-path handles: pure delegations bound per instance so the
        # protocol engine's probes skip a wrapper frame (signatures match
        # the shadowed methods below).
        self.probe = self._array.lookup
        self.contains = self._array.contains
        self.peek_fill_victim = self._array.peek_victim
        self.invalidate = self._array.remove
        # Writebacks are absorbed once per dirty L1 eviction/downgrade:
        # bound counter cell, created on first event.
        self._c_writebacks = None

    # -- geometry ------------------------------------------------------------

    def bank_of(self, block_addr: int) -> int:
        """Static home bank (= home tile) of a block."""
        return home_bank(block_addr, self.num_banks)

    # -- lookups -------------------------------------------------------------

    def probe(self, block_addr: int, touch: bool = True) -> Optional[CacheBlock]:
        """Return the line if present."""
        return self._array.lookup(block_addr, touch=touch)

    def contains(self, block_addr: int) -> bool:
        """Presence test without touching replacement state."""
        return self._array.contains(block_addr)

    # -- fills / evictions ---------------------------------------------------

    def peek_fill_victim(self, block_addr: int) -> Optional[CacheBlock]:
        """Which line a fill of ``block_addr`` would displace."""
        return self._array.peek_victim(block_addr)

    def fill(self, block_addr: int, version: int, dirty: bool = False) -> CacheBlock:
        """Install a line fetched from memory.

        The protocol engine must already have handled the inclusion
        consequences of the victim reported by :meth:`peek_fill_victim`.
        """
        block, _ = self._array.allocate(block_addr, int(LlcState.VALID))
        block.dirty = dirty
        block.version = version
        return block

    def invalidate(self, block_addr: int) -> Optional[CacheBlock]:
        """Remove a line (LLC eviction path); returns it for writeback."""
        return self._array.remove(block_addr)

    # -- stash bit (the paper's LLC extension) --------------------------------

    def set_stash_bit(self, block_addr: int) -> None:
        """Mark the line as possibly hiding a private copy.

        Raises:
            ProtocolError: stash requires the line to be resident (the stash
                directory only stashes blocks the inclusive LLC holds).
        """
        block = self._array.lookup(block_addr, touch=False)
        if block is None:
            raise ProtocolError(
                f"stash bit for non-resident LLC line {block_addr:#x}"
            )
        if not block.stash:
            block.stash = True
            self.stats.add("stash_bits_set")

    def clear_stash_bit(self, block_addr: int) -> None:
        """Clear the stash bit (hidden copy discovered or known gone)."""
        block = self._array.lookup(block_addr, touch=False)
        if block is not None and block.stash:
            block.stash = False
            self.stats.add("stash_bits_cleared")

    def stash_bit(self, block_addr: int) -> bool:
        """Read the stash bit (False for non-resident lines)."""
        block = self._array.lookup(block_addr, touch=False)
        return bool(block is not None and block.stash)

    # -- data-version bookkeeping ---------------------------------------------

    def write_back(self, block_addr: int, version: int) -> CacheBlock:
        """Absorb a dirty writeback from a private cache."""
        block = self._array.lookup(block_addr, touch=False)
        if block is None:
            raise ProtocolError(
                f"writeback to non-resident LLC line {block_addr:#x} violates inclusion"
            )
        block.dirty = True
        if version > block.version:
            block.version = version
        cell = self._c_writebacks
        if cell is None:
            cell = self._c_writebacks = self.stats.counter("writebacks_absorbed")
        cell.value += 1
        return block

    # -- inspection ------------------------------------------------------------

    def iter_blocks(self) -> Iterator[CacheBlock]:
        """All valid lines (for invariant checking)."""
        return self._array.iter_blocks()

    def occupancy(self) -> int:
        """Number of valid lines."""
        return self._array.occupancy()

    def stash_bit_count(self) -> int:
        """How many resident lines currently carry the stash bit."""
        return sum(1 for block in self._array.iter_blocks() if block.stash)
