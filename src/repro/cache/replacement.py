"""Replacement policies for set-associative arrays.

Each policy instance manages the metadata of **one set**: the cache array
creates one instance per set via :func:`make_policy`.  The interface is
three hooks — touch on access/fill, and victim selection — over way indices,
so the same policies drive L1s, the LLC, and the set-associative directory
organizations.

Policies implemented: true LRU, Tree-PLRU, NRU, SRRIP and Random, matching
the option space typical directory studies sweep.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..common.errors import ConfigError
from ..common.rng import DeterministicRng


class ReplacementPolicy:
    """Per-set replacement metadata and victim selection.

    ``ways`` is the associativity of the set this instance manages.  The
    array guarantees ``victim`` is only called when every way is occupied;
    unoccupied ways are filled directly.
    """

    def __init__(self, ways: int) -> None:
        if ways < 1:
            raise ConfigError(f"replacement policy needs ways >= 1, got {ways}")
        self.ways = ways

    def on_access(self, way: int) -> None:
        """A hit touched ``way``."""
        raise NotImplementedError

    def on_fill(self, way: int) -> None:
        """A new line was installed into ``way``."""
        raise NotImplementedError

    def victim(self, candidates: Optional[Sequence[int]] = None) -> int:
        """Pick the way to evict.

        ``candidates`` restricts the choice to a subset of ways (used by the
        stash directory, which prefers stash-eligible entries); ``None``
        means all ways are candidates.  ``candidates`` is non-empty.
        """
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """True least-recently-used, via a monotonically increasing clock.

    This is the default policy of every set-associative structure, so its
    hooks are the hottest replacement code in the simulator: ``on_access``
    and ``on_fill`` are one shared flat method (no helper dispatch) and
    ``victim`` selects via the list's own ``__getitem__`` instead of a
    per-call closure.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._clock = 0
        self._last_use: List[int] = [0] * ways
        self._all_ways = range(ways)

    def on_access(self, way: int) -> None:
        self._clock = clock = self._clock + 1
        self._last_use[way] = clock

    # A fill touches exactly like an access; sharing the function object
    # keeps the common path monomorphic.
    on_fill = on_access

    def victim(self, candidates: Optional[Sequence[int]] = None) -> int:
        ways = self._all_ways if candidates is None else candidates
        return min(ways, key=self._last_use.__getitem__)


class TreePlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU over a power-of-two number of ways.

    Classic binary-tree PLRU: one bit per internal node points away from the
    most recently used half.  Non-power-of-two associativities fall back to
    the next power of two with unused leaves masked out.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._leaves = 1
        while self._leaves < ways:
            self._leaves *= 2
        self._bits: List[int] = [0] * self._leaves  # index 1.._leaves-1 used

    def _touch(self, way: int) -> None:
        node = 1
        span = self._leaves
        base = 0
        while span > 1:
            span //= 2
            if way < base + span:
                self._bits[node] = 1  # MRU went left; point right
                node = node * 2
            else:
                self._bits[node] = 0
                node = node * 2 + 1
                base += span

    def on_access(self, way: int) -> None:
        self._touch(way)

    def on_fill(self, way: int) -> None:
        self._touch(way)

    def _walk(self) -> int:
        node = 1
        span = self._leaves
        base = 0
        while span > 1:
            span //= 2
            if self._bits[node]:
                node = node * 2 + 1
                base += span
            else:
                node = node * 2
        return min(base, self.ways - 1)

    def victim(self, candidates: Optional[Sequence[int]] = None) -> int:
        pick = self._walk()
        if candidates is None or pick in candidates:
            return pick
        # Restricted choice: approximate by the candidate whose leaf path
        # disagrees least with the PLRU bits — cheap proxy: first candidate.
        return candidates[0]


class NruPolicy(ReplacementPolicy):
    """Not-recently-used: one reference bit per way, cleared in bulk."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._ref: List[bool] = [False] * ways

    def on_access(self, way: int) -> None:
        self._ref[way] = True
        if all(self._ref):
            for i in range(self.ways):
                self._ref[i] = i == way

    def on_fill(self, way: int) -> None:
        self.on_access(way)

    def victim(self, candidates: Optional[Sequence[int]] = None) -> int:
        ways = range(self.ways) if candidates is None else candidates
        for way in ways:
            if not self._ref[way]:
                return way
        return next(iter(ways))


class SrripPolicy(ReplacementPolicy):
    """Static re-reference interval prediction with 2-bit RRPV."""

    MAX_RRPV = 3

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._rrpv: List[int] = [self.MAX_RRPV] * ways

    def on_access(self, way: int) -> None:
        self._rrpv[way] = 0

    def on_fill(self, way: int) -> None:
        self._rrpv[way] = self.MAX_RRPV - 1  # "long" re-reference on insert

    def victim(self, candidates: Optional[Sequence[int]] = None) -> int:
        ways = list(range(self.ways)) if candidates is None else list(candidates)
        while True:
            for way in ways:
                if self._rrpv[way] == self.MAX_RRPV:
                    return way
            for way in ways:
                self._rrpv[way] += 1


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim; access pattern is ignored."""

    def __init__(self, ways: int, rng: DeterministicRng) -> None:
        super().__init__(ways)
        self._rng = rng

    def on_access(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        pass

    def victim(self, candidates: Optional[Sequence[int]] = None) -> int:
        ways = list(range(self.ways)) if candidates is None else list(candidates)
        return self._rng.choice(ways)


PolicyFactory = Callable[[int], ReplacementPolicy]

_REGISTRY: Dict[str, Callable[[int, DeterministicRng], ReplacementPolicy]] = {
    "lru": lambda ways, rng: LruPolicy(ways),
    "plru": lambda ways, rng: TreePlruPolicy(ways),
    "nru": lambda ways, rng: NruPolicy(ways),
    "srrip": lambda ways, rng: SrripPolicy(ways),
    "random": lambda ways, rng: RandomPolicy(ways, rng),
}


def policy_names() -> List[str]:
    """Names accepted by :class:`~repro.common.config.CacheConfig.replacement`."""
    return sorted(_REGISTRY)


def make_policy(name: str, ways: int, rng: DeterministicRng) -> ReplacementPolicy:
    """Instantiate the policy ``name`` for a set of ``ways`` ways.

    Raises:
        ConfigError: for unknown policy names.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown replacement policy {name!r}; known: {policy_names()}"
        ) from None
    return factory(ways, rng)
