"""Command-line interface: ``python -m repro`` or the ``repro-sim`` script.

Subcommands:

* ``run`` — simulate one (workload, directory, ratio) point and print the
  result summary.
* ``sweep`` — provisioning sweep over one workload for several
  organizations (figure F3 as a command).
* ``characterize`` — print workload sharing profiles (figure F1).
* ``experiment`` — regenerate any experiment from DESIGN.md's index by id
  (T1, T2, F1..F10, A1..A3).
* ``gen-trace`` — write a suite workload to a CSV trace file.
* ``replay`` — simulate a CSV trace file.
* ``fuzz`` — protocol fuzzing: random multi-core programs over a tiny,
  conflict-dense system with the full invariant suite checked after every
  access.
* ``timeline`` — observed sparse-vs-stash divergence timeline: epoch
  time-series tables plus Perfetto trace exports (repro.obs).
* ``compare`` — side-by-side diff of result files saved with ``--save``.
* ``report`` — regenerate the whole evaluation into one markdown file.
* ``serve`` — run the campaign service: an async HTTP/JSON API that
  accepts sweep-campaign manifests, executes them through the dispatch
  backends with crash-safe journaled resume, and exposes live Prometheus
  metrics at ``/metrics`` (see docs/SERVICE.md).

Observability flags on ``run`` and ``replay`` (see docs/OBSERVABILITY.md):
``--obs-epoch N`` samples the epoch time-series, ``--trace-events [CAP]``
records coherence events into a bounded ring, ``--check-invariants [N]``
runs the invariant suite every N ops, and ``--obs-out PREFIX`` names the
export files.

Every command prints plain text (the same tables the benchmark harness
emits) and returns a non-zero exit code on error.

Global sweep-engine flags (give them *before* the subcommand):
``--workers N`` fans independent sweep points across N worker processes
in trace-key-grouped batches (``--batch-size N`` overrides the per-
dispatch size), ``--cache-dir PATH`` / ``--no-cache`` control the
persistent result cache, ``--trace-cache/--no-trace-cache`` the shared
trace spool, and ``--cache-stats`` prints hit-rate/wall-time counters to
stderr (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from . import analysis
from .analysis.experiments import make_config, simulate
from .analysis.figures import render_series
from .analysis.tables import render_kv, render_table
from .common.config import DirectoryKind, MemoryModel
from .common.errors import ReproError
from .sim.simulator import Simulator, run_trace
from .sim.system import build_system
from .sim.trace import Trace
from .workloads.suite import build_workload, workload_names

#: Experiment-id -> registry runner (kwargs: workloads / ops where relevant).
EXPERIMENTS: Dict[str, Callable] = {
    "T1": analysis.run_config_table,
    "T2": analysis.run_storage_table,
    "F1": analysis.run_characterization,
    "F2": analysis.run_invalidation_sweep,
    "F3": analysis.run_performance_sweep,
    "F4": analysis.run_invalidation_comparison,
    "F5": analysis.run_traffic_sweep,
    "F6": analysis.run_discovery_stats,
    "F7": analysis.run_effective_capacity,
    "F8": analysis.run_assoc_sensitivity,
    "F9": analysis.run_core_scaling,
    "F10": analysis.run_energy_comparison,
    "F11": analysis.run_private_l2_headline,
    "S3": analysis.run_seed_stability,
    "A1": analysis.run_ablation_eligibility,
    "A2": analysis.run_ablation_notification,
    "A3": analysis.run_ablation_sharers,
    "headline": analysis.run_headline,
}


def _config_from_args(args: argparse.Namespace):
    return make_config(
        kind=DirectoryKind(args.kind),
        ratio=args.ratio,
        num_cores=args.cores,
        seed=args.seed,
        check_invariants=bool(getattr(args, "check_invariants", 0)),
        moesi=getattr(args, "moesi", False),
    )


def _add_common_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="mix", choices=workload_names())
    parser.add_argument("--cores", type=int, default=16)
    parser.add_argument("--ops", type=int, default=3000, help="ops per core")
    parser.add_argument("--seed", type=int, default=1)


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by ``run`` and ``replay`` (repro.obs)."""
    from .obs import DEFAULT_TRACE_CAPACITY

    parser.add_argument(
        "--obs-epoch", type=int, default=0, metavar="N",
        help="sample the epoch time-series every N ops (0 = off)",
    )
    parser.add_argument(
        "--trace-events", nargs="?", const=DEFAULT_TRACE_CAPACITY, type=int,
        default=0, metavar="CAP",
        help=f"record coherence events in a ring of CAP entries "
             f"(bare flag = {DEFAULT_TRACE_CAPACITY})",
    )
    parser.add_argument(
        "--obs-out", default=None, metavar="PREFIX",
        help="write <PREFIX>.epochs.jsonl/.csv and <PREFIX>.trace.json "
             "(default: derived from --save, else 'obs')",
    )


def _attach_observer(system, args: argparse.Namespace):
    """Build + attach the observer the CLI flags describe (or None)."""
    from .obs import ObsConfig, attach

    config = ObsConfig(
        epoch_interval=getattr(args, "obs_epoch", 0),
        trace_capacity=getattr(args, "trace_events", 0),
        invariant_interval=getattr(args, "check_invariants", 0) or 0,
        out_prefix=getattr(args, "obs_out", None),
    )
    return attach(system, config)


def _write_obs(observer, args: argparse.Namespace) -> None:
    """Export the observer's data and print what was written."""
    if observer is None:
        return
    prefix = getattr(args, "obs_out", None)
    if not prefix and (observer.sampler is not None or observer.ring is not None):
        prefix = "obs"
    meta = {
        name: getattr(args, name)
        for name in ("workload", "kind", "ratio", "cores", "ops", "seed")
        if getattr(args, name, None) is not None
    }
    written = observer.write_all(prefix, meta)
    ring = observer.ring
    if ring is not None:
        print(
            f"traced {ring.total} events "
            f"({len(ring)} retained, {ring.dropped} dropped)"
        )
    if observer.sampler is not None:
        print(f"sampled {len(observer.sampler.epochs)} epochs")
    for path in written:
        print(f"wrote {path}")


def _maybe_save(result, args) -> None:
    path = getattr(args, "save", None)
    if path:
        from .analysis.io import save_result

        save_result(result, path)
        print(f"saved result to {path}")


def cmd_run(args: argparse.Namespace) -> int:
    """One simulation point with a full summary."""
    config = _config_from_args(args)
    if args.dram:
        from dataclasses import replace

        config = replace(config, memory_model=MemoryModel.DRAM)
    trace = build_workload(args.workload, args.cores, args.ops, seed=args.seed)
    system = build_system(config)
    observer = _attach_observer(system, args)
    if args.engine != "interp" and observer is None and not args.warmup:
        # Engine-selected path; falls back to the interpreter
        # transparently when the config is outside the flat model.
        result = run_trace(
            config, trace, engine=args.engine,
            epoch_ops=args.epoch_batch, engine_workers=args.engine_workers,
            speculate=args.speculate,
        )
    else:
        result = Simulator(
            system, warmup_ops=args.warmup, observer=observer
        ).run(trace)
    print(render_kv(config.describe().items(), title="configuration"))
    print()
    rows = [[key, value] for key, value in result.summary().items()]
    print(render_table(["metric", "value"], rows, title=f"results: {args.workload}"))
    _maybe_save(result, args)
    _write_obs(observer, args)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Provisioning sweep for several organizations on one workload."""
    kinds = [DirectoryKind(k) for k in args.kinds]
    ratios = args.ratios
    baseline = simulate(
        args.workload,
        make_config(DirectoryKind.SPARSE, 1.0, num_cores=args.cores, seed=args.seed),
        ops_per_core=args.ops,
        seed=args.seed,
    )
    series: Dict[str, List[float]] = {}
    for kind in kinds:
        values = []
        for ratio in ratios:
            result = simulate(
                args.workload,
                make_config(kind, ratio, num_cores=args.cores, seed=args.seed),
                ops_per_core=args.ops,
                seed=args.seed,
            )
            values.append(result.normalized_time(baseline))
        series[kind.value] = values
    x = [f"{r:g}" for r in ratios]
    print(
        render_series(
            f"{args.workload}: normalized execution time vs R (baseline sparse@1)",
            "R", x, series,
        )
    )
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    """Workload sharing profiles (figure F1)."""
    out = analysis.run_characterization(
        args.workloads or "all", ops_per_core=args.ops, num_cores=args.cores
    )
    print(out.text)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Regenerate one experiment from the DESIGN.md index."""
    runner = EXPERIMENTS[args.id]
    kwargs = {}
    if args.ops is not None and "ops_per_core" in runner.__code__.co_varnames:
        kwargs["ops_per_core"] = args.ops
    if args.workloads and "workloads" in runner.__code__.co_varnames:
        kwargs["workloads"] = args.workloads
    out = runner(**kwargs)
    print(out.text)
    return 0


def cmd_gen_trace(args: argparse.Namespace) -> int:
    """Generate a suite workload into a CSV trace file."""
    trace = build_workload(args.workload, args.cores, args.ops, seed=args.seed)
    trace.to_file(args.output)
    print(f"wrote {trace.total_ops()} ops ({args.cores} cores) to {args.output}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Simulate a CSV trace file."""
    trace = Trace.from_file(args.trace, num_cores=args.cores)
    config = _config_from_args(args)
    system = build_system(config)
    observer = _attach_observer(system, args)
    if args.engine != "interp" and observer is None and not args.warmup:
        result = run_trace(
            config, trace, engine=args.engine,
            epoch_ops=args.epoch_batch, engine_workers=args.engine_workers,
            speculate=args.speculate,
        )
    else:
        result = Simulator(
            system, warmup_ops=args.warmup, observer=observer
        ).run(trace)
    rows = [[key, value] for key, value in result.summary().items()]
    print(render_table(["metric", "value"], rows, title=f"replay: {args.trace}"))
    _maybe_save(result, args)
    _write_obs(observer, args)
    return 0


def _fuzz_options_for_seed(seed: int, args: argparse.Namespace):
    """One deterministic parameterization per seed (cycles the knobs)."""
    from .common.config import SharerFormat
    from .common.mesi import CoherenceProtocol
    from .verify import RunOptions

    formats = (
        SharerFormat.FULL_BIT_VECTOR,
        SharerFormat.COARSE_VECTOR,
        SharerFormat.LIMITED_POINTER,
    )
    return RunOptions(
        num_cores=args.cores if args.cores else (4 if seed % 4 < 2 else 6),
        sharer_format=formats[(seed // 2) % 3],
        coarse_group=4,
        limited_pointers=2,
        protocol=CoherenceProtocol.MOESI if seed % 2 else CoherenceProtocol.MESI,
        check_every=args.check_every,
        clean_eviction_notification=bool(seed & 4),
        discovery_filter_slots=8 if seed % 16 >= 8 else 0,
        seed=seed,
    )


def _fuzz_replay(path: str) -> int:
    """Replay one serialized fuzz case; report whether it reproduces."""
    from .verify import (
        ENGINE_FAULTS,
        FAULTS,
        load_case,
        run_differential,
        run_engine_differential,
        run_parallel_differential,
    )
    from .verify.corpus import SEED_CATEGORY

    case = load_case(path)
    kind = DirectoryKind(case.kind)
    if case.category.startswith("parallel-"):
        fault = ENGINE_FAULTS[case.fault] if case.fault else None
        divergences = run_parallel_differential(
            case.program, kinds=[kind], options=case.options, fault=fault
        )
    elif case.category.startswith("engine-"):
        fault = ENGINE_FAULTS[case.fault] if case.fault else None
        divergences = run_engine_differential(
            case.program, kinds=[kind], options=case.options, fault=fault
        )
    else:
        fault = FAULTS[case.fault] if case.fault else None
        divergences = run_differential(
            case.program, kinds=[kind], options=case.options, fault=fault
        )
    fault_note = f" fault={case.fault}" if case.fault else ""
    print(
        f"replaying {path}: kind={case.kind} category={case.category}"
        f"{fault_note} ({len(case.program)} ops)"
    )
    if case.category == SEED_CATEGORY:
        if divergences:
            for divergence in divergences:
                print(f"  {divergence}", file=sys.stderr)
            print("seed case FAILED: regression program diverged", file=sys.stderr)
            return 1
        print("seed case clean: no divergence (expected)")
        return 0
    matches = [
        d for d in divergences if d.signature == (case.kind, case.category)
    ]
    if matches:
        print(f"reproduced: {matches[0]}")
        return 1
    for divergence in divergences:
        print(f"  other divergence: {divergence}")
    print("did not reproduce the recorded failure")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing: every organization vs the IDEAL reference.

    Generates adversarial flat programs (eviction storms, stash/discovery
    races, pointer overflow, coarse-group aliasing, set pile-ups), replays
    each on every requested organization and on IDEAL with the identical
    global operation order, and diffs observed data versions, the invariant
    suite and final architectural state.  A divergence is delta-debugged
    down to a minimal program, serialized under the failure corpus and
    printed with a one-command reproduction line.  See docs/VERIFICATION.md.

    ``--engine`` switches the differential axis from organizations to
    *engines*: every program replays on the interpreter, on the vector
    engine (:mod:`repro.sim.vector`) in flat program order, and on the
    parallel run-length batching engine (:mod:`repro.sim.parallel`) as a
    full per-core interleave at several scan-worker counts, over the
    flat-capable organizations — all captures must agree bit-for-bit,
    statistics included.
    """
    import dataclasses

    from .common.rng import DeterministicRng
    from .verify import (
        ENGINE_FAULTS,
        ENGINE_KINDS,
        FAULTS,
        FailureCase,
        generate_program,
        minimize,
        repro_command,
        run_differential,
        run_engine_differential,
        run_parallel_differential,
        save_case,
        seed_corpus,
    )
    from .verify.generator import PROFILES

    if args.list_faults:
        for name in sorted(FAULTS):
            print(f"{name}: {FAULTS[name].description}")
        for name in sorted(ENGINE_FAULTS):
            print(f"{name} (--engine): {ENGINE_FAULTS[name].description}")
        return 0
    if args.replay:
        return _fuzz_replay(args.replay)

    out_dir = args.out_dir
    if args.seed_corpus:
        for path in seed_corpus(out_dir):
            print(f"planted seed case {path}")
            code = _fuzz_replay(str(path))
            if code:
                return code

    engine_mode = bool(args.engine)
    if engine_mode:
        kinds = list(ENGINE_KINDS)
        fault = ENGINE_FAULTS[args.inject_fault] if args.inject_fault else None
    else:
        kinds = [DirectoryKind(k) for k in args.kinds]
        fault = FAULTS[args.inject_fault] if args.inject_fault else None
    profiles = args.profiles or list(PROFILES)
    failures = 0
    for offset in range(args.seeds):
        seed = args.seed_base + offset
        options = _fuzz_options_for_seed(seed, args)
        if engine_mode:
            # Discovery presence filters have no flat view; zero the knob
            # so every seed actually exercises the vector engine.
            options = dataclasses.replace(options, discovery_filter_slots=0)
        profile = profiles[offset % len(profiles)]
        program = generate_program(
            profile, options.num_cores, args.ops, DeterministicRng(seed)
        )
        if engine_mode:
            divergences = run_engine_differential(
                program, kinds=kinds, options=options, fault=fault
            )
            divergences += run_parallel_differential(
                program, kinds=kinds, options=options, fault=fault
            )
        else:
            divergences = run_differential(
                program, kinds=kinds, options=options, fault=fault
            )
        if not divergences:
            continue
        failures += len(divergences)
        divergence = divergences[0]
        print(
            f"seed {seed} profile={profile} "
            f"format={options.sharer_format.value} "
            f"protocol={options.protocol.value}: {divergence}",
            file=sys.stderr,
        )
        minimal = list(program)
        if args.minimize:
            signature = divergence.signature
            kind = DirectoryKind(divergence.kind) if divergence.kind != "ideal" \
                else DirectoryKind.IDEAL
            if engine_mode:
                replay_kinds = [kind]
                runner = (
                    run_parallel_differential
                    if divergence.category.startswith("parallel-")
                    else run_engine_differential
                )
            else:
                replay_kinds = kinds if kind is DirectoryKind.IDEAL else [kind]
                runner = run_differential

            def _still_fails(candidate) -> bool:
                again = runner(
                    candidate, kinds=replay_kinds, options=options, fault=fault
                )
                return any(d.signature == signature for d in again)

            minimal = minimize(program, _still_fails)
            print(
                f"minimized {len(program)} -> {len(minimal)} ops",
                file=sys.stderr,
            )
        case = FailureCase(
            program=minimal,
            kind=divergence.kind,
            category=divergence.category,
            detail=divergence.detail,
            options=options,
            profile=profile,
            fault=args.inject_fault,
        )
        path = save_case(case, out_dir)
        print(f"saved repro case: {path}", file=sys.stderr)
        print(f"reproduce with: {repro_command(path)}", file=sys.stderr)
    checked = len(kinds) * args.seeds
    if failures:
        print(
            f"FUZZ FAILURE: {failures} divergence(s) across "
            f"{args.seeds} seeds x {args.ops} ops",
            file=sys.stderr,
        )
        return 1
    if engine_mode:
        print(
            f"fuzzed {args.seeds} programs x {args.ops} ops "
            f"({len(kinds)} organizations, {checked} engine-differential "
            "runs): vector and parallel engines agree with the "
            "interpreter bit-for-bit"
        )
    else:
        print(
            f"fuzzed {args.seeds} programs x {args.ops} ops "
            f"({len(kinds)} organizations, {checked} differential runs): "
            "all organizations agree with ideal; all invariants held"
        )
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    """Observed sparse-vs-stash divergence timeline at one ratio.

    Runs both organizations with the epoch sampler and event tracer
    attached, prints per-epoch divergence tables and writes the Perfetto
    trace + epoch series next to the given prefix.
    """
    from .analysis.timeline import run_timeline

    out = run_timeline(
        workload=args.workload,
        ratio=args.ratio,
        num_cores=args.cores,
        ops_per_core=args.ops,
        seed=args.seed,
        out_prefix=args.out,
        epoch_interval=args.obs_epoch,
        trace_capacity=args.trace_events,
    )
    print(out.text)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Side-by-side comparison of saved result files (first is baseline)."""
    from pathlib import Path

    from .analysis.io import compare_results, load_result

    results = {Path(path).stem: load_result(path) for path in args.results}
    print(compare_results(results, title="saved-run comparison"))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate every experiment into a single markdown report."""
    from .analysis.report import generate_report

    workloads = "all" if args.full else None
    written = generate_report(
        args.output,
        workloads=workloads,
        ops_per_core=args.ops,
        sections=args.sections,
        progress=lambda exp_id: print(f"running {exp_id} ..."),
    )
    print(f"wrote {len(written)} sections to {args.output}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the campaign service until SIGINT/SIGTERM.

    Boots the asyncio HTTP server of :mod:`repro.service` on the given
    address, scheduling submitted campaigns through the selected dispatch
    backend.  The global sweep-engine flags apply: ``--workers`` sizes
    the backend (0 = auto), ``--cache-dir``/``--no-cache`` control the
    shared result cache and the campaign journal location, and
    ``--batch-size`` overrides the work-stealing dispatch split.
    """
    import asyncio

    from .service import ServiceConfig, serve_forever

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        backend=args.service_backend,
        workers=args.workers or 0,
        cache_dir=args.cache_dir,
        cache_enabled=not args.no_cache,
        trace_cache_enabled=True if args.trace_cache is None else args.trace_cache,
        batch_size=args.batch_size or 0,
        max_points=args.max_points,
    )

    def _ready(port: int, service) -> None:
        backend = service.backend
        print(
            f"campaign service listening on http://{config.host}:{port} "
            f"(backend={backend.name}, workers={backend.workers})",
            flush=True,
        )

    return asyncio.run(serve_forever(config, ready=_ready))


def build_parser() -> argparse.ArgumentParser:
    """The full CLI parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Stash Directory (HPCA 2014) reproduction toolkit",
    )
    # Sweep-engine knobs (global: give them before the subcommand).
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for sweep fan-out (default: REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persistent result-cache directory (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache for this invocation",
    )
    parser.add_argument(
        "--trace-cache", action=argparse.BooleanOptionalAction, default=None,
        help="enable/disable the shared trace spool under <cache-dir>/traces "
             "(default: on, or REPRO_NO_TRACE_CACHE)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="sweep points per worker dispatch (default: auto — split the "
             "pending set evenly across workers; 1 = per-point dispatch)",
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print sweep-runner hit-rate/wall-time counters (results, "
             "traces, spool) to stderr on exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help=cmd_run.__doc__)
    _add_common_run_args(run)
    run.add_argument("--kind", default="stash", choices=[k.value for k in DirectoryKind])
    run.add_argument("--ratio", type=float, default=0.125)
    run.add_argument("--warmup", type=int, default=0)
    run.add_argument("--dram", action="store_true", help="use the banked DRAM model")
    run.add_argument("--moesi", action="store_true", help="run MOESI instead of MESI")
    run.add_argument(
        "--engine", default="interp", choices=["interp", "vector", "parallel"],
        help="execution engine (vector = flat table-driven engine, parallel "
             "= run-length batching engine; bit-identical results, both fall "
             "back when unsupported)",
    )
    run.add_argument(
        "--epoch-batch", type=int, default=0, metavar="N",
        help="fast-engine batch size: decode-epoch ops (vector) or "
             "scan-window ops (parallel); 0 = engine default",
    )
    run.add_argument(
        "--engine-workers", default="auto", metavar="N",
        help="scan worker processes for the parallel engine: an integer "
             "(0/1 = scan in-process) or 'auto' to use workers only when "
             "the host has spare CPUs; results identical for any count",
    )
    run.add_argument(
        "--speculate", action=argparse.BooleanOptionalAction, default=False,
        help="parallel engine: optimistic warp + replay past the "
             "conservative horizon (results stay bit-identical)",
    )
    run.add_argument(
        "--check-invariants", nargs="?", const=1024, type=int, default=0,
        metavar="N",
        help="run the invariant suite every N ops (bare flag = 1024)",
    )
    run.add_argument("--save", metavar="PATH", help="write the result as JSON")
    _add_obs_args(run)
    run.set_defaults(func=cmd_run)

    sweep = sub.add_parser("sweep", help=cmd_sweep.__doc__)
    _add_common_run_args(sweep)
    sweep.add_argument(
        "--kinds", nargs="+", default=["sparse", "cuckoo", "stash"],
        choices=[k.value for k in DirectoryKind],
    )
    sweep.add_argument(
        "--ratios", nargs="+", type=float, default=[1.0, 0.5, 0.25, 0.125]
    )
    sweep.set_defaults(func=cmd_sweep)

    character = sub.add_parser("characterize", help=cmd_characterize.__doc__)
    character.add_argument("--workloads", nargs="*", choices=workload_names())
    character.add_argument("--cores", type=int, default=16)
    character.add_argument("--ops", type=int, default=2000)
    character.set_defaults(func=cmd_characterize)

    experiment = sub.add_parser("experiment", help=cmd_experiment.__doc__)
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--ops", type=int, default=None)
    experiment.add_argument("--workloads", nargs="*", default=None)
    experiment.set_defaults(func=cmd_experiment)

    gen = sub.add_parser("gen-trace", help=cmd_gen_trace.__doc__)
    _add_common_run_args(gen)
    gen.add_argument("output")
    gen.set_defaults(func=cmd_gen_trace)

    replay = sub.add_parser("replay", help=cmd_replay.__doc__)
    replay.add_argument("trace")
    replay.add_argument("--cores", type=int, default=16)
    replay.add_argument("--kind", default="stash", choices=[k.value for k in DirectoryKind])
    replay.add_argument("--ratio", type=float, default=0.125)
    replay.add_argument("--seed", type=int, default=1)
    replay.add_argument("--warmup", type=int, default=0)
    replay.add_argument(
        "--engine", default="interp", choices=["interp", "vector", "parallel"],
        help="execution engine (vector = flat table-driven engine, "
             "parallel = run-length batching engine)",
    )
    replay.add_argument(
        "--epoch-batch", type=int, default=0, metavar="N",
        help="fast-engine batch size in ops (0 = engine default)",
    )
    replay.add_argument(
        "--engine-workers", default="auto", metavar="N",
        help="scan worker processes for the parallel engine: an integer "
             "or 'auto' (workers only when the host has spare CPUs)",
    )
    replay.add_argument(
        "--speculate", action=argparse.BooleanOptionalAction, default=False,
        help="parallel engine: optimistic warp + replay past the "
             "conservative horizon (results stay bit-identical)",
    )
    replay.add_argument(
        "--check-invariants", nargs="?", const=1024, type=int, default=0,
        metavar="N",
        help="run the invariant suite every N ops (bare flag = 1024)",
    )
    replay.add_argument("--save", metavar="PATH", help="write the result as JSON")
    _add_obs_args(replay)
    replay.set_defaults(func=cmd_replay)

    fuzz = sub.add_parser("fuzz", help=cmd_fuzz.__doc__)
    fuzz.add_argument("--ops", type=int, default=400, help="ops per program")
    fuzz.add_argument("--seeds", type=int, default=10, help="programs to run")
    fuzz.add_argument("--seed-base", type=int, default=1, help="first seed")
    fuzz.add_argument(
        "--kinds", nargs="+",
        default=[
            "sparse", "cuckoo", "scd", "stash", "adaptive_stash", "in_llc",
            "tardis",
        ],
        choices=[k.value for k in DirectoryKind if k.value != "ideal"],
        help="organizations to diff against the IDEAL reference",
    )
    from .verify.generator import PROFILES as fuzz_profiles

    fuzz.add_argument(
        "--profiles", nargs="+", default=None, choices=list(fuzz_profiles),
        help="generator profiles to cycle (default: all)",
    )
    fuzz.add_argument(
        "--cores", type=int, default=0,
        help="core count (default 0 = cycle 4 and 6 across seeds)",
    )
    fuzz.add_argument(
        "--check-every", type=int, default=8, metavar="N",
        help="run the invariant suite every N ops (0 = only at the end)",
    )
    fuzz.add_argument(
        "--minimize", action=argparse.BooleanOptionalAction, default=True,
        help="delta-debug failing programs before serializing them",
    )
    fuzz.add_argument(
        "--engine", action="store_true",
        help="diff the vector and parallel engines against the interpreter "
             "(bit-exact, statistics included) instead of organizations "
             "against IDEAL",
    )
    fuzz.add_argument(
        "--inject-fault", default=None, metavar="NAME",
        help="inject a named test-only fault into every non-ideal system "
             "(see --list-faults)",
    )
    fuzz.add_argument(
        "--list-faults", action="store_true",
        help="list injectable fault names and exit",
    )
    fuzz.add_argument(
        "--out-dir", default=None, metavar="PATH",
        help="failure-corpus directory (default: <cache-dir>/failures)",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="FILE",
        help="replay one serialized repro case and exit",
    )
    fuzz.add_argument(
        "--seed-corpus", action="store_true",
        help="plant + replay the distilled regression programs first",
    )
    fuzz.set_defaults(func=cmd_fuzz)

    timeline = sub.add_parser("timeline", help=cmd_timeline.__doc__)
    _add_common_run_args(timeline)
    timeline.add_argument("--ratio", type=float, default=0.125)
    timeline.add_argument(
        "--out", default="timeline", metavar="PREFIX",
        help="export prefix (<PREFIX>.<kind>.epochs.jsonl/.csv, .trace.json)",
    )
    timeline.add_argument(
        "--obs-epoch", type=int, default=256, metavar="N",
        help="epoch-sampler interval in ops",
    )
    timeline.add_argument(
        "--trace-events", type=int, default=65536, metavar="CAP",
        help="event-ring capacity per run",
    )
    timeline.set_defaults(func=cmd_timeline)

    compare = sub.add_parser("compare", help=cmd_compare.__doc__)
    compare.add_argument("results", nargs="+", help="JSON files from --save")
    compare.set_defaults(func=cmd_compare)

    report = sub.add_parser("report", help=cmd_report.__doc__)
    report.add_argument("output", help="markdown file to write")
    report.add_argument("--ops", type=int, default=2000, help="ops per core")
    report.add_argument(
        "--full", action="store_true",
        help="use the full workload suite (default: quick 3-workload subset)",
    )
    report.add_argument(
        "--sections", nargs="*", default=None,
        help="restrict to specific experiment ids (e.g. F3 headline)",
    )
    report.set_defaults(func=cmd_report)

    serve = sub.add_parser("serve", help=cmd_serve.__doc__)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="bind port (0 = pick an ephemeral port)",
    )
    serve.add_argument(
        "--backend", dest="service_backend", default="pool",
        choices=["pool", "inproc"],
        help="dispatch backend: 'pool' = process pool (real parallelism), "
             "'inproc' = thread pool (no process spawn)",
    )
    serve.add_argument(
        "--max-points", type=int, default=100_000, metavar="N",
        help="reject manifests expanding to more than N points",
    )
    serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from .analysis import runner

    previous = runner.configure()
    runner.configure(
        workers=args.workers,
        cache_dir=args.cache_dir,
        cache_enabled=False if args.no_cache else None,
        trace_cache_enabled=args.trace_cache,
        batch_size=args.batch_size,
    )
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if args.cache_stats:
            print(runner.counters_summary(), file=sys.stderr)
        runner.configure(**previous)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
