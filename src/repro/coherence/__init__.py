"""MESI directory coherence protocol engine."""

from .invariants import (
    check_data_values,
    check_directory_inclusion,
    check_entries_llc_resident,
    check_llc_inclusion,
    check_swmr,
)
from .l1_controller import L1Controller
from .llc_controller import GrantResult, HomeController
from .protocol import CoherentSystem
from .states import LlcState, MesiState, can_read, can_write, is_exclusive_class

__all__ = [
    "CoherentSystem",
    "GrantResult",
    "HomeController",
    "L1Controller",
    "LlcState",
    "MesiState",
    "can_read",
    "can_write",
    "check_data_values",
    "check_directory_inclusion",
    "check_entries_llc_resident",
    "check_llc_inclusion",
    "check_swmr",
    "is_exclusive_class",
]
