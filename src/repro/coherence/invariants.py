"""Runtime-checkable coherence invariants.

These are the correctness conditions DESIGN.md commits to.  They are pure
inspection functions over the system's state — no mutation — so the debug
mode of the simulator can run them after every N accesses, and tests (unit,
integration and hypothesis-driven) call them directly.

On failure they raise :class:`~repro.common.errors.InvariantViolation` with
a message naming the invariant and the offending block.
"""

from __future__ import annotations

from typing import Dict, List

from ..cache.l1 import L1Cache
from ..cache.llc import SharedLLC
from ..common.errors import InvariantViolation
from ..core.relaxed_inclusion import check_relaxed_inclusion, check_strict_inclusion
from ..directory.base import Directory
from .states import MesiState


def check_swmr(l1s: List[L1Cache]) -> None:
    """Single-Writer-Multiple-Reader.

    M/E copies exclude every other copy.  Under MOESI exactly one OWNED
    copy may coexist with any number of SHARED readers — that is the
    *only* legal multi-copy configuration containing a dirty line — and
    OWNED never coexists with another OWNED or with M/E.  The OWNED rules
    are checked first so an O+E/M pile-up is reported as the OWNED-state
    violation it is, not as a generic SWMR failure.
    """
    seen: Dict[int, List[tuple]] = {}
    for l1 in l1s:
        for block in l1.iter_blocks():
            seen.setdefault(block.addr, []).append((l1.core_id, MesiState(block.state)))
    for addr, holders in seen.items():
        exclusive = [
            (core, state)
            for core, state in holders
            if state in (MesiState.MODIFIED, MesiState.EXCLUSIVE)
        ]
        owned = [
            (core, state) for core, state in holders if state is MesiState.OWNED
        ]
        if len(owned) > 1 or (owned and exclusive):
            raise InvariantViolation(
                f"OWNED-state rule violated for block {addr:#x}: holders {holders}"
            )
        if exclusive and len(holders) > 1:
            raise InvariantViolation(
                f"SWMR violated for block {addr:#x}: holders {holders}"
            )


def check_llc_inclusion(l1s: List[L1Cache], llc: SharedLLC) -> None:
    """Every privately cached block must be resident in the inclusive LLC."""
    for l1 in l1s:
        for block in l1.iter_blocks():
            if not llc.contains(block.addr):
                raise InvariantViolation(
                    f"LLC inclusion violated: block {block.addr:#x} in core "
                    f"{l1.core_id} but not in the LLC"
                )


def check_directory_inclusion(
    l1s: List[L1Cache],
    llc: SharedLLC,
    directory: Directory,
    relaxed: bool,
) -> None:
    """Strict inclusion for conventional designs, relaxed for stash."""
    if relaxed:
        report = check_relaxed_inclusion(l1s, llc, directory)
    else:
        report = check_strict_inclusion(l1s, directory)
    if not report.ok:
        raise InvariantViolation(
            "directory inclusion violated: " + "; ".join(report.violations[:5])
        )


def check_entries_llc_resident(directory: Directory, llc: SharedLLC) -> None:
    """Every directory entry must track an LLC-resident block.

    (The directory tracks the inclusive LLC's contents; an entry for an
    evicted line would be unreachable dead weight and breaks stashing.)
    """
    for entry in directory.iter_entries():
        if not llc.contains(entry.addr):
            raise InvariantViolation(
                f"directory entry for {entry.addr:#x} but block not LLC-resident"
            )


def check_data_values(
    l1s: List[L1Cache],
    llc: SharedLLC,
    latest_version: Dict[int, int],
    memory_version: Dict[int, int],
) -> None:
    """Data-value invariant over write versions.

    * Every valid L1 copy holds the latest committed version of its block
      (stale-data reads are impossible).
    * If no dirty private copy exists, the LLC line (when resident) holds
      the latest version; if the block is nowhere on chip, memory does.
    """
    dirty_blocks = set()
    for l1 in l1s:
        for block in l1.iter_blocks():
            latest = latest_version.get(block.addr, 0)
            if block.version != latest:
                raise InvariantViolation(
                    f"core {l1.core_id} holds version {block.version} of block "
                    f"{block.addr:#x}, latest is {latest}"
                )
            if block.dirty:
                dirty_blocks.add(block.addr)

    cached = {b.addr for l1 in l1s for b in l1.iter_blocks()}
    llc_resident = set()
    for block in llc.iter_blocks():
        llc_resident.add(block.addr)
        latest = latest_version.get(block.addr, 0)
        if block.addr not in dirty_blocks and block.version != latest:
            raise InvariantViolation(
                f"LLC holds version {block.version} of block {block.addr:#x} "
                f"with no dirty private copy; latest is {latest}"
            )
    for addr, latest in latest_version.items():
        if addr in cached or addr in llc_resident:
            continue
        mem = memory_version.get(addr, 0)
        if mem != latest:
            raise InvariantViolation(
                f"block {addr:#x} off-chip at version {mem}, latest is {latest}"
            )
