"""Core-side protocol controller: hits, upgrades, misses and victim putback.

One controller per core.  It owns the decision tree at the L1 (hit state vs.
required permission), charges local latencies, and escalates to the
:class:`~repro.coherence.llc_controller.HomeController` for anything that
needs the directory.  Coverage-miss attribution — "this miss exists because
a directory eviction invalidated my copy" — happens here, at the moment the
miss is detected.
"""

from __future__ import annotations

from ..cache.l1 import L1Cache
from ..common.config import TimingConfig
from ..common.errors import ProtocolError
from ..common.stats import StatGroup
from ..noc.network import Network
from ..noc.traffic import MessageClass
from .llc_controller import HomeController
from .states import MesiState, can_write


class L1Controller:
    """Drives one core's private cache through the MESI protocol."""

    def __init__(
        self,
        core_id: int,
        l1: L1Cache,
        home: HomeController,
        network: Network,
        timing: TimingConfig,
        stats: StatGroup,
    ) -> None:
        self.core_id = core_id
        self.l1 = l1
        self.home = home
        self.network = network
        self.timing = timing
        self.stats = stats
        # Private L2 present? (PrivateHierarchy exposes l2_config.)
        self.has_l2 = hasattr(l1, "l2_config")

    def _hit_latency(self, level: str) -> int:
        if level == "l2":
            return self.timing.l1_hit + self.timing.l2_hit
        return self.timing.l1_hit

    def _miss_detect_latency(self) -> int:
        # A miss checked both private levels when an L2 exists.
        if self.has_l2:
            return self.timing.l1_hit + self.timing.l2_hit
        return self.timing.l1_hit

    def access(self, addr: int, is_write: bool) -> int:
        """Perform one memory operation; returns its latency in cycles."""
        self.stats.add("accesses")
        self.stats.add("writes" if is_write else "reads")
        block, level = self.l1.access_block(addr)
        if block is not None:
            state = MesiState(block.state)
            hit_counter = "l1_hits" if level == "l1" else "l2_hits"
            if not is_write:
                self.stats.add(hit_counter)
                return self._hit_latency(level)
            if can_write(state):
                # M hit, or silent E -> M upgrade: no protocol message.
                self.stats.add(hit_counter)
                self.l1.upgrade_to_modified(addr)
                block.version = self.home.mint_version(addr)
                return self._hit_latency(level)
            if state not in (MesiState.SHARED, MesiState.OWNED):  # pragma: no cover
                raise ProtocolError(f"write hit in unexpected state {state}")
            # S (and MOESI's O) write hits need an upgrade: other copies
            # must be invalidated before write permission is granted.
            return self._upgrade(addr, block, self._hit_latency(level))
        return self._miss(addr, is_write)

    # -- upgrade (write hit on an S copy) ---------------------------------------

    def _upgrade(self, addr: int, block, local_latency: int) -> int:
        self.stats.add("upgrade_misses")
        home_tile = self.home.home_tile(addr)
        latency = local_latency
        latency += self.network.send(self.core_id, home_tile, MessageClass.REQUEST)
        latency += self.home.handle_upgrade(self.core_id, addr)
        self.l1.upgrade_to_modified(addr)
        block.version = self.home.mint_version(addr)
        return latency

    # -- miss -------------------------------------------------------------------

    def _miss(self, addr: int, is_write: bool) -> int:
        self.stats.add("l1_misses")
        if addr in self.home.dir_invalidated[self.core_id]:
            # This copy was lost to a directory eviction: a coverage miss.
            self.home.dir_invalidated[self.core_id].discard(addr)
            self.stats.add("coverage_misses")

        # Make room first, so the home never races our victim.
        victim = self.l1.peek_fill_victim(addr)
        if victim is not None:
            removed = self.l1.invalidate(victim.addr)
            assert removed is not None
            self.home.handle_put(
                self.core_id, removed.addr, bool(removed.dirty), removed.version
            )

        home_tile = self.home.home_tile(addr)
        latency = self._miss_detect_latency()
        latency += self.network.send(self.core_id, home_tile, MessageClass.REQUEST)
        grant = self.home.handle_miss(self.core_id, addr, is_write)
        latency += grant.latency

        filled = self.l1.fill(addr, grant.state, grant.version)
        self.home.filter_add(self.core_id, addr)
        if is_write:
            if grant.state is not MesiState.MODIFIED:  # pragma: no cover
                raise ProtocolError(f"write miss granted {grant.state}")
            filled.version = self.home.mint_version(addr)
        return latency
