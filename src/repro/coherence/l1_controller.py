"""Core-side protocol controller: hits, upgrades, misses and victim putback.

One controller per core.  It owns the decision tree at the L1 (hit state vs.
required permission), charges local latencies, and escalates to the
:class:`~repro.coherence.llc_controller.HomeController` for anything that
needs the directory.  Coverage-miss attribution — "this miss exists because
a directory eviction invalidated my copy" — happens here, at the moment the
miss is detected.

This is the hottest code in the simulator — :meth:`L1Controller.access` runs
once per trace operation — so the fast paths are flat: hit/miss-detect
latencies are precomputed at construction, MESI checks compare raw ints
(no enum construction), the silent E->M upgrade mutates the block in place,
the grant from the home is a plain ``(latency, state, version)`` tuple, and
the per-access statistics are bound counter cells.
"""

from __future__ import annotations

from typing import Optional

from ..cache.l1 import L1Cache
from ..common.config import TimingConfig
from ..common.errors import ProtocolError
from ..common.stats import StatCounter, StatGroup
from ..noc.network import Network
from ..noc.traffic import MessageClass
from ..obs.events import EV_GRANT, EV_MISS, EV_UPGRADE
from .llc_controller import HomeController
from .states import MesiState

# Raw int MESI states: the hit path never constructs a MesiState.
_S_SHARED = int(MesiState.SHARED)
_S_EXCLUSIVE = int(MesiState.EXCLUSIVE)
_S_MODIFIED = int(MesiState.MODIFIED)
_S_OWNED = int(MesiState.OWNED)


class L1Controller:
    """Drives one core's private cache through the MESI protocol."""

    def __init__(
        self,
        core_id: int,
        l1: L1Cache,
        home: HomeController,
        network: Network,
        timing: TimingConfig,
        stats: StatGroup,
    ) -> None:
        self.core_id = core_id
        self.l1 = l1
        self.home = home
        self.network = network
        self.timing = timing
        self.stats = stats
        # Private L2 present? (PrivateHierarchy exposes l2_config.)
        self.has_l2 = hasattr(l1, "l2_config")
        # Single-level caches expose the array lookup directly; the hit path
        # then skips the (block, level) tuple of access_block entirely.
        self._fast_lookup = None if self.has_l2 else getattr(l1, "lookup_block", None)
        # Home-side handles hoisted once (the home object never changes).
        self._bank_mask = home.llc.num_banks - 1
        self._serve_miss = home.serve_miss
        self._handle_put = home.handle_put
        self._handle_upgrade = home.handle_upgrade
        self._filter_add = home.filter_add
        self._mint_version = home.mint_version
        # The per-core coverage-attribution set is mutated in place, never
        # reassigned, so the controller can hold it directly.
        self._dir_invalidated = home.dir_invalidated[core_id]
        # Precomputed latencies (access() consults these every operation).
        self._lat_l1_hit = timing.l1_hit
        self._lat_l2_hit = timing.l1_hit + timing.l2_hit
        # A miss checked both private levels when an L2 exists.
        self._lat_miss_detect = self._lat_l2_hit if self.has_l2 else self._lat_l1_hit
        # Observability probe (repro.obs): None is the null probe — the
        # miss/upgrade paths test it once and emit nothing.  When tracing
        # is attached this becomes EventRing.append.
        self._obs = None
        # Per-access counters, bound on first event (shape-preserving).
        self._c_accesses: Optional[StatCounter] = None
        self._c_reads: Optional[StatCounter] = None
        self._c_writes: Optional[StatCounter] = None
        self._c_l1_hits: Optional[StatCounter] = None
        self._c_l2_hits: Optional[StatCounter] = None
        self._c_l1_misses: Optional[StatCounter] = None
        self._c_upgrade_misses: Optional[StatCounter] = None
        self._c_coverage_misses: Optional[StatCounter] = None

    def _hit_latency(self, level: str) -> int:
        return self._lat_l2_hit if level == "l2" else self._lat_l1_hit

    def _miss_detect_latency(self) -> int:
        return self._lat_miss_detect

    def access(self, addr: int, is_write: bool) -> int:
        """Perform one memory operation; returns its latency in cycles."""
        cell = self._c_accesses
        if cell is None:
            cell = self._c_accesses = self.stats.counter("accesses")
        cell.value += 1
        if is_write:
            cell = self._c_writes
            if cell is None:
                cell = self._c_writes = self.stats.counter("writes")
        else:
            cell = self._c_reads
            if cell is None:
                cell = self._c_reads = self.stats.counter("reads")
        cell.value += 1
        fast_lookup = self._fast_lookup
        if fast_lookup is not None:
            block = fast_lookup(addr)
            level_l1 = True
        else:
            block, level = self.l1.access_block(addr)
            level_l1 = level == "l1"
        if block is not None:
            hit_latency = self._lat_l1_hit if level_l1 else self._lat_l2_hit
            if is_write:
                state = block.state
                if state == _S_SHARED or state == _S_OWNED:
                    # S (and MOESI's O) write hits need an upgrade: other
                    # copies must be invalidated before write permission is
                    # granted.  The hit counter stays untouched — upgrades
                    # count as upgrade_misses, and a key exists iff its
                    # count is nonzero (the vector engine relies on this).
                    return self._upgrade(addr, block, hit_latency)
                if (
                    state != _S_MODIFIED and state != _S_EXCLUSIVE
                ):  # pragma: no cover
                    raise ProtocolError(
                        f"write hit in unexpected state {MesiState(state)}"
                    )
                # M hit, or silent E -> M upgrade: no protocol message.
                block.state = _S_MODIFIED
                block.dirty = True
                block.version = self._mint_version(addr)
            if level_l1:
                hit_cell = self._c_l1_hits
                if hit_cell is None:
                    hit_cell = self._c_l1_hits = self.stats.counter("l1_hits")
            else:
                hit_cell = self._c_l2_hits
                if hit_cell is None:
                    hit_cell = self._c_l2_hits = self.stats.counter("l2_hits")
            hit_cell.value += 1
            return hit_latency
        return self._miss(addr, is_write)

    # -- upgrade (write hit on an S copy) ---------------------------------------

    def _upgrade(self, addr: int, block, local_latency: int) -> int:
        cell = self._c_upgrade_misses
        if cell is None:
            cell = self._c_upgrade_misses = self.stats.counter("upgrade_misses")
        cell.value += 1
        home_tile = addr & self._bank_mask
        latency = local_latency
        latency += self.network.send(self.core_id, home_tile, MessageClass.REQUEST)
        latency += self._handle_upgrade(self.core_id, addr)
        block.state = _S_MODIFIED
        block.dirty = True
        block.version = self._mint_version(addr)
        obs = self._obs
        if obs is not None:
            obs((self.home.now, EV_UPGRADE, self.core_id, addr, latency, 0))
        return latency

    # -- miss -------------------------------------------------------------------

    def _miss(self, addr: int, is_write: bool) -> int:
        cell = self._c_l1_misses
        if cell is None:
            cell = self._c_l1_misses = self.stats.counter("l1_misses")
        cell.value += 1
        core_id = self.core_id
        invalidated = self._dir_invalidated
        coverage = addr in invalidated
        if coverage:
            # This copy was lost to a directory eviction: a coverage miss.
            invalidated.discard(addr)
            cell = self._c_coverage_misses
            if cell is None:
                cell = self._c_coverage_misses = self.stats.counter("coverage_misses")
            cell.value += 1

        # Make room first, so the home never races our victim.
        l1 = self.l1
        victim = l1.peek_fill_victim(addr)
        if victim is not None:
            removed = l1.invalidate(victim.addr)
            assert removed is not None
            self._handle_put(
                core_id, removed.addr, bool(removed.dirty), removed.version
            )

        home_tile = addr & self._bank_mask
        latency = self._lat_miss_detect
        latency += self.network.send(core_id, home_tile, MessageClass.REQUEST)
        grant_latency, state, version = self._serve_miss(core_id, addr, is_write)
        latency += grant_latency

        filled = l1.fill(addr, state, version)
        self._filter_add(core_id, addr)
        if is_write:
            if state != _S_MODIFIED:  # pragma: no cover
                raise ProtocolError(f"write miss granted {MesiState(state)}")
            filled.version = self._mint_version(addr)
        obs = self._obs
        if obs is not None:
            now = self.home.now
            write_bit = 1 if is_write else 0
            obs((now, EV_MISS, core_id, addr, 0,
                 write_bit | (2 if coverage else 0)))
            obs((now, EV_GRANT, core_id, addr, latency, write_bit | (state << 1)))
        return latency
