"""Home-side protocol controller: directory + LLC + discovery flows.

Every L1 miss and upgrade arrives here (conceptually at the home bank of the
block).  The controller:

* resolves the request against the directory and the inclusive LLC,
* performs forwards, invalidations, discovery broadcasts and memory fetches,
* executes directory-entry evictions (invalidate vs. **stash**) and LLC
  evictions (back-invalidation, discovery-invalidate for stash-bit lines),
* returns the latency the *requesting core* observes, charging only
  critical-path legs (writebacks and acks that real protocols overlap are
  accounted as traffic but not charged to the requester).

The controller manipulates remote L1 state directly (invalidate/downgrade):
in the atomic-transaction model those are the remote cache's responses to
home-initiated messages, so no separate remote-side controller is needed.

Data values are modeled as monotonically increasing per-block *versions*
(see DESIGN.md): every write mints a new version, and the data-value
invariant — a reader observes the latest committed version — is checked
end-to-end by the invariant suite.

Hot-path note: the miss pipeline runs once per L1 miss, so it is written
allocation-free.  :meth:`HomeController.serve_miss` and its helpers pass
``(latency, state, version)`` tuples with *raw int* MESI states instead of
minting a :class:`GrantResult` per transaction; :meth:`handle_miss` remains
as the object-returning wrapper for external callers and tests.  Timing
fields and the network send are hoisted into instance slots, and the
per-miss statistics use bound counter cells (see
:meth:`~repro.common.stats.StatGroup.counter`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..cache.l1 import L1Cache
from ..cache.llc import SharedLLC
from ..common.config import SystemConfig
from ..common.errors import ProtocolError
from ..common.stats import StatCounter, StatGroup
from ..core.discovery import DiscoveryDemand, DiscoveryEngine
from ..directory.base import Directory, DirectoryEntry, Eviction, EvictionAction
from ..mem import Memory
from ..noc.network import Network
from ..noc.traffic import MessageClass
from ..obs.events import (
    CAUSE_DIR_EVICT,
    CAUSE_LLC_EVICT,
    CAUSE_WRITE,
    EV_DIR_EVICT,
    EV_DISCOVERY,
    EV_INVAL,
    EV_LLC_EVICT,
    EV_STASH_SPILL,
)
from .states import CoherenceProtocol, MesiState

# Raw int MESI states for the tuple-based grant path (no enum construction
# per transaction; MesiState is an IntEnum so == comparisons interoperate).
_S_SHARED = int(MesiState.SHARED)
_S_EXCLUSIVE = int(MesiState.EXCLUSIVE)
_S_MODIFIED = int(MesiState.MODIFIED)

#: ``(latency, state, version)`` — the internal allocation-free grant.
Grant = Tuple[int, int, int]


@dataclass
class GrantResult:
    """What the home hands back to the requesting L1 controller.

    External interface only: the in-simulator miss path uses raw
    ``(latency, state, version)`` tuples (see :meth:`HomeController.serve_miss`)
    and never instantiates this class.
    """

    latency: int          # critical-path cycles at and beyond the home
    state: MesiState      # MESI state granted to the requester
    version: int          # data version delivered


class HomeController:
    """Directory/LLC home logic shared by every directory organization."""

    def __init__(
        self,
        config: SystemConfig,
        directory: Directory,
        llc: SharedLLC,
        l1s: List[L1Cache],
        network: Network,
        memory: Memory,
        discovery: DiscoveryEngine,
        stats: StatGroup,
    ) -> None:
        self.config = config
        self.directory = directory
        self.llc = llc
        self.l1s = l1s
        self.network = network
        self.memory = memory
        self.discovery = discovery
        self.stats = stats
        self.timing = config.timing
        # Hot-path hoists: consulted on every miss/upgrade.
        self._t_dir = config.timing.directory_access
        self._t_llc = config.timing.llc_access
        self._t_l1 = config.timing.l1_hit
        self._home_occupancy = config.timing.home_occupancy
        self._send = network.send
        self._dir_lookup = directory.lookup
        self._bank_of = llc.bank_of
        # Inline of home_bank(): low-order block-address bits pick the bank.
        self._bank_mask = llc.num_banks - 1
        # Per-core bound methods: the invalidation/forward loops index these
        # instead of re-binding l1s[i].<method> per message.
        self._l1_probe = [l1.probe for l1 in l1s]
        self._l1_invalidate = [l1.invalidate for l1 in l1s]
        # Requester's current clock, set by CoherentSystem.access before each
        # transaction; consumed by the (optional) DRAM timing model and the
        # (optional) home-bank contention model.
        self.now: float = 0.0
        self._home_busy_until = [0.0] * config.num_cores
        # Observability probe (repro.obs): None is the null probe — emission
        # sites test it once and skip; tracing swaps in EventRing.append.
        self._obs = None
        # Stash machinery only engages for stash-capable organizations.
        self.stash_capable = hasattr(directory, "eligibility")
        # MOESI adds the Owned state: dirty sharing, owner-supplied data.
        self.moesi = config.protocol is CoherenceProtocol.MOESI
        # Adaptive stash directories want discovery outcomes fed back.
        self._notify_discovery = getattr(directory, "note_discovery", None)
        # Optional discovery presence filter (set by CoherentSystem when
        # DirectoryConfig.discovery_filter_slots > 0).
        self.filter = None
        # Data-version bookkeeping (stand-in for actual payloads).
        self.latest_version: Dict[int, int] = {}
        self.memory_version: Dict[int, int] = {}
        self._version_clock = 0
        # Coverage-miss attribution: blocks whose copy a core lost to a
        # directory eviction; a later miss by that core on that block is a
        # coverage miss.
        self.dir_invalidated: List[Set[int]] = [set() for _ in l1s]
        # Per-miss statistics, bound on first event so untouched counters
        # stay absent from the stats tree (exact pre-optimization shape).
        self._c_llc_hits: Optional[StatCounter] = None
        self._c_llc_misses: Optional[StatCounter] = None
        self._c_forwards: Optional[StatCounter] = None
        self._c_upgrade_requests: Optional[StatCounter] = None
        self._c_l1_writebacks: Optional[StatCounter] = None
        self._c_silent_clean_evictions: Optional[StatCounter] = None
        self._c_write_inval_msgs: Optional[StatCounter] = None
        self._c_dir_eviction_inval_msgs: Optional[StatCounter] = None
        self._c_dir_induced_invalidations: Optional[StatCounter] = None
        self._c_dir_evictions_private: Optional[StatCounter] = None
        self._c_dir_evictions_shared: Optional[StatCounter] = None
        self._c_llc_evictions: Optional[StatCounter] = None
        self._c_stash_evictions: Optional[StatCounter] = None
        self._c_empty_deallocs: Optional[StatCounter] = None

    # ------------------------------------------------------------------ utils

    def home_tile(self, addr: int) -> int:
        """Mesh tile hosting the block's LLC bank and directory slice."""
        return self.llc.bank_of(addr)

    def mint_version(self, addr: int) -> int:
        """Allocate the version a new write commits."""
        self._version_clock += 1
        self.latest_version[addr] = self._version_clock
        return self._version_clock

    def _roundtrip(self, a: int, b: int, out: MessageClass, back: MessageClass) -> int:
        send = self._send
        return send(a, b, out) + send(b, a, back)

    def _home_wait(self, home: int) -> int:
        """Queueing delay at the home bank's controller (0 when disabled).

        Models each request occupying the bank for ``home_occupancy``
        cycles; requests arriving while the bank is busy wait out the
        residual.  Uses the requester's clock as the arrival time.
        """
        occupancy = self._home_occupancy
        if occupancy == 0:
            return 0
        wait = max(0.0, self._home_busy_until[home] - self.now)
        self._home_busy_until[home] = self.now + wait + occupancy
        if wait > 0:
            self.stats.add("home_bank_waits")
            self.stats.add("home_bank_wait_cycles", wait)
        return int(wait)

    def filter_add(self, core: int, addr: int) -> None:
        """Record a granted copy in the presence filter (no-op if disabled)."""
        if self.filter is not None:
            self.filter.add(core, addr)

    def _filter_remove(self, core: int, addr: int) -> None:
        """Record a provably destroyed copy (no-op if disabled)."""
        if self.filter is not None:
            self.filter.remove(core, addr)

    def _discovery_candidates(self, addr: int, exclude_core):
        """Probe set for a discovery: filtered when a filter is present."""
        if self.filter is None:
            return None
        return self.filter.candidates(addr, exclude_core)

    # ---------------------------------------------------------------- misses

    def handle_miss(self, core: int, addr: int, is_write: bool) -> GrantResult:
        """Serve an L1 miss (GetS/GetM) for ``core``; object-returning wrapper.

        External interface (tests, tools): the simulator's own L1 controller
        calls :meth:`serve_miss` and consumes the raw tuple directly.
        """
        latency, state, version = self.serve_miss(core, addr, is_write)
        return GrantResult(latency, MesiState(state), version)

    def serve_miss(self, core: int, addr: int, is_write: bool) -> Grant:
        """Serve an L1 miss; returns ``(latency, state, version)``.

        The request message itself (core -> home) is charged by the caller;
        this method charges everything from the directory access onward,
        including the response back to the core.
        """
        home = addr & self._bank_mask
        latency = self._t_dir
        if self._home_occupancy:
            latency += self._home_wait(home)
        entry = self._dir_lookup(addr)
        if entry is not None:
            if is_write:
                return self._dir_hit_write(core, addr, entry, home, latency)
            return self._dir_hit_read(core, addr, entry, home, latency)
        return self._dir_miss(core, addr, is_write, home, latency)

    # -- directory hit, read --------------------------------------------------

    def _dir_hit_read(
        self, core: int, addr: int, entry: DirectoryEntry, home: int, latency: int
    ) -> Grant:
        owner = entry.owner
        if owner is not None and owner != core:
            return self._forward_read(core, addr, entry, owner, home, latency)
        if owner == core:
            # The core silently dropped its clean-exclusive copy and missed
            # again; the home re-grants exclusivity from LLC data.
            self.stats.add("self_regrants")
            latency += self._serve_from_llc(core, addr, home)
            entry.grant_exclusive(core)
            return latency, _S_EXCLUSIVE, self._llc_version(addr)
        # Shared (or stale-believed) entry: data lives in the LLC.
        latency += self._serve_from_llc(core, addr, home)
        entry.add_sharer(core)
        return latency, _S_SHARED, self._llc_version(addr)

    def _forward_read(
        self,
        core: int,
        addr: int,
        entry: DirectoryEntry,
        owner: int,
        home: int,
        latency: int,
    ) -> Grant:
        """Intervene on the exclusive owner for a read."""
        cell = self._c_forwards
        if cell is None:
            cell = self._c_forwards = self.stats.counter("forwards")
        cell.value += 1
        latency += self._send(home, owner, MessageClass.FORWARD)
        owner_block = self._l1_probe[owner](addr, touch=False)
        if owner_block is None:
            # Stale owner: it silently evicted its clean E copy.  It nacks;
            # the home serves from the LLC instead.
            self.stats.add("forward_nacks")
            latency += self._send(owner, home, MessageClass.CONTROL_RESPONSE)
            entry.remove_core(owner)
            self._filter_remove(owner, addr)
            latency += self._serve_from_llc(core, addr, home)
            entry.add_sharer(core)
            return latency, _S_SHARED, self._llc_version(addr)
        was_dirty = bool(owner_block.dirty)
        version = owner_block.version
        if self.moesi and was_dirty:
            # MOESI: the dirty owner keeps the line in Owned state and
            # services the reader directly — no LLC writeback at all.  The
            # entry keeps its owner pointer alongside the new sharer.
            if owner_block.state == _S_MODIFIED:
                self.l1s[owner].downgrade_to_owned(addr)
            self.stats.add("owned_transitions")
            latency += self._send(owner, core, MessageClass.DATA_RESPONSE)
            latency += self._t_l1
            entry.add_sharer(core)
            return latency, _S_SHARED, version
        self.l1s[owner].downgrade_to_shared(addr)
        if was_dirty:
            # Dirty data goes to the requester and, off the critical path,
            # back to the LLC so the home copy is current.
            self._send(owner, home, MessageClass.WRITEBACK)
            self.llc.write_back(addr, version)
        latency += self._send(owner, core, MessageClass.DATA_RESPONSE)
        latency += self._t_l1  # owner's tag access to source the data
        entry.demote_owner()
        entry.add_sharer(core)
        return latency, _S_SHARED, version if was_dirty else self._llc_version(addr)

    # -- directory hit, write --------------------------------------------------

    def _dir_hit_write(
        self, core: int, addr: int, entry: DirectoryEntry, home: int, latency: int
    ) -> Grant:
        owner = entry.owner
        if owner is not None and owner != core:
            if self.moesi and entry.believed_count() > 1:
                # Owned state: sharers coexist with the owner; clear them
                # before the ownership transfer (the owner is forwarded).
                latency += self._invalidate_targets(
                    entry, addr, home, skip=core, also_skip=owner
                )
            return self._forward_write(core, addr, entry, owner, home, latency)
        if owner == core:
            self.stats.add("self_regrants")
            latency += self._serve_from_llc(core, addr, home)
            entry.grant_exclusive(core)
            return latency, _S_MODIFIED, self._llc_version(addr)
        # Shared: invalidate every (believed) sharer, then serve LLC data.
        latency += self._invalidate_targets(entry, addr, home, skip=core)
        latency += self._serve_from_llc(core, addr, home)
        entry.grant_exclusive(core)
        return latency, _S_MODIFIED, self._llc_version(addr)

    def _forward_write(
        self,
        core: int,
        addr: int,
        entry: DirectoryEntry,
        owner: int,
        home: int,
        latency: int,
    ) -> Grant:
        """Intervene on the exclusive owner for a write (transfer ownership)."""
        cell = self._c_forwards
        if cell is None:
            cell = self._c_forwards = self.stats.counter("forwards")
        cell.value += 1
        latency += self._send(home, owner, MessageClass.FORWARD)
        removed = self._l1_invalidate[owner](addr)
        self._filter_remove(owner, addr)
        if removed is None:
            self.stats.add("forward_nacks")
            latency += self._send(owner, home, MessageClass.CONTROL_RESPONSE)
            entry.remove_core(owner)
            latency += self._serve_from_llc(core, addr, home)
            entry.grant_exclusive(core)
            return latency, _S_MODIFIED, self._llc_version(addr)
        # Ownership transfer carries the line straight to the requester
        # (cache-to-cache); a stale LLC copy is safe because the requester
        # immediately becomes the new owner.
        version = removed.version if removed.dirty else self._llc_version(addr)
        latency += self._send(owner, core, MessageClass.DATA_RESPONSE)
        latency += self._t_l1
        entry.grant_exclusive(core)
        return latency, _S_MODIFIED, version

    # -- directory miss ----------------------------------------------------------

    def _dir_miss(
        self, core: int, addr: int, is_write: bool, home: int, latency: int
    ) -> Grant:
        llc_block = self.llc.probe(addr)
        if llc_block is None:
            return self._llc_miss(core, addr, is_write, home, latency)
        if self.stash_capable and llc_block.stash:
            return self._discover_and_serve(core, addr, is_write, home, latency)
        if not self.stash_capable and llc_block.stash:  # pragma: no cover
            raise ProtocolError("stash bit set under a non-stash directory")
        # Untracked, un-hidden LLC hit: the requester becomes sole holder.
        latency += self._allocate_entry(addr, home)
        entry = self._tracked(addr)
        entry.grant_exclusive(core)
        latency += self._serve_from_llc(core, addr, home)
        state = _S_MODIFIED if is_write else _S_EXCLUSIVE
        return latency, state, self._llc_version(addr)

    def _discover_and_serve(
        self, core: int, addr: int, is_write: bool, home: int, latency: int
    ) -> Grant:
        """Directory miss on a stash-bit LLC line: run discovery, then serve."""
        demand = DiscoveryDemand.WRITE if is_write else DiscoveryDemand.READ
        result = self.discovery.discover(
            home, addr, demand, exclude_core=core,
            candidates=self._discovery_candidates(addr, core),
        )
        if self._notify_discovery is not None:
            self._notify_discovery(result.found)
        if result.found and is_write:
            self._filter_remove(result.hider, addr)
        obs = self._obs
        if obs is not None:
            demand_code = 1 if is_write else 0
            obs((self.now, EV_DISCOVERY,
                 result.hider if result.found else -1, addr, result.latency,
                 (1 if result.found else 0) | (demand_code << 1)
                 | (result.fanout << 3)))
        latency += result.latency
        self.llc.clear_stash_bit(addr)
        if result.dirty_version is not None:
            self.llc.write_back(addr, result.dirty_version)
        latency += self._allocate_entry(addr, home)
        entry = self._tracked(addr)
        if result.found and not is_write:
            # Hider was downgraded to S by the discovery reply.
            entry.add_sharer(result.hider)
            entry.add_sharer(core)
            latency += self._serve_from_llc(core, addr, home)
            return latency, _S_SHARED, self._llc_version(addr)
        # Write (hider invalidated by the reply) or false discovery:
        # requester becomes sole holder.
        entry.grant_exclusive(core)
        latency += self._serve_from_llc(core, addr, home)
        state = _S_MODIFIED if is_write else _S_EXCLUSIVE
        return latency, state, self._llc_version(addr)

    def _llc_miss(
        self, core: int, addr: int, is_write: bool, home: int, latency: int
    ) -> Grant:
        cell = self._c_llc_misses
        if cell is None:
            cell = self._c_llc_misses = self.stats.counter("llc_misses")
        cell.value += 1
        latency += self._t_llc  # tag miss detection
        victim = self.llc.peek_fill_victim(addr)
        if victim is not None:
            self._handle_llc_eviction(victim.addr, home)
        # Fetch from memory.
        self._send(home, home, MessageClass.MEMORY)
        latency += self.memory.read(addr, self.now)
        self._send(home, home, MessageClass.MEMORY)
        self.llc.fill(addr, version=self.memory_version.get(addr, 0))
        latency += self._allocate_entry(addr, home)
        entry = self._tracked(addr)
        entry.grant_exclusive(core)
        latency += self._send(home, core, MessageClass.DATA_RESPONSE)
        state = _S_MODIFIED if is_write else _S_EXCLUSIVE
        return latency, state, self._llc_version(addr)

    # ----------------------------------------------------------------- upgrades

    def handle_upgrade(self, core: int, addr: int) -> int:
        """Serve a write-upgrade from a core holding the block in S.

        Returns the latency beyond the request message.  The grant carries
        no data (the requester already has the line).
        """
        home = addr & self._bank_mask
        latency = self._t_dir
        if self._home_occupancy:
            latency += self._home_wait(home)
        cell = self._c_upgrade_requests
        if cell is None:
            cell = self._c_upgrade_requests = self.stats.counter("upgrade_requests")
        cell.value += 1
        entry = self._dir_lookup(addr)
        if entry is not None:
            latency += self._invalidate_targets(entry, addr, home, skip=core)
            entry.grant_exclusive(core)
            latency += self._send(home, core, MessageClass.CONTROL_RESPONSE)
            return latency
        # Untracked upgrade: only possible when the requester itself is the
        # hidden holder of a stashed lone-S block.  The upgrade message
        # proves the requester holds a copy, and relaxed inclusion caps
        # untracked copies at one — so the home *knows* the requester is the
        # sole holder and can grant exclusivity without any discovery
        # broadcast.
        if not self.stash_capable or not self.llc.stash_bit(addr):
            raise ProtocolError(
                f"upgrade for untracked block {addr:#x} outside the stash design"
            )
        self.stats.add("hider_upgrades")
        self.llc.clear_stash_bit(addr)
        latency += self._allocate_entry(addr, home)
        entry = self._tracked(addr)
        entry.grant_exclusive(core)
        latency += self._send(home, core, MessageClass.CONTROL_RESPONSE)
        return latency

    # ----------------------------------------------------------------- putbacks

    def handle_put(self, core: int, addr: int, dirty: bool, version: int) -> None:
        """Absorb an L1 eviction (writeback if dirty, else notice/silence).

        Entirely off the requester's critical path: traffic is recorded, no
        latency is returned.
        """
        if dirty:
            home = addr & self._bank_mask
            self._send(core, home, MessageClass.WRITEBACK)
            self._send(home, core, MessageClass.WB_ACK)
            self.llc.write_back(addr, version)
            cell = self._c_l1_writebacks
            if cell is None:
                cell = self._c_l1_writebacks = self.stats.counter("l1_writebacks")
            cell.value += 1
            self._filter_remove(core, addr)
            self._retire_holder(core, addr)
            return
        if self.config.directory.clean_eviction_notification:
            home = addr & self._bank_mask
            self._send(core, home, MessageClass.EVICTION_NOTICE)
            self.stats.add("clean_eviction_notices")
            self._filter_remove(core, addr)
            self._retire_holder(core, addr)
            return
        # Silent clean eviction: directory/stash-bit state goes stale.
        cell = self._c_silent_clean_evictions
        if cell is None:
            cell = self._c_silent_clean_evictions = self.stats.counter(
                "silent_clean_evictions"
            )
        cell.value += 1

    def _retire_holder(self, core: int, addr: int) -> None:
        """The home learned ``core`` no longer holds ``addr``."""
        entry = self.directory.lookup(addr, touch=False)
        if entry is not None:
            entry.remove_core(core)
            if entry.is_empty():
                self.directory.deallocate(addr)
                cell = self._c_empty_deallocs
                if cell is None:
                    cell = self._c_empty_deallocs = self.stats.counter(
                        "empty_entry_deallocations"
                    )
                cell.value += 1
        elif self.stash_capable and self.llc.stash_bit(addr):
            # The departing core was the only possible hider.
            self.llc.clear_stash_bit(addr)

    # ------------------------------------------------------------ entry eviction

    def _allocate_entry(self, addr: int, home: int) -> int:
        """Allocate a directory entry, executing any displacement it causes.

        Returns the latency the displacement adds to the requester's
        critical path: a conventional invalidating eviction must complete
        (acks collected) before the new entry is usable, whereas a **stash**
        eviction is instantaneous — the entry is simply dropped and the LLC
        stash bit set.  This latency asymmetry is part of the design's win.
        """
        result = self.directory.allocate(addr)
        if result.eviction is None:
            return 0
        return self._execute_eviction(result.eviction, home)

    def _execute_eviction(self, eviction: Eviction, home: int) -> int:
        victim = eviction.entry
        if eviction.action is EvictionAction.STASH:
            # The paper's mechanism: drop silently, mark the LLC line.
            self.llc.set_stash_bit(victim.addr)
            cell = self._c_stash_evictions
            if cell is None:
                cell = self._c_stash_evictions = self.stats.counter("stash_evictions")
            cell.value += 1
            obs = self._obs
            if obs is not None:
                hider = victim.sole_holder() if victim.is_private() else -1
                obs((self.now, EV_STASH_SPILL, hider, victim.addr, 0, 0))
            return 0
        # Conventional invalidating eviction.
        if victim.is_private():
            cell = self._c_dir_evictions_private
            if cell is None:
                cell = self._c_dir_evictions_private = self.stats.counter(
                    "dir_evictions_private"
                )
        else:
            cell = self._c_dir_evictions_shared
            if cell is None:
                cell = self._c_dir_evictions_shared = self.stats.counter(
                    "dir_evictions_shared"
                )
        cell.value += 1
        latency = self._invalidate_victim_entry(victim, home)
        obs = self._obs
        if obs is not None:
            obs((self.now, EV_DIR_EVICT, -1, victim.addr, latency,
                 len(victim.targets())))
        return latency

    def _invalidate_victim_entry(self, victim: DirectoryEntry, home: int) -> int:
        """Invalidate every (believed) copy of a displaced entry's block."""
        worst = 0
        targets = victim.targets()
        obs = self._obs
        msg_cell = self._c_dir_eviction_inval_msgs
        if msg_cell is None and targets:
            msg_cell = self._c_dir_eviction_inval_msgs = self.stats.counter(
                "dir_eviction_inval_msgs"
            )
        for target in targets:
            msg_cell.value += 1
            rt = self._roundtrip(
                home, target, MessageClass.INVALIDATION, MessageClass.INV_ACK
            )
            worst = max(worst, rt)
            if target in victim.believed:
                # The ack settles this target's outstanding grant whether or
                # not a live copy was found (silent evictions included).
                self._filter_remove(target, victim.addr)
            removed = self._l1_invalidate[target](victim.addr)
            if obs is not None:
                obs((self.now, EV_INVAL, target, victim.addr, 0,
                     CAUSE_DIR_EVICT | (4 if removed is not None else 0)))
            if removed is None:
                continue
            cell = self._c_dir_induced_invalidations
            if cell is None:
                cell = self._c_dir_induced_invalidations = self.stats.counter(
                    "dir_induced_invalidations"
                )
            cell.value += 1
            self.dir_invalidated[target].add(victim.addr)
            if removed.dirty:
                self._send(target, home, MessageClass.WRITEBACK)
                self.llc.write_back(victim.addr, removed.version)
        return worst

    def _invalidate_targets(
        self,
        entry: DirectoryEntry,
        addr: int,
        home: int,
        skip: int,
        also_skip: Optional[int] = None,
    ) -> int:
        """Invalidate every believed sharer except ``skip`` (the requester)
        and ``also_skip`` (a dirty owner handled by a separate forward).

        Under MESI, read-shared targets are never dirty.  Under MOESI an
        invalidated target can be the *Owned* copy (e.g. a sharer upgrades
        while another core owns the line); dropping it without writeback is
        safe because every sharer — including the upgrading requester —
        holds the identical latest data.
        """
        worst = 0
        obs = self._obs
        for target in entry.targets():
            if target == skip or target == also_skip:
                continue
            cell = self._c_write_inval_msgs
            if cell is None:
                cell = self._c_write_inval_msgs = self.stats.counter(
                    "write_inval_msgs"
                )
            cell.value += 1
            rt = self._roundtrip(
                home, target, MessageClass.INVALIDATION, MessageClass.INV_ACK
            )
            worst = max(worst, rt)
            if target in entry.believed:
                self._filter_remove(target, addr)
            removed = self._l1_invalidate[target](addr)
            if obs is not None:
                obs((self.now, EV_INVAL, target, addr, 0,
                     CAUSE_WRITE | (4 if removed is not None else 0)))
            if removed is not None and removed.dirty:
                if not self.moesi:  # pragma: no cover - impossible in MESI
                    raise ProtocolError("dirty copy found among read-shared targets")
                self.stats.add("owned_copies_dropped")
        return worst

    # ------------------------------------------------------------- LLC eviction

    def _handle_llc_eviction(self, victim_addr: int, home: int) -> None:
        """Evict an LLC line: back-invalidate or discovery-invalidate.

        Off the requester's critical path (handled by MSHR/writeback buffers
        in real designs); traffic and memory writes are recorded.
        """
        cell = self._c_llc_evictions
        if cell is None:
            cell = self._c_llc_evictions = self.stats.counter("llc_evictions")
        cell.value += 1
        block = self.llc.probe(victim_addr, touch=False)
        assert block is not None
        version = block.version
        dirty = bool(block.dirty)
        had_stash = bool(block.stash)
        obs = self._obs
        entry = self.directory.lookup(victim_addr, touch=False)
        if entry is not None:
            for target in entry.targets():
                self._send(home, target, MessageClass.INVALIDATION)
                self._send(target, home, MessageClass.INV_ACK)
                if target in entry.believed:
                    self._filter_remove(target, victim_addr)
                removed = self._l1_invalidate[target](victim_addr)
                if obs is not None:
                    obs((self.now, EV_INVAL, target, victim_addr, 0,
                         CAUSE_LLC_EVICT | (4 if removed is not None else 0)))
                if removed is not None:
                    self.stats.add("llc_back_invalidations")
                    if removed.dirty:
                        self._send(target, home, MessageClass.WRITEBACK)
                        dirty = True
                        version = max(version, removed.version)
            self.directory.deallocate(victim_addr)
        elif self.stash_capable and block.stash:
            result = self.discovery.discover(
                home, victim_addr, DiscoveryDemand.EVICT, exclude_core=None,
                candidates=self._discovery_candidates(victim_addr, None),
            )
            if self._notify_discovery is not None:
                self._notify_discovery(result.found)
            if result.found:
                self._filter_remove(result.hider, victim_addr)
            if result.found:
                self.stats.add("llc_back_invalidations")
            if result.dirty_version is not None:
                dirty = True
                version = max(version, result.dirty_version)
            if obs is not None:
                obs((self.now, EV_DISCOVERY,
                     result.hider if result.found else -1, victim_addr,
                     result.latency,
                     (1 if result.found else 0) | (2 << 1)
                     | (result.fanout << 3)))
        self.llc.invalidate(victim_addr)
        if obs is not None:
            obs((self.now, EV_LLC_EVICT, -1, victim_addr, 0,
                 (1 if dirty else 0) | (2 if had_stash else 0)))
        if dirty:
            self._send(home, home, MessageClass.MEMORY)
            self.memory.write(victim_addr, self.now)
            self.memory_version[victim_addr] = version

    # ------------------------------------------------------------------ helpers

    def _serve_from_llc(self, core: int, addr: int, home: int) -> int:
        """LLC data access + response to the requester."""
        cell = self._c_llc_hits
        if cell is None:
            cell = self._c_llc_hits = self.stats.counter("llc_hits")
        cell.value += 1
        return self._t_llc + self._send(home, core, MessageClass.DATA_RESPONSE)

    def _llc_version(self, addr: int) -> int:
        block = self.llc.probe(addr, touch=False)
        if block is None:  # pragma: no cover - inclusion guarantees presence
            raise ProtocolError(f"LLC lost block {addr:#x} mid-transaction")
        return block.version

    def _tracked(self, addr: int) -> DirectoryEntry:
        entry = self.directory.lookup(addr, touch=False)
        if entry is None:  # pragma: no cover - just allocated
            raise ProtocolError(f"entry for {addr:#x} vanished after allocation")
        return entry
