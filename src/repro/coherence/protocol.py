"""The coherent memory system: one facade over caches, directory and NoC.

:class:`CoherentSystem` is the object the trace-driven simulator (and the
examples, and many tests) talks to.  ``access(core, block_addr, is_write)``
performs one fully-resolved coherence transaction and returns its latency;
everything else is inspection: statistics, invariant checking, and the
effective-tracking metric the F7 experiment reports.

Construction wiring lives in :func:`repro.sim.system.build_system`.
"""

from __future__ import annotations

from typing import Dict, List

from ..cache.l1 import L1Cache
from ..cache.llc import SharedLLC
from ..common.config import DirectoryKind, SystemConfig
from ..common.stats import StatGroup
from ..core.discovery import DiscoveryEngine
from ..directory.base import Directory
from ..mem import Memory
from ..noc.network import Network
from .invariants import (
    check_data_values,
    check_directory_inclusion,
    check_entries_llc_resident,
    check_llc_inclusion,
    check_swmr,
)
from .l1_controller import L1Controller
from .llc_controller import HomeController


class CoherentSystem:
    """A complete CMP memory system processing one access at a time."""

    def __init__(
        self,
        config: SystemConfig,
        l1s: List[L1Cache],
        llc: SharedLLC,
        directory: Directory,
        network: Network,
        memory: Memory,
        stats: StatGroup,
    ) -> None:
        self.config = config
        self.l1s = l1s
        self.llc = llc
        self.directory = directory
        self.network = network
        self.memory = memory
        self.stats = stats
        self.discovery = DiscoveryEngine(network, l1s, stats.child("discovery"))
        self._protocol_stats = stats.child("protocol")
        if config.directory.kind is DirectoryKind.TARDIS:
            from .tardis import TardisHome, TardisL1Controller

            self.home = TardisHome(
                config, directory, llc, l1s, network, memory,
                self._protocol_stats,
            )
            self.l1_controllers = [
                TardisL1Controller(
                    core, l1s[core], self.home, network, config.timing,
                    self._protocol_stats,
                )
                for core in range(config.num_cores)
            ]
            self._l1_access = [c.access for c in self.l1_controllers]
            self._c_latency_total = None
            return
        self.home = HomeController(
            config,
            directory,
            llc,
            l1s,
            network,
            memory,
            self.discovery,
            stats.child("protocol"),
        )
        slots = config.directory.discovery_filter_slots
        if slots:
            from ..core.filter import PresenceFilter

            self.home.filter = PresenceFilter(
                config.num_cores, slots, stats.child("filter")
            )
        self.l1_controllers = [
            L1Controller(
                core, l1s[core], self.home, network, config.timing,
                self._protocol_stats,
            )
            for core in range(config.num_cores)
        ]
        # Hot-path hoists for access(): per-core bound methods and the
        # total-latency counter cell (bound on first access).
        self._l1_access = [controller.access for controller in self.l1_controllers]
        self._c_latency_total = None

    # -- the one operation ------------------------------------------------------

    def access(self, core: int, block_addr: int, is_write: bool, now: float = 0.0) -> int:
        """One memory operation by ``core``; returns its latency in cycles.

        ``now`` is the issuing core's clock; only the DRAM memory model
        consumes it (bank busy windows), so callers that do not track time
        may omit it.
        """
        self.home.now = now
        latency = self._l1_access[core](block_addr, is_write)
        cell = self._c_latency_total
        if cell is None:
            cell = self.latency_cell()
        cell.value += latency
        return latency

    def latency_cell(self):
        """Bound cell for the ``latency_total`` counter (created on demand).

        The trace-driven simulator inlines the per-op accounting of
        :meth:`access` into its run loop; this accessor hands it the same
        cell so the statistics stay identical.
        """
        cell = self._c_latency_total
        if cell is None:
            cell = self._c_latency_total = self._protocol_stats.counter("latency_total")
        return cell

    # -- invariants ----------------------------------------------------------------

    @property
    def is_stash(self) -> bool:
        """Is the configured directory a stash design (relaxed inclusion)?"""
        return self.config.directory.kind in (
            DirectoryKind.STASH,
            DirectoryKind.ADAPTIVE_STASH,
        )

    def check_invariants(self) -> None:
        """Run the full invariant suite; raises on the first violation."""
        if self.config.directory.kind is DirectoryKind.TARDIS:
            # Tardis legally violates SWMR (leased readers coexist with a
            # writer) and LLC inclusion (leased copies survive eviction);
            # it has its own invariant suite.
            from .tardis import check_tardis_invariants

            check_tardis_invariants(self)
            return
        check_swmr(self.l1s)
        check_llc_inclusion(self.l1s, self.llc)
        check_directory_inclusion(self.l1s, self.llc, self.directory, self.is_stash)
        check_entries_llc_resident(self.directory, self.llc)
        check_data_values(
            self.l1s, self.llc, self.home.latest_version, self.home.memory_version
        )

    # -- metrics ----------------------------------------------------------------------

    def effective_tracking(self) -> int:
        """Blocks currently covered: tracked entries + live stash bits.

        The paper's "effective directory capacity" — the stash bits extend
        coverage beyond the physical entry count.
        """
        return self.directory.occupancy() + self.llc.stash_bit_count()

    def hidden_blocks(self) -> int:
        """Privately cached blocks with no directory entry (stash only)."""
        tracked = {entry.addr for entry in self.directory.iter_entries()}
        hidden = set()
        for l1 in self.l1s:
            for block in l1.iter_blocks():
                if block.addr not in tracked:
                    hidden.add(block.addr)
        return len(hidden)

    def flat_stats(self) -> Dict[str, float]:
        """The whole statistics tree, flattened (reporting entry point)."""
        return self.stats.to_dict()
