"""MESI coherence states (re-export).

The definitions live in :mod:`repro.common.mesi` so the cache substrate can
use them without importing the protocol package (which imports the caches —
keeping the dependency graph acyclic).  Protocol code imports them from
here, their natural home.
"""

from ..common.mesi import (
    CoherenceProtocol,
    LlcState,
    MesiState,
    can_read,
    can_write,
    is_exclusive_class,
)

__all__ = [
    "CoherenceProtocol",
    "LlcState",
    "MesiState",
    "can_read",
    "can_write",
    "is_exclusive_class",
]
