"""Transition tables for the vectorized engine, generated from the live
protocol controllers.

The vector engine (:mod:`repro.sim.vector`) dispatches every operation
through integer lookup tables instead of the interpreter's method chain.
The tables are small — the L1 request pipeline is a pure function of
``(current MESI state, is_write)`` — but their *contents* are not written
down by hand: :func:`derive_l1_tables` drives a real
:class:`~repro.coherence.protocol.CoherentSystem` into each reachable
``(state, op)`` cell, issues the access through the real
:class:`~repro.coherence.l1_controller.L1Controller`, and reads the
classification back out of the statistics tree and the cache state.  The
engine therefore executes, by construction, the same decision tree the
interpreter does; :func:`validate_l1_tables` cross-checks the derived
actions against the analytic MESI predicates as a second, independent
derivation.

Tables are plain numpy integer arrays (``action[state, is_write]``), plus
flat-list views for the scalar dispatch loop.  :func:`corrupt_l1_tables`
deliberately flips one entry — the fuzz differ's ``table-corrupt`` fault
uses it to prove that engine-vs-engine differential testing catches a
mis-generated table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..common.errors import ProtocolError
from ..common.mesi import CoherenceProtocol, MesiState, can_read, can_write

#: Action codes of the L1 request pipeline (one per table cell).
A_MISS = 0          #: line absent: run the full miss path
A_HIT = 1           #: read hit: touch LRU, charge the L1 hit latency
A_HIT_WUP = 2       #: write hit on M/E: silent upgrade to M + version mint
A_UPGRADE = 3       #: write hit on S/O: home-serialized upgrade

#: Stat-delta classes (index into the engine's local counter block).
SC_L1_HIT = 0
SC_L1_MISS = 1
SC_UPGRADE = 2

_N_STATES = 5  # I, S, E, M, O


@dataclass(frozen=True)
class L1Tables:
    """The L1 request pipeline as data.

    ``action[state, w]`` — action code; ``next_state[state, w]`` — MESI
    state after the operation (``-1`` = decided by the slow path);
    ``stat_class[state, w]`` — which per-access counter the operation
    increments; ``grant_state[w]`` — state granted when the requester
    becomes sole holder (directory/LLC miss, false discovery).
    """

    protocol: CoherenceProtocol
    action: np.ndarray       # (5, 2) int8
    next_state: np.ndarray   # (5, 2) int8
    stat_class: np.ndarray   # (5, 2) int8
    grant_state: np.ndarray  # (2,)   int8

    def flat_action(self) -> List[int]:
        """``action`` as a flat list indexed ``state * 2 + is_write``."""
        return [int(v) for v in self.action.reshape(-1)]

    def flat_next_state(self) -> List[int]:
        """``next_state`` as a flat list indexed ``state * 2 + is_write``."""
        return [int(v) for v in self.next_state.reshape(-1)]


def _micro_system(protocol: CoherenceProtocol):
    """A 2-core system large enough that table probes never conflict."""
    from ..common.config import (
        CacheConfig,
        DirectoryConfig,
        DirectoryKind,
        NoCConfig,
        SystemConfig,
    )
    from ..sim.system import build_system

    config = SystemConfig(
        num_cores=4,
        l1=CacheConfig(sets=16, ways=4),
        llc=CacheConfig(sets=64, ways=8),
        directory=DirectoryConfig(kind=DirectoryKind.IDEAL),
        noc=NoCConfig(mesh_width=2, mesh_height=2),
        protocol=protocol,
    )
    return build_system(config)


def _prepare_state(system, addr: int, state: MesiState) -> None:
    """Drive core 0's copy of ``addr`` into ``state`` with real protocol ops."""
    if state is MesiState.INVALID:
        return
    if state is MesiState.EXCLUSIVE:
        system.access(0, addr, False)
    elif state is MesiState.MODIFIED:
        system.access(0, addr, True)
    elif state is MesiState.SHARED:
        system.access(0, addr, False)
        system.access(1, addr, False)
    elif state is MesiState.OWNED:
        system.access(0, addr, True)
        system.access(1, addr, False)  # MOESI: dirty owner downgrades M -> O
    observed = system.l1s[0].state_of(addr)
    if observed is not state:  # pragma: no cover - setup bug
        raise ProtocolError(f"table probe setup reached {observed}, wanted {state}")


def _reachable(state: MesiState, protocol: CoherenceProtocol) -> bool:
    return state is not MesiState.OWNED or protocol is CoherenceProtocol.MOESI


def derive_l1_tables(protocol: CoherenceProtocol) -> L1Tables:
    """Generate the L1 tables by probing the live controllers.

    One fresh micro-system per ``(state, op)`` cell: the probe sets up the
    state, zeroes the statistics, issues the access from core 0 through the
    real controller stack, and classifies the cell from which counter fired
    and where the line ended up.  OWNED cells are probed under MOESI (the
    only protocol that reaches them) and reused for the MESI table, where
    the interpreter's code path for a hypothetical O line is identical.
    """
    action = np.zeros((_N_STATES, 2), dtype=np.int8)
    next_state = np.zeros((_N_STATES, 2), dtype=np.int8)
    stat_class = np.zeros((_N_STATES, 2), dtype=np.int8)
    addr = 0x1234

    for state in MesiState:
        probe_protocol = (
            CoherenceProtocol.MOESI if state is MesiState.OWNED else protocol
        )
        for is_write in (False, True):
            system = _micro_system(probe_protocol)
            _prepare_state(system, addr, state)
            system.stats.reset()
            before = system.home._version_clock
            system.access(0, addr, is_write)
            stats = system.flat_stats()
            hits = stats.get("system.protocol.l1_hits", 0.0)
            misses = stats.get("system.protocol.l1_misses", 0.0)
            upgrades = stats.get("system.protocol.upgrade_misses", 0.0)
            if hits + misses + upgrades != 1.0:  # pragma: no cover
                raise ProtocolError(
                    f"probe ({state.name}, w={is_write}) fired {hits}/{misses}/{upgrades}"
                )
            after_state = system.l1s[0].state_of(addr)
            minted = system.home._version_clock != before
            row, col = int(state), int(is_write)
            next_state[row, col] = int(after_state)
            if misses:
                action[row, col] = A_MISS
                stat_class[row, col] = SC_L1_MISS
                next_state[row, col] = -1  # grant decides
            elif upgrades:
                action[row, col] = A_UPGRADE
                stat_class[row, col] = SC_UPGRADE
            elif minted:
                action[row, col] = A_HIT_WUP
                stat_class[row, col] = SC_L1_HIT
            else:
                action[row, col] = A_HIT
                stat_class[row, col] = SC_L1_HIT

    # Sole-holder grants: what the home hands back when nobody else holds
    # the line (directory miss / LLC miss / false discovery).
    grant = np.zeros(2, dtype=np.int8)
    for is_write in (False, True):
        system = _micro_system(protocol)
        system.access(0, addr, is_write)
        grant[int(is_write)] = int(system.l1s[0].state_of(addr))

    return L1Tables(
        protocol=protocol,
        action=action,
        next_state=next_state,
        stat_class=stat_class,
        grant_state=grant,
    )


def validate_l1_tables(tables: L1Tables) -> None:
    """Cross-check a derived table against the analytic MESI predicates.

    Independent second derivation: readable states must be read hits,
    writable states silent write hits, valid-but-unwritable states
    upgrades, INVALID a miss.  Raises :class:`ProtocolError` on any
    disagreement (e.g. a corrupted table).
    """
    for state in MesiState:
        row = int(state)
        expect_read = A_HIT if can_read(state) else A_MISS
        if int(tables.action[row, 0]) != expect_read:
            raise ProtocolError(
                f"L1 table: read action for {state.name} is "
                f"{int(tables.action[row, 0])}, expected {expect_read}"
            )
        if state is MesiState.INVALID:
            expect_write = A_MISS
        elif can_write(state):
            expect_write = A_HIT_WUP
        else:
            expect_write = A_UPGRADE
        if int(tables.action[row, 1]) != expect_write:
            raise ProtocolError(
                f"L1 table: write action for {state.name} is "
                f"{int(tables.action[row, 1])}, expected {expect_write}"
            )
    if int(tables.grant_state[0]) != int(MesiState.EXCLUSIVE) or int(
        tables.grant_state[1]
    ) != int(MesiState.MODIFIED):
        raise ProtocolError("L1 table: sole-holder grant states are wrong")


def corrupt_l1_tables(tables: L1Tables, cell: int = 5) -> L1Tables:
    """Return a copy with one table entry deliberately wrong.

    ``cell`` indexes ``state * 2 + is_write``; the default (5 = EXCLUSIVE,
    write) downgrades the silent E->M upgrade to a plain read hit, so a
    vector run silently loses a version mint — exactly the class of table
    generation bug the engine differential suite must catch.
    """
    action = tables.action.copy()
    row, col = divmod(cell, 2)
    action[row, col] = A_HIT if action[row, col] != A_HIT else A_MISS
    return L1Tables(
        protocol=tables.protocol,
        action=action,
        next_state=tables.next_state.copy(),
        stat_class=tables.stat_class.copy(),
        grant_state=tables.grant_state.copy(),
    )


_TABLE_CACHE: dict = {}


def l1_tables(protocol: CoherenceProtocol) -> L1Tables:
    """Derived-and-validated tables for ``protocol`` (memoized per process)."""
    tables = _TABLE_CACHE.get(protocol)
    if tables is None:
        tables = derive_l1_tables(protocol)
        validate_l1_tables(tables)
        _TABLE_CACHE[protocol] = tables
    return tables


def noc_tables(config) -> Tuple[np.ndarray, np.ndarray]:
    """The mesh hop/latency matrices as numpy int arrays.

    Same numbers as :meth:`repro.noc.topology.Mesh2D.hop_table` /
    ``latency_table`` (the interpreter's per-message lookups); the vector
    engine gathers from these per epoch.
    """
    from ..noc.topology import Mesh2D

    mesh = Mesh2D(config.noc)
    hops = np.asarray(mesh.hop_table(), dtype=np.int64)
    lats = np.asarray(mesh.latency_table(), dtype=np.int64)
    return hops, lats
