"""Tardis timestamp coherence — leases instead of sharer tracking.

Tardis (Yu & Devadas, PACT'15) orders memory operations in *timestamp*
order rather than physical arrival order: every block carries a write
timestamp (``wts``) and a read-lease timestamp (``rts``), readers are
leased the block until ``rts`` and self-invalidate when their lease
expires, and writers simply jump their timestamp past ``rts`` — no
invalidation messages to readers, no sharer vector, O(log N) state per
block.  It is the natural counterpoint to the stash directory's bet: where
stashing shrinks *tracking* by exploiting private blocks, Tardis deletes
tracking altogether and pays with lease-renewal misses on read-shared
data.

This implementation is the *physically-timestamped* lease variant: the
home advances a global operation clock (one tick per memory operation, so
clocks are comparable across runs of the same program) and a read grant
leases the block for ``DirectoryConfig.tardis_lease`` ticks.  That keeps
the observable-staleness window bounded — a read may return a superseded
version only within ``lease`` operations of the superseding write — which
is exactly the contract :func:`repro.verify.differ.diff_tardis_results`
checks against the IDEAL reference.  Logical-timestamp Tardis (pts jumps,
unbounded physical staleness) would admit the same final state but no
per-op bound, and with it no differential oracle.

Protocol sketch (mirrors the MESI controllers' structure so the simulator
fast paths, stats identities and obs hooks all apply):

* **Read miss** — home grants S and extends ``rts`` to ``clock + lease``;
  the reader records its lease locally.  If an exclusive owner exists the
  home forwards to it (downgrade to S + writeback if dirty, lease for the
  ex-owner too); a stale owner pointer (silent E drop) nacks and the home
  serves from the LLC.
* **Write miss / upgrade** — ``wts = max(clock, rts + 1)`` (jumping past
  every outstanding lease — counted as ``ts_jumps``), the single owner if
  any is forward-invalidated, and **no message touches the leased
  readers**: their copies remain legally readable until expiry.
* **Lease expiry** — an L1 read/write hitting an S copy first compares
  the clock with its lease; an expired copy self-invalidates silently and
  the access proceeds as a renewal miss (``lease_expirations``).
* **LLC eviction** — recalls only the owner (one message); leased S
  copies survive, exempt from inclusion, and die by expiry.  Timestamp
  state lives with the LLC line, so the entry set always equals the
  LLC-resident set.

Fault hook: ``TardisHome.ts_wrap_mask`` (0 = off) models timestamp
rollover — when set, the L1 lease check compares the *wrapped* clock, so
after the clock passes the mask every expired lease looks valid again and
stale reads escape the bound.  ``repro fuzz --inject-fault ts-rollover``
must catch this as a ``tardis-stale`` divergence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cache.l1 import L1Cache
from ..cache.llc import SharedLLC
from ..common.config import SystemConfig
from ..common.errors import ConfigError, InvariantViolation, ProtocolError
from ..common.stats import StatCounter, StatGroup
from ..directory.timestamp import TardisEntry, TimestampDirectory
from ..mem import Memory
from ..noc.network import Network
from ..noc.traffic import MessageClass
from .states import MesiState

_S_SHARED = int(MesiState.SHARED)
_S_EXCLUSIVE = int(MesiState.EXCLUSIVE)
_S_MODIFIED = int(MesiState.MODIFIED)

#: ``(latency, state, version, lease_end)`` — the Tardis grant tuple.
#: ``lease_end`` is meaningful only for S grants (0 otherwise).
TardisGrant = Tuple[int, int, int, int]


class TardisHome:
    """Home-side logic: timestamps, leases, owner forwarding, LLC+memory."""

    def __init__(
        self,
        config: SystemConfig,
        directory: TimestampDirectory,
        llc: SharedLLC,
        l1s: List[L1Cache],
        network: Network,
        memory: Memory,
        stats: StatGroup,
    ) -> None:
        self.config = config
        self.directory = directory
        self.llc = llc
        self.l1s = l1s
        self.network = network
        self.memory = memory
        self.stats = stats
        self.timing = config.timing
        self.lease = config.directory.tardis_lease
        # Global operation clock: one tick per memory access, advanced by
        # the L1 controllers at the top of every access.
        self.op_clock = 0
        # Rollover fault hook (repro.verify): 0 = correct behaviour; a
        # mask makes the L1 lease comparison use the wrapped clock.
        self.ts_wrap_mask = 0
        # Per-core lease maps (addr -> lease-end tick) for S copies; each
        # TardisL1Controller binds its own map, the home writes a lease
        # when it downgrades a forwarded owner to S.
        self.leases: List[Dict[int, int]] = [dict() for _ in l1s]
        # Hot-path hoists, mirroring HomeController.
        self._t_dir = config.timing.directory_access
        self._t_llc = config.timing.llc_access
        self._t_l1 = config.timing.l1_hit
        self._home_occupancy = config.timing.home_occupancy
        self._send = network.send
        self._dir_lookup = directory.lookup
        self._bank_mask = llc.num_banks - 1
        self._l1_probe = [l1.probe for l1 in l1s]
        self._l1_invalidate = [l1.invalidate for l1 in l1s]
        self.now: float = 0.0
        self._home_busy_until = [0.0] * config.num_cores
        self._obs = None
        # Data-version bookkeeping (same contract as HomeController).
        self.latest_version: Dict[int, int] = {}
        self.memory_version: Dict[int, int] = {}
        self._version_clock = 0
        self._c_llc_hits: Optional[StatCounter] = None
        self._c_llc_misses: Optional[StatCounter] = None
        self._c_forwards: Optional[StatCounter] = None
        self._c_upgrade_requests: Optional[StatCounter] = None
        self._c_l1_writebacks: Optional[StatCounter] = None
        self._c_silent_clean_evictions: Optional[StatCounter] = None
        self._c_llc_evictions: Optional[StatCounter] = None
        self._c_ts_jumps: Optional[StatCounter] = None
        self._c_lease_extends: Optional[StatCounter] = None

    # ------------------------------------------------------------------ utils

    def tick(self) -> int:
        """Advance the global operation clock (once per memory access)."""
        self.op_clock += 1
        return self.op_clock

    def home_tile(self, addr: int) -> int:
        return self.llc.bank_of(addr)

    def mint_version(self, addr: int) -> int:
        """Allocate the version a new write commits."""
        self._version_clock += 1
        self.latest_version[addr] = self._version_clock
        return self._version_clock

    def _roundtrip(self, a: int, b: int, out: MessageClass, back: MessageClass) -> int:
        send = self._send
        return send(a, b, out) + send(b, a, back)

    def _home_wait(self, home: int) -> int:
        occupancy = self._home_occupancy
        if occupancy == 0:
            return 0
        wait = max(0.0, self._home_busy_until[home] - self.now)
        self._home_busy_until[home] = self.now + wait + occupancy
        if wait > 0:
            self.stats.add("home_bank_waits")
            self.stats.add("home_bank_wait_cycles", wait)
        return int(wait)

    # ---------------------------------------------------------------- misses

    def serve_miss(self, core: int, addr: int, is_write: bool) -> TardisGrant:
        """Serve an L1 miss; returns ``(latency, state, version, lease_end)``.

        The request message (core -> home) is charged by the caller; this
        charges the directory/timestamp access onward, response included.
        """
        home = addr & self._bank_mask
        latency = self._t_dir
        if self._home_occupancy:
            latency += self._home_wait(home)
        entry = self._dir_lookup(addr)
        if entry is None:
            extra, entry = self._llc_refill(addr, home)
            latency += extra
            # Fresh entry: the requester is the only core the home has
            # spoken to since the fill, so grant exclusivity (surviving
            # leased S copies elsewhere need no message either way).
            version = self._llc_version(addr)
            if is_write:
                self._bump_write_ts(entry, core)
                latency += self._send(home, core, MessageClass.DATA_RESPONSE)
                return latency, _S_MODIFIED, version, 0
            entry.owner = core
            latency += self._send(home, core, MessageClass.DATA_RESPONSE)
            return latency, _S_EXCLUSIVE, version, 0
        if is_write:
            return self._hit_write(core, addr, entry, home, latency)
        return self._hit_read(core, addr, entry, home, latency)

    def _hit_read(
        self, core: int, addr: int, entry: TardisEntry, home: int, latency: int
    ) -> TardisGrant:
        owner = entry.owner
        if owner is not None and owner != core:
            return self._forward_read(core, addr, entry, owner, home, latency)
        if owner == core:
            # Silently dropped clean-E copy; re-grant exclusivity.
            self.stats.add("self_regrants")
            latency += self._serve_from_llc(core, addr, home)
            return latency, _S_EXCLUSIVE, self._llc_version(addr), 0
        # No owner: serve from the LLC under a fresh lease.
        latency += self._serve_from_llc(core, addr, home)
        lease_end = self._extend_lease(entry)
        return latency, _S_SHARED, self._llc_version(addr), lease_end

    def _forward_read(
        self,
        core: int,
        addr: int,
        entry: TardisEntry,
        owner: int,
        home: int,
        latency: int,
    ) -> TardisGrant:
        cell = self._c_forwards
        if cell is None:
            cell = self._c_forwards = self.stats.counter("forwards")
        cell.value += 1
        latency += self._send(home, owner, MessageClass.FORWARD)
        owner_block = self._l1_probe[owner](addr, touch=False)
        if owner_block is None:
            # Stale owner pointer (silent clean-E drop): nack, serve LLC.
            self.stats.add("forward_nacks")
            latency += self._send(owner, home, MessageClass.CONTROL_RESPONSE)
            entry.owner = None
            latency += self._serve_from_llc(core, addr, home)
            lease_end = self._extend_lease(entry)
            return latency, _S_SHARED, self._llc_version(addr), lease_end
        was_dirty = bool(owner_block.dirty)
        version = owner_block.version
        self.l1s[owner].downgrade_to_shared(addr)
        if was_dirty:
            self._send(owner, home, MessageClass.WRITEBACK)
            self.llc.write_back(addr, version)
        latency += self._send(owner, core, MessageClass.DATA_RESPONSE)
        latency += self._t_l1
        entry.owner = None
        lease_end = self._extend_lease(entry)
        # The downgraded ex-owner now holds a leased S copy too.
        self.leases[owner][addr] = lease_end
        final = version if was_dirty else self._llc_version(addr)
        return latency, _S_SHARED, final, lease_end

    def _hit_write(
        self, core: int, addr: int, entry: TardisEntry, home: int, latency: int
    ) -> TardisGrant:
        owner = entry.owner
        if owner is not None and owner != core:
            latency += self._recall_owner_for_write(core, addr, entry, owner, home)
            self._bump_write_ts(entry, core)
            version = self._llc_version(addr)
            latency += self._send(home, core, MessageClass.DATA_RESPONSE)
            return latency, _S_MODIFIED, version, 0
        if owner == core:
            self.stats.add("self_regrants")
        # Leased readers are *not* invalidated: the write just jumps its
        # timestamp past every outstanding lease.
        latency += self._serve_from_llc(core, addr, home)
        self._bump_write_ts(entry, core)
        return latency, _S_MODIFIED, self._llc_version(addr), 0

    def _recall_owner_for_write(
        self, core: int, addr: int, entry: TardisEntry, owner: int, home: int
    ) -> int:
        """Forward-invalidate the exclusive owner; its data reaches the LLC."""
        cell = self._c_forwards
        if cell is None:
            cell = self._c_forwards = self.stats.counter("forwards")
        cell.value += 1
        latency = self._send(home, owner, MessageClass.FORWARD)
        removed = self._l1_invalidate[owner](addr)
        if removed is None:
            self.stats.add("forward_nacks")
            latency += self._send(owner, home, MessageClass.CONTROL_RESPONSE)
            entry.owner = None
            return latency
        if removed.dirty:
            self._send(owner, home, MessageClass.WRITEBACK)
            self.llc.write_back(addr, removed.version)
        latency += self._send(owner, home, MessageClass.INV_ACK)
        entry.owner = None
        return latency

    def _extend_lease(self, entry: TardisEntry) -> int:
        """Lease the block to ``op_clock + lease``; returns the lease end."""
        cell = self._c_lease_extends
        if cell is None:
            cell = self._c_lease_extends = self.stats.counter("lease_extends")
        cell.value += 1
        end = self.op_clock + self.lease
        if end > entry.rts:
            entry.rts = end
        return entry.rts

    def _bump_write_ts(self, entry: TardisEntry, core: int) -> None:
        """Jump the write timestamp past every outstanding lease."""
        clock = self.op_clock
        if entry.rts >= clock:
            # Readers still hold live leases: the write logically happens
            # after them (the Tardis "time travel").
            cell = self._c_ts_jumps
            if cell is None:
                cell = self._c_ts_jumps = self.stats.counter("ts_jumps")
            cell.value += 1
        wts = max(clock, entry.rts + 1)
        entry.wts = wts
        entry.rts = wts
        entry.owner = core

    # ----------------------------------------------------------------- upgrades

    def handle_upgrade(self, core: int, addr: int) -> int:
        """Serve a write-upgrade from a core holding a leased S copy."""
        home = addr & self._bank_mask
        latency = self._t_dir
        if self._home_occupancy:
            latency += self._home_wait(home)
        cell = self._c_upgrade_requests
        if cell is None:
            cell = self._c_upgrade_requests = self.stats.counter("upgrade_requests")
        cell.value += 1
        entry = self._dir_lookup(addr)
        if entry is None:
            # The LLC evicted the line while our lease ran (leased copies
            # survive LLC eviction); re-establish residency first.
            extra, entry = self._llc_refill(addr, home)
            latency += extra
        owner = entry.owner
        if owner is not None and owner != core:
            latency += self._recall_owner_for_write(core, addr, entry, owner, home)
        self._bump_write_ts(entry, core)
        latency += self._send(home, core, MessageClass.CONTROL_RESPONSE)
        return latency

    # ----------------------------------------------------------------- putbacks

    def handle_put(self, core: int, addr: int, dirty: bool, version: int) -> None:
        """Absorb an L1 eviction (off the requester's critical path)."""
        if dirty:
            home = addr & self._bank_mask
            self._send(core, home, MessageClass.WRITEBACK)
            self._send(home, core, MessageClass.WB_ACK)
            self.llc.write_back(addr, version)
            cell = self._c_l1_writebacks
            if cell is None:
                cell = self._c_l1_writebacks = self.stats.counter("l1_writebacks")
            cell.value += 1
            entry = self._dir_lookup(addr, touch=False)
            if entry is not None and entry.owner == core:
                entry.owner = None
            return
        # Clean drops are always silent in Tardis (there is nothing to
        # update: leases expire on their own, a stale owner pointer nacks).
        cell = self._c_silent_clean_evictions
        if cell is None:
            cell = self._c_silent_clean_evictions = self.stats.counter(
                "silent_clean_evictions"
            )
        cell.value += 1

    # ------------------------------------------------------------- LLC refill

    def _llc_refill(self, addr: int, home: int) -> Tuple[int, TardisEntry]:
        """Fetch ``addr`` into the LLC and allocate its timestamp entry."""
        cell = self._c_llc_misses
        if cell is None:
            cell = self._c_llc_misses = self.stats.counter("llc_misses")
        cell.value += 1
        latency = self._t_llc  # tag miss detection
        victim = self.llc.peek_fill_victim(addr)
        if victim is not None:
            self._handle_llc_eviction(victim.addr, home)
        self._send(home, home, MessageClass.MEMORY)
        latency += self.memory.read(addr, self.now)
        self._send(home, home, MessageClass.MEMORY)
        self.llc.fill(addr, version=self.memory_version.get(addr, 0))
        entry = self.directory.allocate(addr)
        return latency, entry

    def _handle_llc_eviction(self, victim_addr: int, home: int) -> None:
        """Evict an LLC line: recall only the owner; leased copies survive.

        This is the storage story's other half: a conventional directory
        back-invalidates every sharer on an LLC eviction, Tardis sends at
        most one message (to the exclusive owner) because leased readers
        need no notification — their copies stay legal until expiry.
        """
        cell = self._c_llc_evictions
        if cell is None:
            cell = self._c_llc_evictions = self.stats.counter("llc_evictions")
        cell.value += 1
        block = self.llc.probe(victim_addr, touch=False)
        assert block is not None
        version = block.version
        dirty = bool(block.dirty)
        entry = self._dir_lookup(victim_addr, touch=False)
        if entry is not None:
            owner = entry.owner
            if owner is not None:
                self._roundtrip(
                    home, owner, MessageClass.INVALIDATION, MessageClass.INV_ACK
                )
                removed = self._l1_invalidate[owner](victim_addr)
                if removed is not None:
                    self.stats.add("llc_back_invalidations")
                    if removed.dirty:
                        self._send(owner, home, MessageClass.WRITEBACK)
                        dirty = True
                        version = max(version, removed.version)
            self.directory.deallocate(victim_addr)
        self.llc.invalidate(victim_addr)
        if dirty:
            self._send(home, home, MessageClass.MEMORY)
            self.memory.write(victim_addr, self.now)
            self.memory_version[victim_addr] = version

    # ------------------------------------------------------------------ helpers

    def _serve_from_llc(self, core: int, addr: int, home: int) -> int:
        cell = self._c_llc_hits
        if cell is None:
            cell = self._c_llc_hits = self.stats.counter("llc_hits")
        cell.value += 1
        return self._t_llc + self._send(home, core, MessageClass.DATA_RESPONSE)

    def _llc_version(self, addr: int) -> int:
        block = self.llc.probe(addr, touch=False)
        if block is None:  # pragma: no cover - refill guarantees presence
            raise ProtocolError(f"LLC lost block {addr:#x} mid-transaction")
        return block.version


class TardisL1Controller:
    """Core-side controller: lease checks, self-invalidation, renewals.

    Keeps the MESI L1 controller's stat identities (every access counts
    exactly one of ``l1_hits`` / ``upgrade_misses`` / ``l1_misses``) so
    :func:`repro.verify.differ.check_stat_sanity` applies unchanged; an
    expired lease adds a ``lease_expirations`` tick on top of the renewal
    miss it becomes.
    """

    def __init__(
        self,
        core_id: int,
        l1: L1Cache,
        home: TardisHome,
        network: Network,
        timing,
        stats: StatGroup,
    ) -> None:
        self.core_id = core_id
        self.l1 = l1
        self.home = home
        self.network = network
        self.timing = timing
        self.stats = stats
        if hasattr(l1, "l2_config"):
            raise ConfigError(
                "the tardis backend models single-level private caches; "
                "disable the private L2"
            )
        self._fast_lookup = l1.lookup_block
        self._bank_mask = home.llc.num_banks - 1
        self._serve_miss = home.serve_miss
        self._handle_put = home.handle_put
        self._handle_upgrade = home.handle_upgrade
        self._mint_version = home.mint_version
        self._tick = home.tick
        # This core's lease map (addr -> lease-end tick), shared with the
        # home so forwarded-owner downgrades can lease in place.
        self._lease = home.leases[core_id]
        self._lat_l1_hit = timing.l1_hit
        self._obs = None
        self._c_accesses: Optional[StatCounter] = None
        self._c_reads: Optional[StatCounter] = None
        self._c_writes: Optional[StatCounter] = None
        self._c_l1_hits: Optional[StatCounter] = None
        self._c_l1_misses: Optional[StatCounter] = None
        self._c_upgrade_misses: Optional[StatCounter] = None
        self._c_lease_expirations: Optional[StatCounter] = None

    def access(self, addr: int, is_write: bool) -> int:
        """Perform one memory operation; returns its latency in cycles."""
        cell = self._c_accesses
        if cell is None:
            cell = self._c_accesses = self.stats.counter("accesses")
        cell.value += 1
        if is_write:
            cell = self._c_writes
            if cell is None:
                cell = self._c_writes = self.stats.counter("writes")
        else:
            cell = self._c_reads
            if cell is None:
                cell = self._c_reads = self.stats.counter("reads")
        cell.value += 1
        op_clock = self._tick()
        block = self._fast_lookup(addr)
        if block is not None:
            state = block.state
            if state == _S_SHARED:
                lease_end = self._lease.get(addr, 0)
                # Rollover fault hook: a wrapped comparison clock makes
                # expired leases look valid once the clock passes the mask.
                mask = self.home.ts_wrap_mask
                clock_cmp = op_clock & mask if mask else op_clock
                if clock_cmp > lease_end:
                    # Lease expired: silent self-invalidation, then renew
                    # through the ordinary miss path.
                    cell = self._c_lease_expirations
                    if cell is None:
                        cell = self._c_lease_expirations = self.stats.counter(
                            "lease_expirations"
                        )
                    cell.value += 1
                    self.l1.invalidate(addr)
                    self._lease.pop(addr, None)
                    return self._miss(addr, is_write)
                if not is_write:
                    cell = self._c_l1_hits
                    if cell is None:
                        cell = self._c_l1_hits = self.stats.counter("l1_hits")
                    cell.value += 1
                    return self._lat_l1_hit
                return self._upgrade(addr, block)
            # M or E copy: always a hit; writes upgrade silently.
            cell = self._c_l1_hits
            if cell is None:
                cell = self._c_l1_hits = self.stats.counter("l1_hits")
            cell.value += 1
            if is_write:
                block.state = _S_MODIFIED
                block.dirty = True
                block.version = self._mint_version(addr)
            return self._lat_l1_hit
        return self._miss(addr, is_write)

    def _upgrade(self, addr: int, block) -> int:
        """Write hit on a live-leased S copy: timestamp upgrade at the home."""
        cell = self._c_upgrade_misses
        if cell is None:
            cell = self._c_upgrade_misses = self.stats.counter("upgrade_misses")
        cell.value += 1
        home_tile = addr & self._bank_mask
        latency = self._lat_l1_hit
        latency += self.network.send(self.core_id, home_tile, MessageClass.REQUEST)
        latency += self._handle_upgrade(self.core_id, addr)
        block.state = _S_MODIFIED
        block.dirty = True
        block.version = self._mint_version(addr)
        self._lease.pop(addr, None)
        return latency

    def _miss(self, addr: int, is_write: bool) -> int:
        cell = self._c_l1_misses
        if cell is None:
            cell = self._c_l1_misses = self.stats.counter("l1_misses")
        cell.value += 1
        core_id = self.core_id
        l1 = self.l1
        victim = l1.peek_fill_victim(addr)
        if victim is not None:
            removed = l1.invalidate(victim.addr)
            assert removed is not None
            self._lease.pop(removed.addr, None)
            self._handle_put(
                core_id, removed.addr, bool(removed.dirty), removed.version
            )
        home_tile = addr & self._bank_mask
        latency = self._lat_l1_hit
        latency += self.network.send(core_id, home_tile, MessageClass.REQUEST)
        grant_latency, state, version, lease_end = self._serve_miss(
            core_id, addr, is_write
        )
        latency += grant_latency
        filled = l1.fill(addr, state, version)
        if state == _S_SHARED:
            self._lease[addr] = lease_end
        if is_write:
            if state != _S_MODIFIED:  # pragma: no cover
                raise ProtocolError(f"write miss granted {MesiState(state)}")
            filled.version = self._mint_version(addr)
        return latency


# -- invariants ---------------------------------------------------------------


def check_tardis_invariants(system) -> None:
    """Tardis invariant suite (replaces the MESI one for this backend).

    The standard suite cannot apply: SWMR is deliberately violated (an
    exclusive writer coexists with leased readers), leased S copies are
    legally stale and legally non-inclusive.  What must still hold:

    * at most one M/E copy per block, and it holds the latest version,
      is LLC-resident, and matches the entry's owner pointer;
    * every S copy has a lease record at its controller and never holds a
      version newer than the latest;
    * ``wts <= rts`` for every entry, and the entry set is exactly the
      LLC-resident set;
    * the latest version is recoverable: the dirty M copy, else the LLC
      copy, else memory.
    """
    home = system.home
    llc = system.llc
    directory = system.directory
    latest = home.latest_version

    entry_addrs = {entry.addr for entry in directory.iter_entries()}
    llc_addrs = {block.addr for block in llc.iter_blocks()}
    if entry_addrs != llc_addrs:
        extra = sorted(entry_addrs - llc_addrs) + sorted(llc_addrs - entry_addrs)
        raise InvariantViolation(
            f"timestamp entries desynced from LLC residency: {extra[:4]}"
        )

    for entry in directory.iter_entries():
        if entry.wts > entry.rts:
            raise InvariantViolation(
                f"block {entry.addr:#x}: wts {entry.wts} > rts {entry.rts}"
            )

    exclusive_holder: Dict[int, int] = {}
    for core, l1 in enumerate(system.l1s):
        lease_map = home.leases[core]
        for block in l1.iter_blocks():
            addr = block.addr
            state = block.state
            if state == _S_MODIFIED or state == _S_EXCLUSIVE:
                if addr in exclusive_holder:
                    raise InvariantViolation(
                        f"block {addr:#x}: M/E copies at cores "
                        f"{exclusive_holder[addr]} and {core}"
                    )
                exclusive_holder[addr] = core
                if block.version != latest.get(addr, block.version):
                    raise InvariantViolation(
                        f"block {addr:#x}: M/E copy at core {core} holds "
                        f"version {block.version}, latest is {latest.get(addr)}"
                    )
                if addr not in llc_addrs:
                    raise InvariantViolation(
                        f"block {addr:#x}: M/E copy at core {core} is not "
                        "LLC-resident"
                    )
                entry = directory.lookup(addr, touch=False)
                if entry is None or entry.owner != core:
                    raise InvariantViolation(
                        f"block {addr:#x}: M/E copy at core {core} but entry "
                        f"owner is {entry.owner if entry else 'absent'}"
                    )
            elif state == _S_SHARED:
                if addr not in lease_map:
                    raise InvariantViolation(
                        f"block {addr:#x}: S copy at core {core} has no lease"
                    )
                if block.version > latest.get(addr, 0) and addr in latest:
                    raise InvariantViolation(
                        f"block {addr:#x}: S copy at core {core} holds future "
                        f"version {block.version} > latest {latest[addr]}"
                    )
            else:  # pragma: no cover - OWNED never granted by this backend
                raise InvariantViolation(
                    f"block {addr:#x}: unexpected state {MesiState(state)}"
                )

    for addr, version in latest.items():
        holder = exclusive_holder.get(addr)
        if holder is not None:
            continue  # checked above: the M/E copy holds the latest
        llc_block = llc.probe(addr, touch=False)
        if llc_block is not None:
            if llc_block.version != version:
                raise InvariantViolation(
                    f"block {addr:#x}: LLC holds {llc_block.version}, "
                    f"latest is {version} (no exclusive copy on chip)"
                )
        elif home.memory_version.get(addr, 0) != version:
            raise InvariantViolation(
                f"block {addr:#x}: off-chip but memory holds "
                f"{home.memory_version.get(addr, 0)}, latest is {version}"
            )
