"""Shared substrate: addressing, configuration, statistics, RNG, errors."""

from .addr import (
    block_address,
    block_base,
    home_bank,
    is_power_of_two,
    log2_exact,
    rebuild_block_addr,
    set_index,
    stride_hash,
    tag_bits,
)
from .config import (
    CacheConfig,
    DirectoryConfig,
    DirectoryKind,
    EnergyConfig,
    NoCConfig,
    SharerFormat,
    StashEligibility,
    SystemConfig,
    TimingConfig,
)
from .errors import (
    ConfigError,
    DirectoryError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    TraceError,
)
from .rng import DeterministicRng
from .stats import StatGroup, per_kilo, ratio

__all__ = [
    "CacheConfig",
    "ConfigError",
    "DeterministicRng",
    "DirectoryConfig",
    "DirectoryError",
    "DirectoryKind",
    "EnergyConfig",
    "InvariantViolation",
    "NoCConfig",
    "ProtocolError",
    "ReproError",
    "SharerFormat",
    "StashEligibility",
    "StatGroup",
    "SystemConfig",
    "TimingConfig",
    "TraceError",
    "block_address",
    "block_base",
    "home_bank",
    "is_power_of_two",
    "log2_exact",
    "per_kilo",
    "ratio",
    "rebuild_block_addr",
    "set_index",
    "stride_hash",
    "tag_bits",
]
