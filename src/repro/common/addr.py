"""Block-address arithmetic shared by every cache-like structure.

Throughout the library, memory is addressed at *byte* granularity in traces
and at *block* granularity everywhere else.  A ``block address`` is the byte
address with the block-offset bits stripped (i.e. ``byte_addr >>
log2(block_bytes)``), so two byte addresses in the same cache line map to the
same block address.  All caches, directories and the LLC key their state by
block address.

The helpers here are deliberately tiny, pure functions: they are on the
hottest path of the simulator, and keeping them free of object state lets
both the caches and the tests use the same arithmetic.
"""

from __future__ import annotations

from .errors import ConfigError


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of ``value``, requiring it to be an exact power of two.

    Raises:
        ConfigError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ConfigError(f"expected a power of two, got {value}")
    return value.bit_length() - 1


def block_address(byte_addr: int, block_bytes: int) -> int:
    """Convert a byte address to a block address."""
    return byte_addr >> log2_exact(block_bytes)


def block_base(byte_addr: int, block_bytes: int) -> int:
    """Return the first byte address of the block containing ``byte_addr``."""
    return byte_addr & ~(block_bytes - 1)


def set_index(block_addr: int, num_sets: int) -> int:
    """Map a block address onto a set index by modulo (power-of-two sets)."""
    return block_addr & (num_sets - 1)


def tag_bits(block_addr: int, num_sets: int) -> int:
    """Return the tag portion of a block address for ``num_sets`` sets."""
    return block_addr >> log2_exact(num_sets)


def rebuild_block_addr(tag: int, index: int, num_sets: int) -> int:
    """Inverse of (:func:`set_index`, :func:`tag_bits`)."""
    return (tag << log2_exact(num_sets)) | index


def home_bank(block_addr: int, num_banks: int) -> int:
    """Static block-interleaved home-bank mapping used by the LLC/directory.

    Low-order block-address bits select the bank, which interleaves
    consecutive blocks across banks — the standard choice for banked shared
    LLCs.
    """
    return block_addr & (num_banks - 1)


def stride_hash(block_addr: int, salt: int) -> int:
    """Cheap deterministic integer hash used by the Cuckoo directory.

    A Fibonacci-style multiplicative hash; ``salt`` selects among independent
    hash functions.  Returns a full-width non-negative integer which callers
    reduce modulo their table size.
    """
    x = (block_addr + salt * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 33
    return x
