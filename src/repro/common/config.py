"""Validated configuration dataclasses for the whole system.

A :class:`SystemConfig` fully determines a simulation: the core count, the
private-cache and LLC geometries, the directory organization and its
provisioning ratio, the NoC, the latency model and the energy model.  Every
config validates itself eagerly (``__post_init__``) so that a bad parameter
fails at construction time with a :class:`~repro.common.errors.ConfigError`,
never mid-simulation.

Directory provisioning follows the paper's convention: the **coverage ratio**
``R`` is the number of directory entries divided by the aggregate number of
private-cache blocks.  ``R = 1`` means one entry per L1 block system-wide
(the "100% provisioned" conventional design); the paper's headline operates
stash at ``R = 1/8``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Optional

from .addr import is_power_of_two
from .errors import ConfigError
from .mesi import CoherenceProtocol


class DirectoryKind(str, Enum):
    """Which directory organization the system instantiates."""

    IDEAL = "ideal"        # infinite duplicate-tag directory (no conflicts)
    SPARSE = "sparse"      # conventional set-associative sparse directory
    CUCKOO = "cuckoo"      # Cuckoo directory baseline (Ferdman et al., HPCA'11)
    STASH = "stash"        # the paper's contribution
    ADAPTIVE_STASH = "adaptive_stash"  # extension: stash with feedback throttling
    SCD = "scd"            # SCD-lite baseline (Sanchez & Kozyrakis, HPCA'12):
                           # fully associative line pool, multi-line sharer sets
    IN_LLC = "in_llc"      # sharer vector embedded in every LLC line (no
                           # conflicts; the storage-hungry design sparse
                           # directories exist to avoid)
    TARDIS = "tardis"      # timestamp coherence (Yu & Devadas, PACT'15):
                           # per-block read/write timestamps + lease-based
                           # self-invalidation; no sharer tracking at all


class MemoryModel(str, Enum):
    """Which main-memory model the system instantiates."""

    FLAT = "flat"    # fixed-latency device (default; enough for trends)
    DRAM = "dram"    # open-page banks with row buffers (see repro.mem.dram)


class SharerFormat(str, Enum):
    """How a directory entry encodes its sharer set (storage model + protocol)."""

    FULL_BIT_VECTOR = "full"       # one bit per core
    COARSE_VECTOR = "coarse"       # one bit per group of cores
    LIMITED_POINTER = "limited"    # a few explicit core pointers + overflow
    HIERARCHICAL = "hier"          # SCD-style two-level: per-cluster pointers
                                   # + sticky whole-cluster overflow (O(sqrt N))


class StashEligibility(str, Enum):
    """Which entries a stash directory may stash instead of invalidating."""

    ANY_PRIVATE = "any_private"    # exactly one sharer, any of M/E/S (paper default)
    EXCLUSIVE_ONLY = "exclusive_only"  # only E/M entries (ablation A1)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache (an L1 or one LLC bank's share).

    Attributes:
        sets: number of sets (power of two).
        ways: associativity.
        block_bytes: line size in bytes (power of two, same system-wide).
        replacement: policy name registered in :mod:`repro.cache.replacement`.
    """

    sets: int
    ways: int
    block_bytes: int = 64
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if not is_power_of_two(self.sets):
            raise ConfigError(f"cache sets must be a power of two, got {self.sets}")
        if self.ways < 1:
            raise ConfigError(f"cache ways must be >= 1, got {self.ways}")
        if not is_power_of_two(self.block_bytes):
            raise ConfigError(f"block_bytes must be a power of two, got {self.block_bytes}")

    @property
    def blocks(self) -> int:
        """Total number of lines this cache can hold."""
        return self.sets * self.ways

    @property
    def capacity_bytes(self) -> int:
        """Data capacity in bytes."""
        return self.blocks * self.block_bytes


@dataclass(frozen=True)
class DirectoryConfig:
    """Directory organization, provisioning and entry format.

    The number of entries is derived from ``coverage_ratio`` at system-build
    time (entries = ratio * cores * l1_blocks) unless ``entries_override``
    pins it explicitly.  ``ways`` applies to sparse/stash;
    ``cuckoo_hashes``/``cuckoo_max_path`` to the cuckoo baseline.
    """

    kind: DirectoryKind = DirectoryKind.STASH
    coverage_ratio: float = 1.0
    ways: int = 8
    entries_override: Optional[int] = None
    sharer_format: SharerFormat = SharerFormat.FULL_BIT_VECTOR
    coarse_group: int = 4            # cores per bit for COARSE_VECTOR
    limited_pointers: int = 4        # pointers for LIMITED_POINTER
    hier_cluster: int = 0            # cores per cluster for HIERARCHICAL
                                     # (0 = auto: ceil(sqrt(num_cores)))
    hier_pointers: int = 2           # per-cluster pointers for HIERARCHICAL
    # Stash-specific knobs (ignored by other kinds).
    stash_eligibility: StashEligibility = StashEligibility.ANY_PRIVATE
    clean_eviction_notification: bool = False  # ablation A2
    # Discovery presence filter (0 = broadcast to everyone, the default).
    # When > 0 (power of two), the home keeps per-core counting filters of
    # that many slots and discovery probes only matching cores (A5).
    discovery_filter_slots: int = 0
    # Tardis-specific knobs (ignored by other kinds).  A read grant leases
    # the block for ``tardis_lease`` op-clock ticks; the expired copy
    # self-invalidates with no message.  ``tardis_ts_bits`` sizes the two
    # per-block timestamps in the storage model.
    tardis_lease: int = 16
    tardis_ts_bits: int = 20

    def __post_init__(self) -> None:
        if self.coverage_ratio <= 0:
            raise ConfigError(f"coverage_ratio must be positive, got {self.coverage_ratio}")
        if self.ways < 1:
            raise ConfigError(f"directory ways must be >= 1, got {self.ways}")
        if self.entries_override is not None and self.entries_override < 1:
            raise ConfigError("entries_override must be >= 1 when given")
        if self.coarse_group < 1:
            raise ConfigError("coarse_group must be >= 1")
        if self.limited_pointers < 1:
            raise ConfigError("limited_pointers must be >= 1")
        if self.hier_cluster < 0:
            raise ConfigError("hier_cluster must be 0 (auto) or >= 1")
        if self.hier_pointers < 1:
            raise ConfigError("hier_pointers must be >= 1")
        if self.discovery_filter_slots < 0 or (
            self.discovery_filter_slots and not is_power_of_two(self.discovery_filter_slots)
        ):
            raise ConfigError(
                "discovery_filter_slots must be 0 or a power of two, got "
                f"{self.discovery_filter_slots}"
            )
        if self.tardis_lease < 1:
            raise ConfigError(f"tardis_lease must be >= 1, got {self.tardis_lease}")
        if self.tardis_ts_bits < 1:
            raise ConfigError(f"tardis_ts_bits must be >= 1, got {self.tardis_ts_bits}")

    def entries_for(self, num_cores: int, l1_blocks: int) -> int:
        """Resolve the entry count for a concrete system.

        Rounded down to a multiple of ``ways`` (at least one full set) so the
        set-associative organizations get an integral number of sets; the set
        count is then rounded down to a power of two for index extraction.
        """
        if self.entries_override is not None:
            raw = self.entries_override
        else:
            raw = int(self.coverage_ratio * num_cores * l1_blocks)
        raw = max(raw, self.ways)
        sets = max(1, raw // self.ways)
        # Round sets down to a power of two (keeps modulo indexing exact).
        sets = 1 << (sets.bit_length() - 1)
        return sets * self.ways


@dataclass(frozen=True)
class NoCConfig:
    """2-D mesh network model.

    One router per core tile; LLC banks and directory banks are co-located
    with tiles.  Latency per message = ``hops * hop_cycles + router_cycles``.
    """

    mesh_width: int = 4
    mesh_height: int = 4
    hop_cycles: int = 2
    router_cycles: int = 1
    track_links: bool = False  # per-link flit attribution (O(hops)/message)

    def __post_init__(self) -> None:
        if self.mesh_width < 1 or self.mesh_height < 1:
            raise ConfigError("mesh dimensions must be >= 1")
        if self.hop_cycles < 0 or self.router_cycles < 0:
            raise ConfigError("NoC latencies must be non-negative")

    @property
    def nodes(self) -> int:
        """Number of mesh tiles."""
        return self.mesh_width * self.mesh_height


@dataclass(frozen=True)
class TimingConfig:
    """First-order latency model (cycles)."""

    l1_hit: int = 2
    l2_hit: int = 8        # private L2 access (only with a private L2)
    llc_access: int = 10
    directory_access: int = 2
    memory_latency: int = 120
    core_fixed_cpi: float = 1.0   # cycles charged per non-memory "work" unit
    # Optional home-bank serialization: each request occupies its home
    # bank's controller for ``home_occupancy`` cycles; concurrent requests
    # to the same bank queue.  Off by default (zero = no contention model).
    home_occupancy: int = 0

    def __post_init__(self) -> None:
        for name in (
            "l1_hit", "l2_hit", "llc_access", "directory_access",
            "memory_latency", "home_occupancy",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.core_fixed_cpi < 0:
            raise ConfigError("core_fixed_cpi must be non-negative")


@dataclass(frozen=True)
class DramConfig:
    """Open-page DRAM timing (cycles) and geometry.

    Defaults sum to roughly the flat model's 120-cycle latency for a
    row-miss access, so switching models preserves the overall scale.
    """

    banks: int = 8
    row_blocks: int = 32          # consecutive blocks per row (2 KiB rows)
    precharge_cycles: int = 38
    activate_cycles: int = 38
    cas_cycles: int = 38
    transfer_cycles: int = 6

    def __post_init__(self) -> None:
        if self.banks < 1:
            raise ConfigError("DRAM needs at least one bank")
        if self.row_blocks < 1:
            raise ConfigError("DRAM rows must hold at least one block")
        for name in ("precharge_cycles", "activate_cycles", "cas_cycles", "transfer_cycles"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EnergyConfig:
    """Per-event dynamic energies (pJ) and per-entry leakage (pW-cycles).

    Absolute values are representative, not calibrated: the reproduced
    energy claims are *ratios* between organizations (see DESIGN.md).
    """

    l1_access_pj: float = 10.0
    llc_access_pj: float = 50.0
    directory_access_pj: float = 5.0
    memory_access_pj: float = 500.0
    noc_hop_pj: float = 3.0
    directory_leakage_pw_per_entry: float = 0.5

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated CMP.

    The default mirrors the paper's 16-core model with sizes scaled down for
    trace-driven simulation speed (ratios preserved — see DESIGN.md).
    """

    num_cores: int = 16
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(sets=64, ways=4))
    # Optional private L2 per core (inclusive of the L1).  When set, the
    # directory tracks the L2 level — the private domain is L1+L2.
    l2: Optional[CacheConfig] = None
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(sets=1024, ways=16))
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    noc: NoCConfig = field(default_factory=NoCConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    memory_model: MemoryModel = MemoryModel.FLAT
    dram: DramConfig = field(default_factory=DramConfig)
    protocol: CoherenceProtocol = CoherenceProtocol.MESI
    check_invariants: bool = False
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("num_cores must be >= 1")
        if self.noc.nodes < self.num_cores:
            raise ConfigError(
                f"mesh has {self.noc.nodes} tiles but system has {self.num_cores} cores"
            )
        if self.l1.block_bytes != self.llc.block_bytes:
            raise ConfigError("L1 and LLC must share one block size")
        if self.l2 is not None:
            if self.l2.block_bytes != self.l1.block_bytes:
                raise ConfigError("private L2 must share the L1 block size")
            if self.l2.blocks < self.l1.blocks:
                raise ConfigError(
                    "inclusive private L2 must be at least as large as the L1"
                )
        # Note: the LLC may be configured smaller than the aggregate L1s;
        # inclusion is enforced dynamically by back-invalidation, so such a
        # system is functional (useful in tests) though unrealistic.

    @property
    def block_bytes(self) -> int:
        """System-wide cache-line size."""
        return self.l1.block_bytes

    @property
    def private_blocks_per_core(self) -> int:
        """Lines one core's private domain can hold (L2 when present)."""
        return self.l2.blocks if self.l2 is not None else self.l1.blocks

    @property
    def directory_entries(self) -> int:
        """Resolved number of directory entries for this system.

        Coverage ratio R is defined against the level the directory tracks:
        the private L2s when present, else the L1s.
        """
        return self.directory.entries_for(self.num_cores, self.private_blocks_per_core)

    def with_directory(self, **changes) -> "SystemConfig":
        """A copy with directory fields replaced (sweep helper)."""
        return replace(self, directory=replace(self.directory, **changes))

    def describe(self) -> Dict[str, str]:
        """Human-readable key/value summary (used by the T1 config table)."""
        return {
            "cores": str(self.num_cores),
            "block size": f"{self.block_bytes} B",
            "L1 (per core)": (
                f"{self.l1.capacity_bytes // 1024} KiB, {self.l1.ways}-way, "
                f"{self.l1.sets} sets, {self.l1.replacement}"
            ),
            "L2 (per core)": (
                "none"
                if self.l2 is None
                else f"{self.l2.capacity_bytes // 1024} KiB, {self.l2.ways}-way, "
                f"{self.l2.sets} sets, {self.l2.replacement}"
            ),
            "LLC (shared)": (
                f"{self.llc.capacity_bytes // 1024} KiB, {self.llc.ways}-way, "
                f"{self.llc.sets} sets, {self.llc.replacement}"
            ),
            "directory": (
                f"{self.directory.kind.value}, R={self.directory.coverage_ratio:g}, "
                f"{self.directory.ways}-way, {self.directory_entries} entries, "
                f"format={self.directory.sharer_format.value}"
            ),
            "NoC": (
                f"{self.noc.mesh_width}x{self.noc.mesh_height} mesh, "
                f"{self.noc.hop_cycles} cyc/hop"
            ),
            "memory": f"{self.timing.memory_latency} cycles",
        }
