"""Exception hierarchy for the stash-directory reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still being able to distinguish configuration mistakes from protocol
bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent.

    Raised during :meth:`validate` of the config dataclasses, always before
    any simulation state is constructed.
    """


class ProtocolError(ReproError):
    """The coherence protocol reached a state it should never reach.

    This indicates a bug in the protocol engine (or a violated precondition),
    not a user error.  The invariant checkers raise it when a coherence
    invariant is broken.
    """


class InvariantViolation(ProtocolError):
    """A checked coherence invariant does not hold.

    Carries a human-readable description of which invariant failed and the
    block address involved, so test failures point straight at the bug.
    """


class TraceError(ReproError):
    """A trace record or trace file is malformed."""


class DirectoryError(ReproError):
    """A directory organization was used in an unsupported way.

    For example: allocating an entry for a block that is already tracked, or
    freeing an entry that does not exist.
    """
