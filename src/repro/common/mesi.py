"""Coherence states (MESI, plus MOESI's Owned) and small predicates.

The protocol engine uses plain :class:`enum.IntEnum` members so states can be
stored directly in :class:`~repro.cache.block.CacheBlock.state` (an int slot)
without boxing overhead on the hot path.

The OWNED state only arises when the system runs the MOESI protocol
(:class:`CoherenceProtocol.MOESI`): a dirty line whose owner services other
readers instead of writing back to the LLC.
"""

from __future__ import annotations

from enum import Enum, IntEnum


class CoherenceProtocol(str, Enum):
    """Which stable-state protocol the private caches run."""

    MESI = "mesi"      # the paper's protocol (default)
    MOESI = "moesi"    # adds Owned: dirty sharing, owner-supplied data


class MesiState(IntEnum):
    """Stable states of a line in a private cache.

    The trace-driven engine processes each memory operation atomically, so
    transient states never need to be materialized; every private line is
    always in one of these stable states (OWNED only under MOESI).
    """

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3
    OWNED = 4


def can_read(state: MesiState) -> bool:
    """May a core read a line in this state without a coherence action?"""
    return state in (
        MesiState.SHARED,
        MesiState.EXCLUSIVE,
        MesiState.MODIFIED,
        MesiState.OWNED,
    )


def can_write(state: MesiState) -> bool:
    """May a core write a line in this state without a coherence action?

    E allows a silent upgrade to M, so it counts as writable: the write
    itself needs no protocol message.
    """
    return state in (MesiState.EXCLUSIVE, MesiState.MODIFIED)


def is_exclusive_class(state: MesiState) -> bool:
    """True for states that guarantee no other cache holds the line (E/M)."""
    return state in (MesiState.EXCLUSIVE, MesiState.MODIFIED)


class LlcState(IntEnum):
    """Validity of a line in the shared LLC (data home)."""

    INVALID = 0
    VALID = 1
