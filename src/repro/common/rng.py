"""Deterministic random-number utilities.

Every stochastic component in the library (workload generators, the Random
replacement policy) draws from a :class:`DeterministicRng` seeded explicitly,
so a simulation is reproducible bit-for-bit from its configuration.  Nothing
in the library ever touches the global :mod:`random` state.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with the handful of draws the library needs.

    Thin wrapper over :class:`random.Random` that (a) forces an explicit
    seed, (b) exposes only the operations we use so tests can fake it easily,
    and (c) supports spawning decorrelated child streams for per-core
    workload generators.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        # The underlying Random is created on first draw: system construction
        # spawns one stream per cache/directory set, and most of them (every
        # LRU set, for instance) never draw a number.  Seeding thousands of
        # Mersenne Twister states up front is pure overhead.
        self._rng: random.Random | None = None

    def _materialize(self) -> random.Random:
        rng = random.Random(self._seed)
        self._rng = rng
        return rng

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    def spawn(self, stream_id: int) -> "DeterministicRng":
        """Create an independent child stream.

        Child streams derived from the same (seed, stream_id) pair are
        identical across runs; different stream ids give decorrelated
        sequences.  Used to give each simulated core its own stream.
        """
        return DeterministicRng((self._seed * 1_000_003 + stream_id) & 0x7FFFFFFFFFFFFFFF)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        return (self._rng or self._materialize()).randint(lo, hi)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return (self._rng or self._materialize()).random()

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        return (self._rng or self._materialize()).choice(items)

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        (self._rng or self._materialize()).shuffle(items)

    def zipf_index(self, n: int, alpha: float) -> int:
        """Draw an index in [0, n) with Zipf(alpha) popularity.

        Uses inverse-CDF sampling over a lazily cached table, which is exact
        and fast enough for trace generation.  ``alpha`` = 0 degenerates to
        uniform.
        """
        if alpha <= 0.0:
            return (self._rng or self._materialize()).randrange(n)
        key = (n, alpha)
        table = _ZIPF_CDF_CACHE.get(key)
        if table is None:
            weights = [1.0 / (i + 1) ** alpha for i in range(n)]
            total = sum(weights)
            acc = 0.0
            table = []
            for w in weights:
                acc += w / total
                table.append(acc)
            table[-1] = 1.0
            _ZIPF_CDF_CACHE[key] = table
        u = (self._rng or self._materialize()).random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if table[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo


_ZIPF_CDF_CACHE: dict = {}
