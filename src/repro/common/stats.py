"""Hierarchical statistics collection.

Every component of the simulator (caches, directories, NoC, protocol engine)
owns a :class:`StatGroup` and increments named counters on it.  Groups nest,
so a finished simulation exposes one tree such as::

    system
      l1.0          hits=..., misses=...
      llc           hits=..., misses=..., stash_bits_set=...
      directory     allocs=..., stash_evictions=..., inval_evictions=...
      noc           msgs.request=..., hops.request=...

Counters are created on first use, which keeps instrumentation code free of
declarations, and :meth:`StatGroup.to_dict` flattens the tree for reporting,
assertions in tests, and the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class StatGroup:
    """A named bag of counters with nested child groups.

    Counters are floats internally so they can also hold accumulated
    latencies and derived averages, but integer increments stay exact.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, float] = {}
        self._children: Dict[str, "StatGroup"] = {}

    # -- counter operations -------------------------------------------------

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Add ``amount`` to ``counter``, creating it at zero if absent."""
        self._counters[counter] = self._counters.get(counter, 0.0) + amount

    def set(self, counter: str, value: float) -> None:
        """Set ``counter`` to an absolute value (for gauges like sizes)."""
        self._counters[counter] = value

    def get(self, counter: str) -> float:
        """Read a counter; absent counters read as zero."""
        return self._counters.get(counter, 0.0)

    def counters(self) -> Dict[str, float]:
        """A copy of this group's own (non-nested) counters."""
        return dict(self._counters)

    # -- hierarchy -----------------------------------------------------------

    def child(self, name: str) -> "StatGroup":
        """Return the child group ``name``, creating it if needed."""
        group = self._children.get(name)
        if group is None:
            group = StatGroup(name)
            self._children[name] = group
        return group

    def children(self) -> Dict[str, "StatGroup"]:
        """A copy of the child-group mapping."""
        return dict(self._children)

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "StatGroup") -> None:
        """Accumulate ``other``'s counters (recursively) into this group.

        Used to aggregate per-core groups (e.g. all L1s) into one summary.
        """
        for counter, value in other._counters.items():
            self.add(counter, value)
        for name, group in other._children.items():
            self.child(name).merge(group)

    def to_dict(self, prefix: str = "") -> Dict[str, float]:
        """Flatten the tree to ``{"group.sub.counter": value}``."""
        flat: Dict[str, float] = {}
        base = f"{prefix}{self.name}" if prefix or self.name else self.name
        for counter, value in sorted(self._counters.items()):
            key = f"{base}.{counter}" if base else counter
            flat[key] = value
        for name in sorted(self._children):
            flat.update(self._children[name].to_dict(prefix=f"{base}." if base else ""))
        return flat

    def walk(self) -> Iterator[Tuple[str, str, float]]:
        """Yield ``(group_path, counter, value)`` in deterministic order."""
        for key, value in self.to_dict().items():
            path, _, counter = key.rpartition(".")
            yield path, counter, value

    def total(self, counter: str) -> float:
        """Sum ``counter`` over this group and all descendants."""
        result = self.get(counter)
        for group in self._children.values():
            result += group.total(counter)
        return result

    def reset(self) -> None:
        """Zero every counter in this group and all descendants."""
        self._counters.clear()
        for group in self._children.values():
            group.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatGroup({self.name!r}, counters={len(self._counters)}, children={len(self._children)})"


def ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Safe division used all over the analysis code."""
    if denominator == 0:
        return default
    return numerator / denominator


def per_kilo(count: float, base: float) -> float:
    """Events per 1000 of ``base`` (the paper's 'per 1k accesses' metric)."""
    return ratio(count * 1000.0, base)
