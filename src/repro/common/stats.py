"""Hierarchical statistics collection.

Every component of the simulator (caches, directories, NoC, protocol engine)
owns a :class:`StatGroup` and increments named counters on it.  Groups nest,
so a finished simulation exposes one tree such as::

    system
      l1.0          hits=..., misses=...
      llc           hits=..., misses=..., stash_bits_set=...
      directory     allocs=..., stash_evictions=..., inval_evictions=...
      noc           msgs.request=..., hops.request=...

Counters are created on first use, which keeps instrumentation code free of
declarations, and :meth:`StatGroup.to_dict` flattens the tree for reporting,
assertions in tests, and the benchmark harness.

Hot-path increments go through **bound counters**: :meth:`StatGroup.counter`
returns the mutable :class:`StatCounter` cell backing one name, so code that
fires an event millions of times does ``cell.value += 1`` — one attribute
add — instead of a string-keyed dict get/set per event.  The cell *is* the
storage: ``add``/``get``/``to_dict`` observe bound increments immediately,
and a handle stays valid across :meth:`StatGroup.reset` (the cell is zeroed
in place, so a bound counter remains materialized at 0.0 after a reset while
never-bound counters disappear exactly as before).
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple


class StatCounter:
    """The mutable cell backing one counter: mutate ``value`` directly."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def add(self, amount: float = 1.0) -> None:
        """Add ``amount`` (hot code inlines ``cell.value += amount``)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatCounter({self.value!r})"


class StatGroup:
    """A named bag of counters with nested child groups.

    Counters are floats internally so they can also hold accumulated
    latencies and derived averages, but integer increments stay exact.
    """

    __slots__ = ("name", "_cells", "_bound", "_children")

    def __init__(self, name: str) -> None:
        self.name = name
        self._cells: Dict[str, StatCounter] = {}
        self._bound: Set[str] = set()
        self._children: Dict[str, "StatGroup"] = {}

    # -- counter operations -------------------------------------------------

    def counter(self, name: str) -> StatCounter:
        """The bound :class:`StatCounter` cell for ``name`` (hot-path handle).

        Creates the counter at zero if absent.  The returned cell survives
        :meth:`reset` (zeroed in place), so components may bind once and
        increment forever.
        """
        cell = self._cells.get(name)
        if cell is None:
            cell = StatCounter()
            self._cells[name] = cell
        self._bound.add(name)
        return cell

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Add ``amount`` to ``counter``, creating it at zero if absent."""
        cell = self._cells.get(counter)
        if cell is None:
            self._cells[counter] = StatCounter(0.0 + amount)
        else:
            cell.value += amount

    def set(self, counter: str, value: float) -> None:
        """Set ``counter`` to an absolute value (for gauges like sizes)."""
        cell = self._cells.get(counter)
        if cell is None:
            self._cells[counter] = StatCounter(value)
        else:
            cell.value = value

    def get(self, counter: str) -> float:
        """Read a counter; absent counters read as zero."""
        cell = self._cells.get(counter)
        return cell.value if cell is not None else 0.0

    def counters(self) -> Dict[str, float]:
        """A copy of this group's own (non-nested) counters."""
        return {name: cell.value for name, cell in self._cells.items()}

    # -- hierarchy -----------------------------------------------------------

    def child(self, name: str) -> "StatGroup":
        """Return the child group ``name``, creating it if needed."""
        group = self._children.get(name)
        if group is None:
            group = StatGroup(name)
            self._children[name] = group
        return group

    def children(self) -> Dict[str, "StatGroup"]:
        """A copy of the child-group mapping."""
        return dict(self._children)

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "StatGroup") -> None:
        """Accumulate ``other``'s counters (recursively) into this group.

        Used to aggregate per-core groups (e.g. all L1s) into one summary.
        """
        for counter, cell in other._cells.items():
            self.add(counter, cell.value)
        for name, group in other._children.items():
            self.child(name).merge(group)

    def to_dict(self, prefix: str = "") -> Dict[str, float]:
        """Flatten the tree to ``{"group.sub.counter": value}``."""
        flat: Dict[str, float] = {}
        base = f"{prefix}{self.name}" if prefix or self.name else self.name
        for counter in sorted(self._cells):
            key = f"{base}.{counter}" if base else counter
            flat[key] = self._cells[counter].value
        for name in sorted(self._children):
            flat.update(self._children[name].to_dict(prefix=f"{base}." if base else ""))
        return flat

    def walk(self) -> Iterator[Tuple[str, str, float]]:
        """Yield ``(group_path, counter, value)`` in deterministic order."""
        for key, value in self.to_dict().items():
            path, _, counter = key.rpartition(".")
            yield path, counter, value

    def total(self, counter: str) -> float:
        """Sum ``counter`` over this group and all descendants."""
        result = self.get(counter)
        for group in self._children.values():
            result += group.total(counter)
        return result

    def reset(self) -> None:
        """Zero every counter in this group and all descendants.

        Counters that were never handed out as bound cells are removed (they
        reappear on their next increment, as before); bound cells are zeroed
        in place so outstanding handles stay live.
        """
        cells = self._cells
        bound = self._bound
        if bound:
            for name in list(cells):
                if name in bound:
                    cells[name].value = 0.0
                else:
                    del cells[name]
        else:
            cells.clear()
        for group in self._children.values():
            group.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatGroup({self.name!r}, counters={len(self._cells)}, children={len(self._children)})"


def ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Safe division used all over the analysis code."""
    if denominator == 0:
        return default
    return numerator / denominator


def per_kilo(count: float, base: float) -> float:
    """Events per 1000 of ``base`` (the paper's 'per 1k accesses' metric)."""
    return ratio(count * 1000.0, base)
