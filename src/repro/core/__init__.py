"""The paper's contribution: stash directory, stash policy, discovery.

This package holds everything specific to the Stash Directory design:

* :class:`StashDirectory` — sparse directory that stashes private entries
  instead of invalidating them;
* :mod:`~repro.core.stash_policy` — the eligibility rule and its ablation;
* :class:`DiscoveryEngine` — the LLC-delegated hidden-copy recovery
  broadcast;
* :mod:`~repro.core.relaxed_inclusion` — the relaxed inclusion property as
  checkable predicates.
"""

from .adaptive import AdaptiveStashDirectory
from .discovery import DiscoveryDemand, DiscoveryEngine, DiscoveryResult
from .filter import PresenceFilter
from .relaxed_inclusion import (
    InclusionReport,
    check_relaxed_inclusion,
    check_strict_inclusion,
)
from .stash_directory import StashDirectory
from .stash_policy import eligible_ways, is_stash_eligible

__all__ = [
    "AdaptiveStashDirectory",
    "DiscoveryDemand",
    "DiscoveryEngine",
    "DiscoveryResult",
    "InclusionReport",
    "PresenceFilter",
    "StashDirectory",
    "check_relaxed_inclusion",
    "check_strict_inclusion",
    "eligible_ways",
    "is_stash_eligible",
]
