"""Adaptive stash throttling — a feedback extension of the stash directory.

Stashing is a bet: the hidden copy will be re-used by its owner (great) or
silently die (a stale stash bit and, eventually, a wasted discovery
broadcast).  On workloads with poor private-block reuse the bet loses
often, and every lost bet is an N-way broadcast.  This extension closes the
loop: the home reports each discovery outcome back to the directory, which
monitors the **false-discovery rate over a sliding window** and suspends
stashing (falling back to conventional invalidating evictions) while the
rate is above a threshold; after a cool-off period it re-enables stashing
on probation.

This is the kind of simple set-dueling-style control a follow-on paper
would evaluate; benchmark A4 compares it against the always-stash design.
"""

from __future__ import annotations

from typing import Tuple

from ..common.config import DirectoryConfig
from ..common.errors import ConfigError
from ..common.rng import DeterministicRng
from ..common.stats import StatGroup
from ..directory.base import EvictionAction
from ..directory.sparse import _DirSet
from .stash_directory import StashDirectory

#: Discovery outcomes per evaluation window.
DEFAULT_WINDOW = 64

#: Suspend stashing when the windowed false rate exceeds this.
DEFAULT_THRESHOLD = 0.5

#: Conflict evictions to wait, once suspended, before re-enabling on
#: probation.
DEFAULT_COOLOFF = 1024


class AdaptiveStashDirectory(StashDirectory):
    """Stash directory that suspends stashing when discoveries keep missing."""

    def __init__(
        self,
        config: DirectoryConfig,
        num_cores: int,
        entries: int,
        rng: DeterministicRng,
        stats: StatGroup,
        window: int = DEFAULT_WINDOW,
        threshold: float = DEFAULT_THRESHOLD,
        cooloff: int = DEFAULT_COOLOFF,
    ) -> None:
        super().__init__(config, num_cores, entries, rng, stats)
        if window < 1:
            raise ConfigError("adaptive window must be >= 1")
        if not 0.0 <= threshold <= 1.0:
            raise ConfigError("adaptive threshold must be in [0, 1]")
        if cooloff < 1:
            raise ConfigError("adaptive cooloff must be >= 1")
        self.window = window
        self.threshold = threshold
        self.cooloff = cooloff
        self.stash_enabled = True
        self._window_total = 0
        self._window_false = 0
        self._cooloff_left = 0

    # -- feedback from the home controller ---------------------------------------

    def note_discovery(self, found: bool) -> None:
        """Record one discovery outcome (called by the home controller)."""
        self._window_total += 1
        self._window_false += not found
        if self._window_total < self.window:
            return
        false_rate = self._window_false / self._window_total
        self._window_total = 0
        self._window_false = 0
        if self.stash_enabled and false_rate > self.threshold:
            self.stash_enabled = False
            self._cooloff_left = self.cooloff
            self.stats.add("throttle_suspensions")

    # -- victim policy ---------------------------------------------------------------

    def choose_victim(self, dirset: _DirSet) -> Tuple[int, EvictionAction]:
        if not self.stash_enabled:
            self._cooloff_left -= 1
            if self._cooloff_left <= 0:
                # Probation: resume stashing and re-measure.
                self.stash_enabled = True
                self.stats.add("throttle_probations")
            else:
                self.stats.add("throttled_evictions")
                return dirset.policy.victim(), EvictionAction.INVALIDATE
        return super().choose_victim(dirset)
