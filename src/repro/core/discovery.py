"""LLC-delegated discovery of hidden blocks.

When the stash directory drops an entry, the block's cached copy becomes
*hidden*: resident in exactly one private cache but untracked.  The LLC line
carries a **stash bit** marking that possibility.  Discovery is the recovery
mechanism: on a directory miss for a stash-bit line (or when the LLC must
evict such a line), the home broadcasts a probe to every private cache; the
hider — if one still exists — answers with its copy's state (and data, if
dirty), and the home rebuilds precise tracking.

A broadcast that finds nobody is a **false discovery**: the hider evicted
its clean copy silently after the stash, leaving the stash bit stale.  False
discoveries cost probe/reply traffic but no correctness; the engine counts
them separately because the paper's overhead argument rests on their rarity,
and ablation A2 (explicit clean-eviction notifications) eliminates them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from ..cache.l1 import L1Cache
from ..common.mesi import MesiState
from ..common.errors import ProtocolError
from ..common.stats import StatGroup
from ..noc.network import Network
from ..noc.traffic import MessageClass


class DiscoveryDemand(Enum):
    """Why the discovery runs — determines what happens to the hider's copy."""

    READ = "read"    # requester wants S: hider downgrades to SHARED
    WRITE = "write"  # requester wants M: hider invalidates
    EVICT = "evict"  # LLC eviction / back-invalidation: hider invalidates


@dataclass
class DiscoveryResult:
    """Outcome of one discovery broadcast."""

    hider: Optional[int]          # core that held the hidden copy, or None
    hider_state: MesiState        # its state *before* the action (INVALID if none)
    dirty_version: Optional[int]  # version of dirty data returned, if any
    latency: int                  # round-trip cycles (probes fly in parallel)
    fanout: int                   # number of cores probed

    @property
    def found(self) -> bool:
        """Did the broadcast locate a hidden copy?"""
        return self.hider is not None


class DiscoveryEngine:
    """Executes discovery broadcasts on behalf of LLC home banks."""

    def __init__(self, network: Network, l1s: List[L1Cache], stats: StatGroup) -> None:
        self._network = network
        self._l1s = l1s
        self._stats = stats

    def discover(
        self,
        home_tile: int,
        block_addr: int,
        demand: DiscoveryDemand,
        exclude_core: Optional[int] = None,
        candidates: Optional[List[int]] = None,
    ) -> DiscoveryResult:
        """Probe cores for a hidden copy.

        By default every core except ``exclude_core`` is probed.  With a
        presence filter enabled the home passes ``candidates`` — a
        *guaranteed superset* of the possible holders (already excluding
        ``exclude_core``) — and only those cores are probed.

        Relaxed inclusion guarantees at most one hider; finding two is a
        protocol bug and raises :class:`ProtocolError`.

        The hider's line is downgraded (READ) or invalidated (WRITE/EVICT)
        as part of its reply, and dirty data rides back with the reply (the
        extra data transfer is accounted as a writeback message).
        """
        if candidates is not None:
            probe_targets = candidates
        else:
            probe_targets = [
                l1.core_id for l1 in self._l1s if l1.core_id != exclude_core
            ]
        latency, fanout = self._network.broadcast(
            home_tile,
            probe_targets,
            MessageClass.DISCOVERY_PROBE,
            MessageClass.DISCOVERY_REPLY,
        )
        self._stats.add("broadcasts")
        self._stats.add("probes_sent", fanout)

        hider: Optional[int] = None
        hider_state = MesiState.INVALID
        dirty_version: Optional[int] = None
        for core in probe_targets:
            l1 = self._l1s[core]
            block = l1.probe(block_addr, touch=False)
            if block is None:
                continue
            if hider is not None:
                raise ProtocolError(
                    f"two hidden copies of {block_addr:#x} (cores {hider} and {core}): "
                    "relaxed inclusion violated"
                )
            hider = core
            hider_state = MesiState(block.state)
            was_dirty = bool(block.dirty)
            version = block.version
            if demand is DiscoveryDemand.READ:
                l1.downgrade_to_shared(block_addr)
            else:
                l1.invalidate(block_addr)
            if was_dirty:
                dirty_version = version
                # Dirty data rides home with the reply: account the payload.
                self._network.send(core, home_tile, MessageClass.WRITEBACK)

        if hider is None:
            self._stats.add("false_discoveries")
        else:
            self._stats.add("successful_discoveries")
        return DiscoveryResult(hider, hider_state, dirty_version, latency, fanout)

    # -- reporting helpers ----------------------------------------------------

    def broadcasts(self) -> float:
        """Total discovery broadcasts issued."""
        return self._stats.get("broadcasts")

    def false_rate(self) -> float:
        """Fraction of broadcasts that found nobody."""
        total = self._stats.get("broadcasts")
        if total == 0:
            return 0.0
        return self._stats.get("false_discoveries") / total
