"""Conservative presence filters: shrink discovery-broadcast fan-out.

A discovery must reach the hidden copy *if one exists*; probing everyone is
always safe but costs 2(N-1) messages.  This extension gives the home a
per-core **counting presence filter** (a 1-hash counting Bloom filter over
block addresses):

* the counter for (core, hash(addr)) is **incremented whenever the
  protocol hands that core a copy** (every L1 fill), and
* **decremented only when the copy provably ceases to exist** — an
  invalidation that found the line, a dirty writeback (PutM), an explicit
  clean-eviction notice, or a discovery that removed it.

Silent clean evictions decrement nothing, so counters only ever
*overcount* — the filter's candidate set is a guaranteed **superset of the
true holders** (the safety property the A5 property tests pin down), and a
discovery probe can skip every core whose counter slot is zero.

Aliasing (two blocks hashing to one slot) also only overcounts.  Hardware
cost: ``slots`` small counters per core at the home — comparable to a
coarse sharer vector, charged in the storage model.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.addr import is_power_of_two, stride_hash
from ..common.errors import ConfigError, ProtocolError
from ..common.stats import StatGroup


class PresenceFilter:
    """Per-core counting filters over block addresses."""

    def __init__(self, num_cores: int, slots: int, stats: StatGroup) -> None:
        if num_cores < 1:
            raise ConfigError("presence filter needs num_cores >= 1")
        if not is_power_of_two(slots):
            raise ConfigError(f"filter slots must be a power of two, got {slots}")
        self.num_cores = num_cores
        self.slots = slots
        self._stats = stats
        self._counts: List[List[int]] = [[0] * slots for _ in range(num_cores)]
        self._mask = slots - 1

    def _slot(self, addr: int) -> int:
        return stride_hash(addr, 0xF17E) & self._mask

    # -- bookkeeping (called by the protocol engine) -----------------------------

    def add(self, core: int, addr: int) -> None:
        """``core`` received a copy of ``addr``."""
        self._counts[core][self._slot(addr)] += 1

    def remove(self, core: int, addr: int) -> None:
        """``core`` provably lost its copy of ``addr``.

        Calls must pair one-to-one with prior grants; a zero counter here
        indicates a protocol bookkeeping bug and raises.
        """
        slot = self._slot(addr)
        if self._counts[core][slot] <= 0:
            raise ProtocolError(
                f"presence filter underflow: core {core}, block {addr:#x}"
            )
        self._counts[core][slot] -= 1

    # -- querying --------------------------------------------------------------------

    def may_hold(self, core: int, addr: int) -> bool:
        """Could ``core`` hold ``addr``?  (False is definitive.)"""
        return self._counts[core][self._slot(addr)] > 0

    def candidates(self, addr: int, exclude_core: Optional[int] = None) -> List[int]:
        """Cores a discovery of ``addr`` must probe (superset of holders)."""
        result = [
            core
            for core in range(self.num_cores)
            if core != exclude_core and self._counts[core][self._slot(addr)] > 0
        ]
        self._stats.add("queries")
        self._stats.add("candidates_returned", len(result))
        skipped = self.num_cores - len(result) - (exclude_core is not None)
        self._stats.add("probes_skipped", max(0, skipped))
        return result

    # -- storage model ------------------------------------------------------------------

    @staticmethod
    def storage_bits(num_cores: int, slots: int, counter_bits: int = 4) -> int:
        """Bits the filters occupy at the home (for the area model)."""
        return num_cores * slots * counter_bits
