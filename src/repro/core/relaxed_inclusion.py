"""The relaxed-inclusion property, as checkable predicates.

Conventional sparse directories maintain **strict inclusion**:

    every block cached in any private cache has a directory entry whose
    believed-holder set contains that cache.

The stash directory relaxes this to:

    every block cached in any private cache is either *tracked* (as above)
    or *hidden*: untracked, resident in the inclusive LLC with the stash
    bit set, and cached by **exactly one** private cache.

These predicates are pure functions over (L1s, LLC, directory) so both the
runtime invariant checker (:mod:`repro.coherence.invariants`) and the tests
use the same definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..cache.l1 import L1Cache
from ..cache.llc import SharedLLC
from ..directory.base import Directory


@dataclass
class InclusionReport:
    """Classification of every privately cached block."""

    tracked: Set[int] = field(default_factory=set)      # block addrs tracked correctly
    hidden: Set[int] = field(default_factory=set)       # legally hidden (stash)
    violations: List[str] = field(default_factory=list)  # human-readable failures

    @property
    def ok(self) -> bool:
        """True when no violations were found."""
        return not self.violations


def _holders_by_block(l1s: List[L1Cache]) -> Dict[int, List[int]]:
    holders: Dict[int, List[int]] = {}
    for l1 in l1s:
        for block in l1.iter_blocks():
            holders.setdefault(block.addr, []).append(l1.core_id)
    return holders


def check_strict_inclusion(
    l1s: List[L1Cache], directory: Directory
) -> InclusionReport:
    """Verify strict inclusion (conventional sparse / cuckoo / ideal)."""
    report = InclusionReport()
    for addr, cores in _holders_by_block(l1s).items():
        entry = directory.lookup(addr, touch=False)
        if entry is None:
            report.violations.append(
                f"block {addr:#x} cached by cores {cores} but untracked"
            )
            continue
        missing = [core for core in cores if core not in entry.believed]
        if missing:
            report.violations.append(
                f"block {addr:#x}: cores {missing} hold it but are not believed holders"
            )
        else:
            report.tracked.add(addr)
    return report


def check_relaxed_inclusion(
    l1s: List[L1Cache], llc: SharedLLC, directory: Directory
) -> InclusionReport:
    """Verify the stash directory's relaxed inclusion."""
    report = InclusionReport()
    for addr, cores in _holders_by_block(l1s).items():
        entry = directory.lookup(addr, touch=False)
        if entry is not None:
            missing = [core for core in cores if core not in entry.believed]
            if missing:
                report.violations.append(
                    f"block {addr:#x}: cores {missing} hold it but are not believed holders"
                )
            else:
                report.tracked.add(addr)
            continue
        # Untracked: must be a legal hidden block.
        if len(cores) > 1:
            report.violations.append(
                f"block {addr:#x} hidden in multiple caches {cores}: "
                "at most one hider is allowed"
            )
            continue
        llc_block = llc.probe(addr, touch=False)
        if llc_block is None:
            report.violations.append(
                f"block {addr:#x} hidden in core {cores[0]} but absent from the "
                "inclusive LLC"
            )
            continue
        if not llc_block.stash:
            report.violations.append(
                f"block {addr:#x} hidden in core {cores[0]} but its LLC stash bit "
                "is clear — discovery could never find it"
            )
            continue
        report.hidden.add(addr)
    return report
