"""The Stash Directory — the paper's contribution.

Structurally identical to the conventional sparse directory (same sets, same
ways, same entry format, same LRU); the entire design difference is the
**victim policy** when a set overflows:

1. If any entry in the set is *stash-eligible* (tracks a private block, see
   :mod:`repro.core.stash_policy`), evict the least-recently-used eligible
   entry with action ``STASH``: the protocol drops it silently and sets the
   LLC stash bit of the victim block.  **No cached copy is invalidated** —
   this is the relaxed-inclusion property.
2. Otherwise (every entry tracks a shared block), fall back to conventional
   behaviour: LRU victim, action ``INVALIDATE``.

Because most tracked blocks are private in practice, case 1 dominates and
the stash directory under heavy conflict pressure behaves like a directory
with far more effective capacity — the paper's headline is matching a
fully-provisioned sparse directory with 1/8 of the entries.
"""

from __future__ import annotations

from typing import Tuple

from ..common.config import DirectoryConfig
from ..common.rng import DeterministicRng
from ..common.stats import StatGroup
from ..directory.base import EvictionAction
from ..directory.sparse import SparseDirectory, _DirSet
from .stash_policy import is_stash_eligible


class StashDirectory(SparseDirectory):
    """Sparse directory with stash-before-invalidate victim selection."""

    def __init__(
        self,
        config: DirectoryConfig,
        num_cores: int,
        entries: int,
        rng: DeterministicRng,
        stats: StatGroup,
    ) -> None:
        super().__init__(config, num_cores, entries, rng, stats)
        self.eligibility = config.stash_eligibility

    def choose_victim(self, dirset: _DirSet) -> Tuple[int, EvictionAction]:
        """Prefer the LRU stash-eligible entry; invalidate only when forced."""
        eligible = [
            way
            for way, entry in enumerate(dirset.entries)
            if entry is not None and is_stash_eligible(entry, self.eligibility)
        ]
        if eligible:
            return dirset.policy.victim(eligible), EvictionAction.STASH
        self.stats.add("forced_invalidations")
        return dirset.policy.victim(), EvictionAction.INVALIDATE

    def obs_gauges(self) -> dict:
        gauges = super().obs_gauges()
        private = 0
        eligible = 0
        for entry in self.iter_entries():
            if entry.is_private():
                private += 1
            if is_stash_eligible(entry, self.eligibility):
                eligible += 1
        gauges["private_entries"] = private
        gauges["stash_eligible_entries"] = eligible
        return gauges
