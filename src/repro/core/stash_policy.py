"""Stash-eligibility policy: which directory entries may be stashed.

The paper's rule: an entry tracking a **private** block — one believed
holder — can be dropped without invalidating, because at most one hidden
copy can exist and the LLC stash bit plus discovery can always find it.
Entries tracking *shared* blocks must still be invalidated on eviction
(multiple hidden copies would make write-permission grants unsafe: discovery
relies on "at most one hider").

Eligibility variants (ablation A1):

* ``ANY_PRIVATE`` — one believed holder, any permission (M/E or lone S).
  This is the paper's design and the default.
* ``EXCLUSIVE_ONLY`` — only entries whose holder has E/M permission.  A lone
  S holder arises when sharers dwindle to one; being stricter here trades
  stash coverage for fewer stale stash bits (a lone-S belief is more likely
  to be stale, since S copies are dropped silently).
"""

from __future__ import annotations

from typing import Iterable, List

from ..common.config import StashEligibility
from ..directory.base import DirectoryEntry


def is_stash_eligible(entry: DirectoryEntry, eligibility: StashEligibility) -> bool:
    """May this entry be stashed instead of invalidated?"""
    if not entry.is_private():
        return False
    if eligibility is StashEligibility.EXCLUSIVE_ONLY:
        return entry.owner is not None
    return True


def eligible_ways(
    entries: Iterable[DirectoryEntry],
    ways: Iterable[int],
    eligibility: StashEligibility,
) -> List[int]:
    """Filter ``(entries, ways)`` pairs down to the stash-eligible way indices.

    ``entries`` and ``ways`` iterate in lockstep (the directory set's
    occupied slots); the return value feeds the replacement policy's
    restricted victim selection.
    """
    return [
        way
        for entry, way in zip(entries, ways)
        if is_stash_eligible(entry, eligibility)
    ]
