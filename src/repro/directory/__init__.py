"""Directory organizations: interface, baselines and the factory.

The contribution (:class:`~repro.core.StashDirectory`) lives in
:mod:`repro.core`; :func:`make_directory` builds any of the four kinds from
a :class:`~repro.common.config.DirectoryConfig`.
"""

from __future__ import annotations

from ..common.config import DirectoryConfig, DirectoryKind
from ..common.errors import ConfigError
from ..common.rng import DeterministicRng
from ..common.stats import StatGroup
from .base import (
    AllocationResult,
    DirEntryState,
    Directory,
    DirectoryEntry,
    Eviction,
    EvictionAction,
)
from .cuckoo import CuckooDirectory
from .hierarchical import ScdDirectory
from .ideal import IdealDirectory
from .sharers import (
    CoarseVector,
    FullBitVector,
    HierarchicalRep,
    LimitedPointer,
    SharerRep,
    hier_auto_cluster,
    make_sharer_rep,
    sharer_storage_bits,
)
from .sparse import SparseDirectory
from .timestamp import TardisEntry, TimestampDirectory

__all__ = [
    "AllocationResult",
    "CoarseVector",
    "CuckooDirectory",
    "DirEntryState",
    "Directory",
    "DirectoryEntry",
    "Eviction",
    "EvictionAction",
    "FullBitVector",
    "HierarchicalRep",
    "IdealDirectory",
    "LimitedPointer",
    "SharerRep",
    "ScdDirectory",
    "SparseDirectory",
    "TardisEntry",
    "TimestampDirectory",
    "hier_auto_cluster",
    "make_directory",
    "make_sharer_rep",
    "sharer_storage_bits",
]


def make_directory(
    config: DirectoryConfig,
    num_cores: int,
    entries: int,
    rng: DeterministicRng,
    stats: StatGroup,
) -> Directory:
    """Instantiate the directory organization ``config.kind`` requests.

    ``entries`` is the resolved capacity (see
    :meth:`~repro.common.config.DirectoryConfig.entries_for`); the IDEAL
    kind ignores it.
    """
    if config.kind is DirectoryKind.IDEAL:
        return IdealDirectory(config, num_cores, stats)
    if config.kind is DirectoryKind.IN_LLC:
        # Behaviourally an unbounded directory: entries exist exactly for
        # LLC-resident blocks (the protocol deallocates on LLC eviction),
        # so embedding a sharer vector in every LLC line never conflicts.
        # The difference from IDEAL is purely the storage model (see
        # repro.energy.area).
        return IdealDirectory(config, num_cores, stats)
    if config.kind is DirectoryKind.TARDIS:
        # No sharer tracking: per-block timestamps living in the LLC tag
        # array.  Entries exist exactly for LLC-resident blocks, like
        # IN_LLC; the protocol logic lives in repro.coherence.tardis.
        return TimestampDirectory(config, num_cores, stats)
    if config.kind is DirectoryKind.SPARSE:
        return SparseDirectory(config, num_cores, entries, rng, stats)
    if config.kind is DirectoryKind.CUCKOO:
        return CuckooDirectory(config, num_cores, entries, rng, stats)
    if config.kind is DirectoryKind.SCD:
        return ScdDirectory(config, num_cores, entries, rng, stats)
    if config.kind is DirectoryKind.STASH:
        from ..core.stash_directory import StashDirectory

        return StashDirectory(config, num_cores, entries, rng, stats)
    if config.kind is DirectoryKind.ADAPTIVE_STASH:
        from ..core.adaptive import AdaptiveStashDirectory

        return AdaptiveStashDirectory(config, num_cores, entries, rng, stats)
    raise ConfigError(f"unknown directory kind {config.kind!r}")  # pragma: no cover
