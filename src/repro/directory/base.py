"""Directory interface and the per-block entry record.

Terminology (used consistently across the library):

* **believed holders** — the set of cores the directory *thinks* hold the
  block.  Because clean L1 evictions are silent, this can be a superset of
  the true holders; it is exactly what precise hardware (a full bit vector)
  would popcount.  The paper's *private block* test — "this entry tracks
  exactly one sharer" — is a test on the believed set.
* **targets** — the cores an invalidation must be sent to, derived from the
  entry's hardware sharer representation.  For imprecise formats this is a
  superset of the believed holders.

So: ``true holders ⊆ believed holders ⊆ targets``.

A directory organization implements :class:`Directory`.  Allocation returns
an :class:`AllocationResult`; when the organization had to displace an
existing entry, the result carries an :class:`Eviction` whose ``action``
tells the protocol engine what the displacement means:

* ``EvictionAction.INVALIDATE`` — conventional behaviour: every cached copy
  of the victim block must be invalidated to preserve strict inclusion.
* ``EvictionAction.STASH`` — the stash directory's relaxed behaviour: the
  entry is dropped silently and the protocol must set the victim block's LLC
  stash bit; the cached copy survives, hidden.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional, Set

from ..common.config import DirectoryConfig
from ..common.errors import DirectoryError
from .sharers import SharerRep


class DirEntryState(Enum):
    """Coarse directory-entry state: who may have write permission."""

    EXCLUSIVE = "exclusive"  # one core granted E/M; ``owner`` names it
    SHARED = "shared"        # one or more cores with read permission


class DirectoryEntry:
    """Tracking record for one block."""

    __slots__ = ("addr", "owner", "believed", "rep")

    def __init__(self, addr: int, rep: SharerRep) -> None:
        self.addr = addr
        self.owner: Optional[int] = None
        self.believed: Set[int] = set()
        self.rep = rep

    # -- transitions ----------------------------------------------------------

    def grant_exclusive(self, core: int) -> None:
        """The block was handed to ``core`` in E/M; nobody else has a copy."""
        self.believed = {core}
        self.rep.clear()
        self.rep.add(core)
        self.owner = core

    def add_sharer(self, core: int) -> None:
        """``core`` obtained a read copy."""
        self.believed.add(core)
        self.rep.add(core)

    def demote_owner(self) -> None:
        """The exclusive owner was downgraded to a plain sharer."""
        self.owner = None

    def remove_core(self, core: int) -> None:
        """``core`` provably lost its copy (inval ack, PutM, discovery...)."""
        self.believed.discard(core)
        self.rep.remove(core)
        if self.owner == core:
            self.owner = None

    # -- queries ---------------------------------------------------------------

    @property
    def state(self) -> DirEntryState:
        """EXCLUSIVE when an owner pointer is live, else SHARED."""
        return DirEntryState.EXCLUSIVE if self.owner is not None else DirEntryState.SHARED

    def believed_count(self) -> int:
        """Exact count of believed holders (the hardware sharer counter)."""
        return len(self.believed)

    def is_private(self) -> bool:
        """The paper's stash-eligibility core test: exactly one tracked holder."""
        return len(self.believed) == 1

    def is_empty(self) -> bool:
        """No believed holders remain — the entry is dead weight."""
        return not self.believed

    def sole_holder(self) -> int:
        """The single believed holder of a private entry."""
        if len(self.believed) != 1:
            raise DirectoryError(f"entry {self.addr:#x} is not private")
        return next(iter(self.believed))

    def targets(self) -> List[int]:
        """Cores an invalidation of this block must be sent to."""
        return self.rep.targets()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirectoryEntry(addr={self.addr:#x}, owner={self.owner}, "
            f"believed={sorted(self.believed)})"
        )


class EvictionAction(Enum):
    """What a displaced directory entry requires of the protocol."""

    INVALIDATE = "invalidate"
    STASH = "stash"


@dataclass
class Eviction:
    """A displaced entry plus the action it requires."""

    entry: DirectoryEntry
    action: EvictionAction


@dataclass
class AllocationResult:
    """Outcome of :meth:`Directory.allocate`."""

    entry: DirectoryEntry
    eviction: Optional[Eviction] = None


class Directory:
    """Abstract directory organization.

    Concrete organizations: :class:`~repro.directory.ideal.IdealDirectory`,
    :class:`~repro.directory.sparse.SparseDirectory`,
    :class:`~repro.directory.cuckoo.CuckooDirectory`, and the contribution,
    :class:`~repro.core.stash_directory.StashDirectory`.
    """

    def __init__(self, config: DirectoryConfig, num_cores: int, capacity: int) -> None:
        self.config = config
        self.num_cores = num_cores
        self.capacity = capacity

    # -- protocol-facing operations ---------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> Optional[DirectoryEntry]:
        """Entry tracking ``addr`` or None (a *directory miss*)."""
        raise NotImplementedError

    def allocate(self, addr: int) -> AllocationResult:
        """Install a fresh (empty) entry for ``addr``.

        Raises:
            DirectoryError: if ``addr`` is already tracked.
        """
        raise NotImplementedError

    def deallocate(self, addr: int) -> None:
        """Remove the entry for ``addr`` (no-op if absent)."""
        raise NotImplementedError

    # -- inspection ----------------------------------------------------------------

    def occupancy(self) -> int:
        """Number of live entries."""
        raise NotImplementedError

    def iter_entries(self) -> Iterator[DirectoryEntry]:
        """All live entries (deterministic order, for invariant checks)."""
        raise NotImplementedError

    def obs_gauges(self) -> dict:
        """Instantaneous gauges the epoch sampler snapshots (repro.obs).

        Organizations override to add structure-specific gauges (full
        sets, load factor, private-entry population...).  Off the hot
        path: called once per epoch, never per operation.
        """
        occupancy = self.occupancy()
        gauges = {"occupancy": occupancy}
        if self.capacity:
            gauges["utilization"] = occupancy / self.capacity
        return gauges

    def contains(self, addr: int) -> bool:
        """Presence test without touching replacement state."""
        return self.lookup(addr, touch=False) is not None
