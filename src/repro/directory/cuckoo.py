"""Cuckoo directory baseline (Ferdman et al., HPCA 2011).

A d-ary cuckoo hash table: ``d`` independent hash functions each map a block
to one slot in its own sub-table.  On insertion conflict the directory
*relocates* a resident entry to one of its alternative slots, following a
displacement chain up to ``max_path`` steps; only if the chain fails does it
fall back to a conventional invalidating eviction.  Relocation converts most
conflict evictions into extra directory writes, which is why the cuckoo
directory tolerates lower provisioning than a set-associative sparse
directory — but unlike the stash directory it still invalidates whenever it
does run out of room, and every eviction (private or shared) costs cached
copies.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..common.addr import stride_hash
from ..common.config import DirectoryConfig
from ..common.errors import ConfigError, DirectoryError
from ..common.rng import DeterministicRng
from ..common.stats import StatGroup
from .base import (
    AllocationResult,
    Directory,
    DirectoryEntry,
    Eviction,
    EvictionAction,
)
from .sharers import make_sharer_rep

#: Displacement-chain length bound before giving up and evicting.
DEFAULT_MAX_PATH = 8


class CuckooDirectory(Directory):
    """d-ary cuckoo-hashed directory with relocate-before-evict."""

    def __init__(
        self,
        config: DirectoryConfig,
        num_cores: int,
        entries: int,
        rng: DeterministicRng,
        stats: StatGroup,
        max_path: int = DEFAULT_MAX_PATH,
    ) -> None:
        super().__init__(config, num_cores, entries)
        self.d = config.ways  # number of hash functions / sub-tables
        if entries % self.d != 0:
            raise ConfigError(
                f"cuckoo entries ({entries}) must be a multiple of hash ways ({self.d})"
            )
        if max_path < 1:
            raise ConfigError("cuckoo max_path must be >= 1")
        self.slots_per_way = entries // self.d
        self.max_path = max_path
        self.stats = stats
        self._rng = rng
        self._tables: List[List[Optional[DirectoryEntry]]] = [
            [None] * self.slots_per_way for _ in range(self.d)
        ]
        # Candidate slots are recomputed on every lookup/relocation step;
        # workloads reuse addresses heavily, so memoize per address.
        self._slot_cache: dict = {}
        # Position index: addr -> (way, slot, entry).  Lookups and
        # deallocations are O(1) dict probes instead of d-way table scans;
        # the displacement chain keeps it current (placements overwrite,
        # the final eviction pops).
        self._where: dict = {}
        # Displacement-way picks draw one uniform way per chain step; the
        # bound getrandbits plus the rejection loop below reproduce
        # random.Random.randint(0, d-1) bit-for-bit without its three stdlib
        # call frames.  Bound lazily (the underlying Random materializes on
        # first draw, matching DeterministicRng's laziness).
        self._rand_bits = self.d.bit_length()
        self._getrandbits = None
        self._c_hits = None
        self._c_misses = None
        # Validated sharer-rep template; allocations clone it via fresh().
        self._rep_template = make_sharer_rep(
            config.sharer_format,
            num_cores,
            group=config.coarse_group,
            pointers=config.limited_pointers,
            cluster=config.hier_cluster,
            hier_pointers=config.hier_pointers,
        )

    # -- hashing ---------------------------------------------------------------

    def _slots(self, addr: int) -> tuple:
        slots = self._slot_cache.get(addr)
        if slots is None:
            slots = tuple(
                stride_hash(addr, way + 1) % self.slots_per_way
                for way in range(self.d)
            )
            self._slot_cache[addr] = slots
        return slots

    def _slot(self, addr: int, way: int) -> int:
        return self._slots(addr)[way]

    # -- Directory interface ------------------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> Optional[DirectoryEntry]:
        pos = self._where.get(addr)
        if pos is None:
            if touch:
                cell = self._c_misses
                if cell is None:
                    cell = self._c_misses = self.stats.counter("misses")
                cell.value += 1
            return None
        if touch:
            cell = self._c_hits
            if cell is None:
                cell = self._c_hits = self.stats.counter("hits")
            cell.value += 1
        return pos[2]

    def allocate(self, addr: int) -> AllocationResult:
        if addr in self._where:
            raise DirectoryError(f"block {addr:#x} is already tracked")

        entry = DirectoryEntry(addr, self._rep_template.fresh())
        self.stats.add("allocations")

        # The displacement chain is the cuckoo directory's hot loop (several
        # steps per conflicting allocation), so the per-step work is flat:
        # candidate slots are fetched from the memo once per homeless entry
        # and shared by the free-slot scan and the displacement pick (the
        # method-based version recomputed them per candidate way), and the
        # random way draw inlines randint's getrandbits rejection loop.
        tables = self._tables
        where = self._where
        slot_cache = self._slot_cache
        d = self.d
        spw = self.slots_per_way
        rand_bits = self._rand_bits
        getrandbits = self._getrandbits
        if getrandbits is None:
            rng = self._rng
            getrandbits = self._getrandbits = (
                rng._rng or rng._materialize()
            ).getrandbits
        relocations = 0

        homeless = entry
        last_way = -1  # way we just placed into; don't bounce straight back
        for _step in range(self.max_path + 1):
            haddr = homeless.addr
            slots = slot_cache.get(haddr)
            if slots is None:
                slots = tuple(
                    stride_hash(haddr, way + 1) % spw for way in range(d)
                )
                slot_cache[haddr] = slots
            # Any free candidate slot?
            for way in range(d):
                slot = slots[way]
                if tables[way][slot] is None:
                    tables[way][slot] = homeless
                    where[haddr] = (way, slot, homeless)
                    if homeless is not entry:
                        relocations += 1
                    if relocations:
                        self.stats.add("relocations", relocations)
                    return AllocationResult(entry, eviction=None)
            # All candidates full: displace one resident and recurse.  Never
            # displace the entry being inserted (its candidate slots can
            # collide with the homeless entry's), and avoid bouncing the
            # displaced entry straight back into the slot it came from
            # (same preference order as _pick_displacement_way).
            r = getrandbits(rand_bits)
            while r >= d:
                r = getrandbits(rand_bits)
            pick = -1
            fallback = -1
            for offset in range(d):
                way = r + offset
                if way >= d:
                    way -= d
                if tables[way][slots[way]] is entry:
                    continue
                if way == last_way:
                    fallback = way
                    continue
                pick = way
                break
            if pick < 0:
                pick = fallback
            if pick < 0:
                break  # only the new entry's slot remains: stop relocating
            slot = slots[pick]
            displaced = tables[pick][slot]
            tables[pick][slot] = homeless
            where[haddr] = (pick, slot, homeless)
            if homeless is not entry:
                relocations += 1
            homeless = displaced
            last_way = pick

        # Chain exhausted: the still-homeless entry is evicted conventionally.
        if relocations:
            self.stats.add("relocations", relocations)
        where.pop(homeless.addr, None)
        self.stats.add("evictions")
        self.stats.add("evictions_invalidate")
        return AllocationResult(entry, Eviction(homeless, EvictionAction.INVALIDATE))

    def _pick_displacement_way(
        self, homeless: DirectoryEntry, new_entry: DirectoryEntry, last_way: int
    ) -> Optional[int]:
        """Pick which candidate slot of ``homeless`` to displace.

        Preference order: a random way that neither holds ``new_entry`` nor
        is the way we just filled; then any way not holding ``new_entry``;
        ``None`` when every option holds ``new_entry`` (only possible for
        d == 1), which ends the chain with a conventional eviction.
        """
        start = self._rng.randint(0, self.d - 1)
        fallback = None
        for offset in range(self.d):
            way = (start + offset) % self.d
            slot = self._slot(homeless.addr, way)
            occupant = self._tables[way][slot]
            if occupant is new_entry:
                continue
            if way == last_way:
                fallback = way
                continue
            return way
        return fallback

    def deallocate(self, addr: int) -> None:
        pos = self._where.pop(addr, None)
        if pos is not None:
            self._tables[pos[0]][pos[1]] = None
            self.stats.add("deallocations")

    # -- inspection ------------------------------------------------------------------

    def occupancy(self) -> int:
        return sum(
            1 for table in self._tables for entry in table if entry is not None
        )

    def iter_entries(self) -> Iterator[DirectoryEntry]:
        for table in self._tables:
            for entry in table:
                if entry is not None:
                    yield entry
