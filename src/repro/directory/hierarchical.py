"""SCD-lite: a hierarchical-sharer directory baseline.

A simplified model of the Scalable Coherence Directory (Sanchez &
Kozyrakis, HPCA 2012), the other major sparse-directory scalability
proposal of the paper's era.  SCD's two ideas:

1. **ZCache backing** — very high effective associativity, so the
   directory behaves like a fully associative pool of *lines* (we model
   the pool directly and skip the z-cache mechanics; its point is
   precisely that utilization approaches full).
2. **Multi-line sharer representation** — a block with few sharers
   occupies a single limited-pointer line; a widely shared block occupies
   a *root* line plus one *leaf* line per group of cores with a sharer.
   Directory capacity is therefore consumed in proportion to how shared
   each block is, and every line format stays small regardless of core
   count.

Capacity is enforced in **lines**: when the pool is over budget, the
allocator evicts least-recently-used *blocks* (all their lines) with a
conventional invalidation.  Line usage reacts to sharer-set changes
through an entry subclass that reports its line count back to the
directory; enforcement happens at allocation points (a modeling
simplification over SCD's replace-on-leaf-insert, documented in
DESIGN.md).

Positioning vs. the stash directory: SCD stretches a fixed budget further
(no set conflicts, cheap entries), but it keeps **strict inclusion** — when
the budget truly runs out it must invalidate cached blocks, exactly the
cost stashing avoids.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..common.config import DirectoryConfig
from ..common.errors import ConfigError, DirectoryError
from ..common.stats import StatGroup
from .base import (
    AllocationResult,
    Directory,
    DirectoryEntry,
    Eviction,
    EvictionAction,
)
from .sharers import FullBitVector

#: Pointers per single-line (non-hierarchical) entry.
DEFAULT_POINTERS = 2

#: Cores per leaf line in hierarchical mode.
DEFAULT_LEAF_SIZE = 4


class _ScdEntry(DirectoryEntry):
    """Directory entry that reports its line footprint to its directory.

    Tracking precision is a full believed set (SCD is an exact directory);
    what the representation changes is the *line count* the entry charges
    against the pool.
    """

    __slots__ = ("_directory", "_lines")

    def __init__(self, addr: int, num_cores: int, directory: "ScdDirectory") -> None:
        super().__init__(addr, FullBitVector(num_cores))
        self._directory = directory
        self._lines = 1
        directory._total_lines += 1

    # -- line accounting -----------------------------------------------------

    def line_count(self) -> int:
        """Lines this entry currently occupies."""
        return self._lines

    def _recount(self) -> None:
        new = self._directory.lines_for(self.believed)
        if new != self._lines:
            self._directory._total_lines += new - self._lines
            self._lines = new

    def _released(self) -> None:
        """The directory dropped this entry: release its lines."""
        self._directory._total_lines -= self._lines
        self._lines = 0

    # -- mutators (keep the footprint current) ---------------------------------

    def grant_exclusive(self, core: int) -> None:
        super().grant_exclusive(core)
        self._recount()

    def add_sharer(self, core: int) -> None:
        super().add_sharer(core)
        self._recount()

    def remove_core(self, core: int) -> None:
        super().remove_core(core)
        self._recount()


class ScdDirectory(Directory):
    """Fully associative pool of directory lines with multi-line entries."""

    def __init__(
        self,
        config: DirectoryConfig,
        num_cores: int,
        entries: int,
        rng,  # unused; uniform factory signature
        stats: StatGroup,
        pointers: int = DEFAULT_POINTERS,
        leaf_size: int = DEFAULT_LEAF_SIZE,
    ) -> None:
        # ``entries`` is interpreted as the LINE budget: one line per
        # conventional entry keeps provisioning ratios comparable.
        super().__init__(config, num_cores, entries)
        if pointers < 1:
            raise ConfigError("SCD pointers must be >= 1")
        if leaf_size < 1:
            raise ConfigError("SCD leaf size must be >= 1")
        self.pointers = pointers
        self.leaf_size = leaf_size
        self.stats = stats
        self._entries: Dict[int, _ScdEntry] = {}  # insertion order = LRU order
        self._total_lines = 0
        self._c_hits = None
        self._c_misses = None

    # -- line model ----------------------------------------------------------------

    def lines_for(self, believed) -> int:
        """Lines a sharer set occupies: 1, or 1 root + touched leaves."""
        if len(believed) <= self.pointers:
            return 1
        groups = {core // self.leaf_size for core in believed}
        return 1 + len(groups)

    def total_lines(self) -> int:
        """Lines currently charged against the pool."""
        return self._total_lines

    # -- Directory interface ------------------------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> Optional[DirectoryEntry]:
        entries = self._entries
        entry = entries.get(addr)
        if entry is None:
            if touch:
                cell = self._c_misses
                if cell is None:
                    cell = self._c_misses = self.stats.counter("misses")
                cell.value += 1
            return None
        if touch:
            cell = self._c_hits
            if cell is None:
                cell = self._c_hits = self.stats.counter("hits")
            cell.value += 1
            # Move to MRU position (dict preserves insertion order).
            del entries[addr]
            entries[addr] = entry
        return entry

    def allocate(self, addr: int) -> AllocationResult:
        if addr in self._entries:
            raise DirectoryError(f"block {addr:#x} is already tracked")
        self.stats.add("allocations")
        eviction: Optional[Eviction] = None
        # Lazy capacity enforcement: evict the LRU block if the pool is
        # full.  Multi-line growth between allocations can transiently
        # overshoot; it is reclaimed here, one block per allocation.
        if self._total_lines + 1 > self.capacity and self._entries:
            victim_addr = next(iter(self._entries))
            victim = self._entries.pop(victim_addr)
            victim._released()
            eviction = Eviction(victim, EvictionAction.INVALIDATE)
            self.stats.add("evictions")
            self.stats.add("evictions_invalidate")
        entry = _ScdEntry(addr, self.num_cores, self)
        self._entries[addr] = entry
        return AllocationResult(entry, eviction)

    def deallocate(self, addr: int) -> None:
        entry = self._entries.pop(addr, None)
        if entry is not None:
            entry._released()
            self.stats.add("deallocations")

    # -- inspection -----------------------------------------------------------------------

    def occupancy(self) -> int:
        return len(self._entries)

    def iter_entries(self) -> Iterator[DirectoryEntry]:
        yield from self._entries.values()

    def utilization(self) -> float:
        """Fraction of the line budget in use."""
        return self._total_lines / self.capacity if self.capacity else 0.0

    def obs_gauges(self) -> dict:
        gauges = super().obs_gauges()
        gauges["total_lines"] = self._total_lines
        gauges["line_utilization"] = self.utilization()
        return gauges
