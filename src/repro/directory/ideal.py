"""Ideal (unbounded) directory — the performance floor.

Tracks every block with no conflicts and no evictions, like a duplicate-tag
directory of unlimited reach.  The evaluation uses it as the lower bound the
other organizations are normalized against: any slowdown relative to IDEAL
is directory-induced.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..common.config import DirectoryConfig
from ..common.errors import DirectoryError
from ..common.stats import StatGroup
from .base import AllocationResult, Directory, DirectoryEntry
from .sharers import make_sharer_rep


class IdealDirectory(Directory):
    """Hash-map-backed directory with unbounded capacity."""

    def __init__(self, config: DirectoryConfig, num_cores: int, stats: StatGroup) -> None:
        # Capacity is nominal: reported as 0 meaning "unbounded".
        super().__init__(config, num_cores, capacity=0)
        self.stats = stats
        self._entries: Dict[int, DirectoryEntry] = {}
        self._c_hits = None
        self._c_misses = None
        # Validated sharer-rep template; allocations clone it via fresh().
        self._rep_template = make_sharer_rep(
            config.sharer_format,
            num_cores,
            group=config.coarse_group,
            pointers=config.limited_pointers,
            cluster=config.hier_cluster,
            hier_pointers=config.hier_pointers,
        )

    def lookup(self, addr: int, touch: bool = True) -> Optional[DirectoryEntry]:
        entry = self._entries.get(addr)
        if touch:
            if entry is not None:
                cell = self._c_hits
                if cell is None:
                    cell = self._c_hits = self.stats.counter("hits")
            else:
                cell = self._c_misses
                if cell is None:
                    cell = self._c_misses = self.stats.counter("misses")
            cell.value += 1
        return entry

    def allocate(self, addr: int) -> AllocationResult:
        if addr in self._entries:
            raise DirectoryError(f"block {addr:#x} is already tracked")
        entry = DirectoryEntry(addr, self._rep_template.fresh())
        self._entries[addr] = entry
        self.stats.add("allocations")
        return AllocationResult(entry, eviction=None)

    def deallocate(self, addr: int) -> None:
        if self._entries.pop(addr, None) is not None:
            self.stats.add("deallocations")

    def occupancy(self) -> int:
        return len(self._entries)

    def iter_entries(self) -> Iterator[DirectoryEntry]:
        for addr in sorted(self._entries):
            yield self._entries[addr]
