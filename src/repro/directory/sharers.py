"""Sharer-set representations for directory entries.

A directory entry must encode *which* private caches hold the block.  The
paper's storage argument depends on this encoding, and the protocol's
invalidation traffic depends on its precision, so we implement the three
classic formats:

* **Full bit vector** — one presence bit per core; exact.
* **Coarse vector** — one bit per *group* of cores; invalidations go to every
  core of a marked group, so imprecision costs spurious invalidation
  messages (each finds nothing and is acked empty).
* **Limited pointers** — up to *k* explicit core ids; on overflow the entry
  degrades to broadcast-on-invalidate (the classic Dir\\ :sub:`i`\\ B scheme).
* **Hierarchical** — SCD-style two-level encoding for many-core systems:
  cores are grouped into clusters of ``cluster`` cores; each tracked cluster
  holds up to ``pointers`` explicit within-cluster ids and degrades to a
  sticky whole-cluster bit on overflow.  Storage grows with the *cluster
  count* (O(sqrt N) bytes per entry at the auto cluster size), which is what
  keeps 1024-core entries small (see :func:`HierarchicalRep.storage_bits`).

All three keep an exact *sharer counter* alongside (a handful of bits in
hardware, standard practice); the stash directory's private-block test reads
this counter, which is why stashing composes with any format.

``targets()`` returns the set of cores an invalidation must be sent to — an
**over-approximation** of the true holders for the imprecise formats.  The
protocol sends to every target; targets that do not hold the line simply ack
without data, and those messages are what the A3 ablation measures.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..common.config import SharerFormat
from ..common.errors import ConfigError


class SharerRep:
    """Interface every sharer representation implements.

    ``num_cores`` is the system core count; implementations may hold
    format-specific parameters.

    **Validation happens here, once.**  Every concrete constructor routes
    its format parameters through ``__init__`` so a bad value fails with a
    clear error naming the representation, no matter which path built it
    (direct construction, :func:`make_sharer_rep`, or a sweep config).
    ``num_cores`` that is *not* a multiple of the group/cluster size stays
    legal by design — the tail group is simply short, and ``targets()``
    clamps it (pinned by the property tests at N up to 1024, including
    non-power-of-two tails).  ``fresh()`` clones only already-validated
    templates, so it may skip these checks on the allocation path.
    """

    def __init__(self, num_cores: int, **params: int) -> None:
        name = type(self).__name__
        if not isinstance(num_cores, int) or num_cores < 1:
            raise ConfigError(
                f"{name} needs num_cores >= 1, got {num_cores!r}"
            )
        self.num_cores = num_cores
        for key, value in params.items():
            if not isinstance(value, int) or value < 1:
                raise ConfigError(
                    f"{name} needs {key} >= 1, got {value!r} "
                    f"(num_cores={num_cores})"
                )

    def add(self, core: int) -> None:
        """Record that ``core`` obtained a copy."""
        raise NotImplementedError

    def remove(self, core: int) -> None:
        """Record that ``core``'s copy is gone (best effort for imprecise
        formats — they may be unable to clear their encoding)."""
        raise NotImplementedError

    def clear(self) -> None:
        """Forget all sharers."""
        raise NotImplementedError

    def targets(self) -> List[int]:
        """Cores an invalidation must reach (superset of true holders)."""
        raise NotImplementedError

    def fresh(self) -> "SharerRep":
        """A new empty representation with this instance's parameters.

        Directories allocate one representation per entry; cloning from a
        validated template skips the factory dispatch and parameter checks
        of :func:`make_sharer_rep` on the allocation path.
        """
        raise NotImplementedError

    @staticmethod
    def storage_bits(num_cores: int, **params: int) -> int:
        """Bits this format occupies per entry (for the area model)."""
        raise NotImplementedError


class FullBitVector(SharerRep):
    """Exact one-bit-per-core presence vector (an int bitmask)."""

    __slots__ = ("num_cores", "mask")

    def __init__(self, num_cores: int) -> None:
        super().__init__(num_cores)
        self.mask = 0

    def add(self, core: int) -> None:
        self.mask |= 1 << core

    def remove(self, core: int) -> None:
        self.mask &= ~(1 << core)

    def clear(self) -> None:
        self.mask = 0

    def targets(self) -> List[int]:
        result = []
        mask = self.mask
        core = 0
        while mask:
            if mask & 1:
                result.append(core)
            mask >>= 1
            core += 1
        return result

    def fresh(self) -> "FullBitVector":
        rep = FullBitVector.__new__(FullBitVector)
        rep.num_cores = self.num_cores
        rep.mask = 0
        return rep

    @staticmethod
    def storage_bits(num_cores: int, **params: int) -> int:
        return num_cores


class CoarseVector(SharerRep):
    """One bit per group of ``group`` cores.

    ``remove`` cannot clear a group bit (another group member might still
    hold a copy), so bits only accumulate until ``clear``; this is the real
    hardware behaviour and the source of its spurious invalidations.
    """

    __slots__ = ("num_cores", "group", "mask")

    def __init__(self, num_cores: int, group: int = 4) -> None:
        super().__init__(num_cores, group=group)
        self.group = group
        self.mask = 0

    def add(self, core: int) -> None:
        self.mask |= 1 << (core // self.group)

    def remove(self, core: int) -> None:
        # A single departure cannot prove the whole group empty.
        pass

    def clear(self) -> None:
        self.mask = 0

    def targets(self) -> List[int]:
        # The last group is short when num_cores is not a multiple of the
        # group size; the clamp keeps a lit tail-group bit from naming
        # cores that do not exist (which would address past the end of
        # the invalidation fan-out).
        result = []
        num_groups = (self.num_cores + self.group - 1) // self.group
        for g in range(num_groups):
            if self.mask & (1 << g):
                start = g * self.group
                result.extend(range(start, min(start + self.group, self.num_cores)))
        return result

    def fresh(self) -> "CoarseVector":
        rep = CoarseVector.__new__(CoarseVector)
        rep.num_cores = self.num_cores
        rep.group = self.group
        rep.mask = 0
        return rep

    @staticmethod
    def storage_bits(num_cores: int, **params: int) -> int:
        group = params.get("group", 4)
        return (num_cores + group - 1) // group


class LimitedPointer(SharerRep):
    """Up to ``pointers`` explicit core ids, broadcast on overflow."""

    __slots__ = ("num_cores", "pointers", "ids", "overflowed")

    def __init__(self, num_cores: int, pointers: int = 4) -> None:
        super().__init__(num_cores, pointers=pointers)
        self.pointers = pointers
        self.ids: List[int] = []
        self.overflowed = False

    def add(self, core: int) -> None:
        if self.overflowed or core in self.ids:
            return
        if len(self.ids) < self.pointers:
            self.ids.append(core)
        else:
            self.overflowed = True
            self.ids.clear()

    def remove(self, core: int) -> None:
        # After degrade-to-broadcast the pointer list is empty and which
        # cores it named is unrecoverable: a departure must NOT clear the
        # overflow flag (that would silently forget the unnamed sharers)
        # and must not touch the (empty) list.  Precision returns only via
        # clear() when the entry's sharer counter proves nobody is left.
        if not self.overflowed and core in self.ids:
            self.ids.remove(core)

    def clear(self) -> None:
        self.ids.clear()
        self.overflowed = False

    def targets(self) -> List[int]:
        if self.overflowed:
            return list(range(self.num_cores))
        return list(self.ids)

    def fresh(self) -> "LimitedPointer":
        rep = LimitedPointer.__new__(LimitedPointer)
        rep.num_cores = self.num_cores
        rep.pointers = self.pointers
        rep.ids = []
        rep.overflowed = False
        return rep

    @staticmethod
    def storage_bits(num_cores: int, **params: int) -> int:
        pointers = params.get("pointers", 4)
        ptr_bits = max(1, (num_cores - 1).bit_length())
        return pointers * ptr_bits + 1  # +1 overflow bit


def hier_auto_cluster(num_cores: int) -> int:
    """Default hierarchical cluster size: ``ceil(sqrt(num_cores))``.

    Balances the two levels — cluster count and within-cluster pointer
    width both grow as sqrt(N), which is what keeps the per-entry storage
    sub-linear (the SCD scaling argument).
    """
    if num_cores < 1:
        raise ConfigError("hier_auto_cluster needs num_cores >= 1")
    root = 1
    while root * root < num_cores:
        root += 1
    return root


class HierarchicalRep(SharerRep):
    """SCD-style two-level sharer set: per-cluster pointers + overflow bits.

    Cores are grouped into clusters of ``cluster`` consecutive ids.  Each
    *tracked* cluster holds up to ``pointers`` exact within-cluster core
    ids; adding one more overflows that cluster to a **sticky** coarse bit
    (invalidations then target the whole cluster, like one CoarseVector
    group).  Other clusters keep their precision — imprecision is local,
    unlike :class:`LimitedPointer` where one overflow degrades the whole
    entry to a machine-wide broadcast.

    ``remove`` clears a pointer exactly but cannot un-overflow a cluster
    (which cores the cluster named is unrecoverable, same argument as the
    limited-pointer overflow bit); precision returns via ``clear``.

    ``cluster=0`` auto-sizes to ``ceil(sqrt(num_cores))``; the tail cluster
    is short when ``cluster`` does not divide ``num_cores`` and
    ``targets()`` clamps it, exactly like the coarse tail group.
    """

    __slots__ = ("num_cores", "cluster", "pointers", "ids", "ovf")

    def __init__(self, num_cores: int, cluster: int = 0, pointers: int = 2) -> None:
        if cluster == 0:
            cluster = hier_auto_cluster(max(num_cores, 1))
        super().__init__(num_cores, cluster=cluster, pointers=pointers)
        self.cluster = cluster
        self.pointers = pointers
        # cluster index -> exact core ids (absent = untracked or overflowed).
        self.ids: Dict[int, List[int]] = {}
        self.ovf = 0  # bitmask of overflowed clusters

    def add(self, core: int) -> None:
        c = core // self.cluster
        if self.ovf & (1 << c):
            return
        ids = self.ids.get(c)
        if ids is None:
            self.ids[c] = [core]
            return
        if core in ids:
            return
        if len(ids) < self.pointers:
            ids.append(core)
        else:
            self.ovf |= 1 << c
            del self.ids[c]

    def remove(self, core: int) -> None:
        # Exact within a precise cluster; a sticky overflowed cluster
        # cannot prove itself empty (same reasoning as LimitedPointer).
        c = core // self.cluster
        if self.ovf & (1 << c):
            return
        ids = self.ids.get(c)
        if ids is not None and core in ids:
            ids.remove(core)
            if not ids:
                del self.ids[c]

    def clear(self) -> None:
        self.ids.clear()
        self.ovf = 0

    def targets(self) -> List[int]:
        # Ascending cluster order, pointer insertion order within a precise
        # cluster; the tail cluster is clamped to existing cores.
        result: List[int] = []
        cluster = self.cluster
        n = self.num_cores
        num_clusters = (n + cluster - 1) // cluster
        ids = self.ids
        ovf = self.ovf
        for c in range(num_clusters):
            if ovf & (1 << c):
                start = c * cluster
                result.extend(range(start, min(start + cluster, n)))
            else:
                got = ids.get(c)
                if got:
                    result.extend(got)
        return result

    def fresh(self) -> "HierarchicalRep":
        rep = HierarchicalRep.__new__(HierarchicalRep)
        rep.num_cores = self.num_cores
        rep.cluster = self.cluster
        rep.pointers = self.pointers
        rep.ids = {}
        rep.ovf = 0
        return rep

    @staticmethod
    def storage_bits(num_cores: int, **params: int) -> int:
        cluster = params.get("cluster", 0) or hier_auto_cluster(num_cores)
        # ``hier_pointers`` wins when both are given (``pointers`` names the
        # limited-pointer budget in shared parameter dicts).
        pointers = params.get("hier_pointers", params.get("pointers", 2))
        num_clusters = (num_cores + cluster - 1) // cluster
        ptr_bits = max(1, (cluster - 1).bit_length())
        # Per cluster: a valid bit, an overflow bit and the pointer file.
        return num_clusters * (2 + pointers * ptr_bits)


_FACTORIES: Dict[SharerFormat, Callable[..., SharerRep]] = {
    SharerFormat.FULL_BIT_VECTOR: lambda n, **kw: FullBitVector(n),
    SharerFormat.COARSE_VECTOR: lambda n, **kw: CoarseVector(n, kw.get("group", 4)),
    SharerFormat.LIMITED_POINTER: lambda n, **kw: LimitedPointer(n, kw.get("pointers", 4)),
    SharerFormat.HIERARCHICAL: lambda n, **kw: HierarchicalRep(
        n, kw.get("cluster", 0), kw.get("hier_pointers", 2)
    ),
}


def make_sharer_rep(fmt: SharerFormat, num_cores: int, **params: int) -> SharerRep:
    """Instantiate a sharer representation of format ``fmt``."""
    try:
        factory = _FACTORIES[fmt]
    except KeyError:  # pragma: no cover - enum is closed
        raise ConfigError(f"unknown sharer format {fmt!r}") from None
    return factory(num_cores, **params)


def sharer_storage_bits(fmt: SharerFormat, num_cores: int, **params: int) -> int:
    """Bits per entry the format occupies (area model entry point)."""
    cls = {
        SharerFormat.FULL_BIT_VECTOR: FullBitVector,
        SharerFormat.COARSE_VECTOR: CoarseVector,
        SharerFormat.LIMITED_POINTER: LimitedPointer,
        SharerFormat.HIERARCHICAL: HierarchicalRep,
    }[fmt]
    return cls.storage_bits(num_cores, **params)
