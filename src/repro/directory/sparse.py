"""Conventional set-associative sparse directory.

The baseline the paper improves on: a directory *cache* with ``sets x ways``
entries.  When a set is full and a new block needs tracking, the replacement
policy picks a victim entry and — because the conventional design maintains
**strict inclusion** ("every privately cached block is tracked") — the
protocol must invalidate every cached copy of the victim block.  These
directory-induced invalidations are exactly what destroys performance when
the directory is under-provisioned, and what the stash directory removes.

The set/way mechanics mirror :class:`~repro.cache.array.CacheArray` but store
:class:`~repro.directory.base.DirectoryEntry` records; victim choice is
factored into :meth:`choose_victim` so the stash directory can subclass and
redirect it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..cache.replacement import ReplacementPolicy, make_policy
from ..common.addr import log2_exact
from ..common.config import DirectoryConfig
from ..common.errors import ConfigError, DirectoryError
from ..common.rng import DeterministicRng
from ..common.stats import StatGroup
from .base import (
    AllocationResult,
    Directory,
    DirectoryEntry,
    Eviction,
    EvictionAction,
)
from .sharers import make_sharer_rep


class _DirSet:
    """One directory set: way-slots, an address index and replacement state."""

    __slots__ = ("ways", "entries", "by_addr", "policy")

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        self.ways = ways
        self.entries: List[Optional[DirectoryEntry]] = [None] * ways
        self.by_addr: Dict[int, int] = {}
        self.policy = policy

    def find(self, addr: int) -> Optional[int]:
        return self.by_addr.get(addr)

    def free_way(self) -> Optional[int]:
        if len(self.by_addr) == self.ways:
            return None
        for way, entry in enumerate(self.entries):
            if entry is None:
                return way
        raise DirectoryError("directory set bookkeeping out of sync")  # pragma: no cover


class SparseDirectory(Directory):
    """Set-associative sparse directory with invalidate-on-eviction."""

    def __init__(
        self,
        config: DirectoryConfig,
        num_cores: int,
        entries: int,
        rng: DeterministicRng,
        stats: StatGroup,
    ) -> None:
        super().__init__(config, num_cores, entries)
        if entries % config.ways != 0:
            raise ConfigError(
                f"directory entries ({entries}) must be a multiple of ways ({config.ways})"
            )
        self.sets = entries // config.ways
        log2_exact(self.sets)  # indexing requires power-of-two sets
        self._index_mask = self.sets - 1
        self.stats = stats
        self._sets: List[_DirSet] = [
            _DirSet(config.ways, make_policy("lru", config.ways, rng.spawn(i)))
            for i in range(self.sets)
        ]

    # -- internals -------------------------------------------------------------

    def _set_of(self, addr: int) -> _DirSet:
        return self._sets[addr & self._index_mask]

    def _new_entry(self, addr: int) -> DirectoryEntry:
        rep = make_sharer_rep(
            self.config.sharer_format,
            self.num_cores,
            group=self.config.coarse_group,
            pointers=self.config.limited_pointers,
        )
        return DirectoryEntry(addr, rep)

    def choose_victim(self, dirset: _DirSet) -> Tuple[int, EvictionAction]:
        """Pick ``(way, action)`` when the set is full.

        The conventional design always invalidates; the stash directory
        overrides this to prefer stash-eligible entries.
        """
        return dirset.policy.victim(), EvictionAction.INVALIDATE

    # -- Directory interface ------------------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> Optional[DirectoryEntry]:
        dirset = self._set_of(addr)
        way = dirset.find(addr)
        if way is None:
            if touch:
                self.stats.add("misses")
            return None
        if touch:
            dirset.policy.on_access(way)
            self.stats.add("hits")
        return dirset.entries[way]

    def allocate(self, addr: int) -> AllocationResult:
        dirset = self._set_of(addr)
        if dirset.find(addr) is not None:
            raise DirectoryError(f"block {addr:#x} is already tracked")
        way = dirset.free_way()
        eviction: Optional[Eviction] = None
        if way is None:
            way, action = self.choose_victim(dirset)
            victim = dirset.entries[way]
            assert victim is not None
            del dirset.by_addr[victim.addr]
            eviction = Eviction(victim, action)
            self.stats.add("evictions")
            self.stats.add(f"evictions_{action.value}")
        entry = self._new_entry(addr)
        dirset.entries[way] = entry
        dirset.by_addr[addr] = way
        dirset.policy.on_fill(way)
        self.stats.add("allocations")
        return AllocationResult(entry, eviction)

    def deallocate(self, addr: int) -> None:
        dirset = self._set_of(addr)
        way = dirset.find(addr)
        if way is None:
            return
        dirset.entries[way] = None
        del dirset.by_addr[addr]
        self.stats.add("deallocations")

    # -- inspection ------------------------------------------------------------------

    def occupancy(self) -> int:
        return sum(len(dirset.by_addr) for dirset in self._sets)

    def iter_entries(self) -> Iterator[DirectoryEntry]:
        for dirset in self._sets:
            for entry in dirset.entries:
                if entry is not None:
                    yield entry

    def set_occupancy(self, addr: int) -> int:
        """Live entries in the set ``addr`` maps to (test helper)."""
        return len(self._set_of(addr).by_addr)
