"""Conventional set-associative sparse directory.

The baseline the paper improves on: a directory *cache* with ``sets x ways``
entries.  When a set is full and a new block needs tracking, the replacement
policy picks a victim entry and — because the conventional design maintains
**strict inclusion** ("every privately cached block is tracked") — the
protocol must invalidate every cached copy of the victim block.  These
directory-induced invalidations are exactly what destroys performance when
the directory is under-provisioned, and what the stash directory removes.

The set/way mechanics mirror :class:`~repro.cache.array.CacheArray` but store
:class:`~repro.directory.base.DirectoryEntry` records; victim choice is
factored into :meth:`choose_victim` so the stash directory can subclass and
redirect it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..cache.replacement import LruPolicy, ReplacementPolicy, make_policy
from ..common.addr import log2_exact
from ..common.config import DirectoryConfig
from ..common.errors import ConfigError, DirectoryError
from ..common.rng import DeterministicRng
from ..common.stats import StatCounter, StatGroup
from .base import (
    AllocationResult,
    Directory,
    DirectoryEntry,
    Eviction,
    EvictionAction,
)
from .sharers import make_sharer_rep


class _DirSet:
    """One directory set: way-slots, an address index and replacement state.

    Like :class:`~repro.cache.array.CacheSet`, the policy hooks are bound
    once at construction so the per-lookup path has no policy dispatch.
    """

    __slots__ = ("ways", "entries", "by_addr", "policy", "touch", "fill_touch", "lru")

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        self.ways = ways
        self.entries: List[Optional[DirectoryEntry]] = [None] * ways
        self.by_addr: Dict[int, int] = {}
        self.policy = policy
        self.touch = policy.on_access
        self.fill_touch = policy.on_fill
        self.lru = policy if type(policy) is LruPolicy else None

    def find(self, addr: int) -> Optional[int]:
        return self.by_addr.get(addr)

    def free_way(self) -> Optional[int]:
        if len(self.by_addr) == self.ways:
            return None
        for way, entry in enumerate(self.entries):
            if entry is None:
                return way
        raise DirectoryError("directory set bookkeeping out of sync")  # pragma: no cover


class SparseDirectory(Directory):
    """Set-associative sparse directory with invalidate-on-eviction."""

    def __init__(
        self,
        config: DirectoryConfig,
        num_cores: int,
        entries: int,
        rng: DeterministicRng,
        stats: StatGroup,
    ) -> None:
        super().__init__(config, num_cores, entries)
        if entries % config.ways != 0:
            raise ConfigError(
                f"directory entries ({entries}) must be a multiple of ways ({config.ways})"
            )
        self.sets = entries // config.ways
        log2_exact(self.sets)  # indexing requires power-of-two sets
        self._index_mask = self.sets - 1
        self.stats = stats
        self._sets: List[_DirSet] = [
            _DirSet(config.ways, make_policy("lru", config.ways, rng.spawn(i)))
            for i in range(self.sets)
        ]
        # Lookup/allocation counters, bound on first event (see
        # StatGroup.counter); eviction counters are keyed per action kind.
        self._c_hits: Optional[StatCounter] = None
        self._c_misses: Optional[StatCounter] = None
        self._c_allocations: Optional[StatCounter] = None
        self._c_deallocations: Optional[StatCounter] = None
        self._c_evictions: Optional[StatCounter] = None
        self._c_evictions_by_action: Dict[EvictionAction, StatCounter] = {}
        # Validated sharer-rep template; allocations clone it via fresh().
        self._rep_template = make_sharer_rep(
            config.sharer_format,
            num_cores,
            group=config.coarse_group,
            pointers=config.limited_pointers,
            cluster=config.hier_cluster,
            hier_pointers=config.hier_pointers,
        )

    # -- internals -------------------------------------------------------------

    def _set_of(self, addr: int) -> _DirSet:
        return self._sets[addr & self._index_mask]

    def _new_entry(self, addr: int) -> DirectoryEntry:
        return DirectoryEntry(addr, self._rep_template.fresh())

    def choose_victim(self, dirset: _DirSet) -> Tuple[int, EvictionAction]:
        """Pick ``(way, action)`` when the set is full.

        The conventional design always invalidates; the stash directory
        overrides this to prefer stash-eligible entries.
        """
        return dirset.policy.victim(), EvictionAction.INVALIDATE

    # -- Directory interface ------------------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> Optional[DirectoryEntry]:
        dirset = self._sets[addr & self._index_mask]
        way = dirset.by_addr.get(addr)
        if way is None:
            if touch:
                cell = self._c_misses
                if cell is None:
                    cell = self._c_misses = self.stats.counter("misses")
                cell.value += 1
            return None
        if touch:
            lru = dirset.lru
            if lru is not None:
                # Inline of LruPolicy.on_access (package-internal fast path).
                lru._clock = clock = lru._clock + 1
                lru._last_use[way] = clock
            else:
                dirset.touch(way)
            cell = self._c_hits
            if cell is None:
                cell = self._c_hits = self.stats.counter("hits")
            cell.value += 1
        return dirset.entries[way]

    def allocate(self, addr: int) -> AllocationResult:
        dirset = self._sets[addr & self._index_mask]
        by_addr = dirset.by_addr
        if addr in by_addr:
            raise DirectoryError(f"block {addr:#x} is already tracked")
        entries = dirset.entries
        eviction: Optional[Eviction] = None
        if len(by_addr) == dirset.ways:
            way, action = self.choose_victim(dirset)
            victim = entries[way]
            assert victim is not None
            del by_addr[victim.addr]
            eviction = Eviction(victim, action)
            cell = self._c_evictions
            if cell is None:
                cell = self._c_evictions = self.stats.counter("evictions")
            cell.value += 1
            action_cell = self._c_evictions_by_action.get(action)
            if action_cell is None:
                action_cell = self._c_evictions_by_action[action] = self.stats.counter(
                    f"evictions_{action.value}"
                )
            action_cell.value += 1
        else:
            way = 0
            while entries[way] is not None:
                way += 1
        entry = self._new_entry(addr)
        entries[way] = entry
        by_addr[addr] = way
        dirset.fill_touch(way)
        cell = self._c_allocations
        if cell is None:
            cell = self._c_allocations = self.stats.counter("allocations")
        cell.value += 1
        return AllocationResult(entry, eviction)

    def deallocate(self, addr: int) -> None:
        dirset = self._sets[addr & self._index_mask]
        way = dirset.by_addr.get(addr)
        if way is None:
            return
        dirset.entries[way] = None
        del dirset.by_addr[addr]
        cell = self._c_deallocations
        if cell is None:
            cell = self._c_deallocations = self.stats.counter("deallocations")
        cell.value += 1

    # -- inspection ------------------------------------------------------------------

    def occupancy(self) -> int:
        return sum(len(dirset.by_addr) for dirset in self._sets)

    def iter_entries(self) -> Iterator[DirectoryEntry]:
        for dirset in self._sets:
            for entry in dirset.entries:
                if entry is not None:
                    yield entry

    def set_occupancy(self, addr: int) -> int:
        """Live entries in the set ``addr`` maps to (test helper)."""
        return len(self._set_of(addr).by_addr)

    def obs_gauges(self) -> dict:
        gauges = super().obs_gauges()
        gauges["full_sets"] = sum(
            1 for dirset in self._sets if len(dirset.by_addr) == dirset.ways
        )
        return gauges
