"""Timestamp "directory" for Tardis coherence — no sharer tracking at all.

Tardis (Yu & Devadas, PACT'15) replaces the sharer vector with two
per-block timestamps: ``wts`` (when the block was last written) and ``rts``
(until when read copies are leased).  A read grant extends ``rts``; the
reader's copy silently self-invalidates once the clock passes its lease, so
the home never sends read invalidations and never needs to know who the
readers are.  Only the single exclusive owner is remembered (an O(log N)
pointer), for write-back forwarding.

This module holds the state records; the protocol logic lives in
:mod:`repro.coherence.tardis`.  Entries exist exactly for the LLC-resident
blocks (the timestamps conceptually live in the LLC tag array), so the
structure is conflict-free by construction and ``capacity`` is nominal 0 —
the storage model (:mod:`repro.energy.area`) accounts two ``tardis_ts_bits``
fields plus an owner pointer per LLC line instead of a directory SRAM.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..common.config import DirectoryConfig
from ..common.errors import DirectoryError
from ..common.stats import StatGroup


class TardisEntry:
    """Per-block timestamp record: the whole of Tardis's coherence state."""

    __slots__ = ("addr", "owner", "wts", "rts")

    def __init__(self, addr: int) -> None:
        self.addr = addr
        self.owner: Optional[int] = None  # core holding E/M, if any
        self.wts = 0  # op-clock tick of the last write grant
        self.rts = 0  # op-clock tick until which read leases run

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TardisEntry(addr={self.addr:#x}, owner={self.owner}, "
            f"wts={self.wts}, rts={self.rts})"
        )


class TimestampDirectory:
    """Map of LLC-resident blocks to their :class:`TardisEntry`.

    Deliberately *not* a :class:`~repro.directory.base.Directory` subclass
    in spirit — there is no sharer representation, no set conflicts and no
    eviction policy of its own (entries live and die with the LLC line) —
    but it implements the same lookup/allocate/deallocate/occupancy surface
    so system-level plumbing (gauges, ``effective_tracking``,
    ``hidden_blocks``) works unchanged.
    """

    def __init__(self, config: DirectoryConfig, num_cores: int, stats: StatGroup) -> None:
        self.config = config
        self.num_cores = num_cores
        self.capacity = 0  # bounded by LLC residency, not by its own SRAM
        self.stats = stats
        self._entries: Dict[int, TardisEntry] = {}
        self._c_hits = None
        self._c_misses = None

    # -- protocol-facing operations ------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> Optional[TardisEntry]:
        entry = self._entries.get(addr)
        if touch:
            if entry is not None:
                cell = self._c_hits
                if cell is None:
                    cell = self._c_hits = self.stats.counter("hits")
            else:
                cell = self._c_misses
                if cell is None:
                    cell = self._c_misses = self.stats.counter("misses")
            cell.value += 1
        return entry

    def allocate(self, addr: int) -> TardisEntry:
        """Install a fresh entry (the block just filled into the LLC)."""
        if addr in self._entries:
            raise DirectoryError(f"block {addr:#x} is already tracked")
        entry = TardisEntry(addr)
        self._entries[addr] = entry
        self.stats.add("allocations")
        return entry

    def deallocate(self, addr: int) -> None:
        """Drop the entry (the block's LLC line was evicted)."""
        if self._entries.pop(addr, None) is not None:
            self.stats.add("deallocations")

    # -- inspection ------------------------------------------------------------

    def occupancy(self) -> int:
        return len(self._entries)

    def iter_entries(self) -> Iterator[TardisEntry]:
        for addr in sorted(self._entries):
            yield self._entries[addr]

    def contains(self, addr: int) -> bool:
        return addr in self._entries

    def obs_gauges(self) -> dict:
        return {"occupancy": self.occupancy()}
