"""Energy and storage/area models."""

from .area import (
    PHYSICAL_ADDR_BITS,
    StorageEstimate,
    entry_bits,
    relative_storage,
    storage_of,
)
from .model import EnergyBreakdown, energy_of

__all__ = [
    "EnergyBreakdown",
    "PHYSICAL_ADDR_BITS",
    "StorageEstimate",
    "energy_of",
    "entry_bits",
    "relative_storage",
    "storage_of",
]
