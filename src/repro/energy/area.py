"""Directory storage / area model — the T2 table.

Computes bits-per-entry and total storage for each organization at each
provisioning ratio, including the stash design's one-bit-per-LLC-line
overhead.  This is the quantitative form of the abstract's claim that the
stash directory "enables significantly smaller directory designs": the 1/8
stash directory plus its LLC stash bits is compared against the 1x
conventional sparse directory it performance-matches.

Assumptions (documented, conventional): 48-bit physical addresses, so a
64-byte-block address is 42 bits; each entry carries a valid bit, a 2-bit
state field, an owner pointer, replacement state, and its sharer encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.addr import log2_exact
from ..common.config import DirectoryConfig, DirectoryKind, SystemConfig
from ..directory.sharers import sharer_storage_bits

#: Physical address width assumed by the tag model.
PHYSICAL_ADDR_BITS = 48


@dataclass
class StorageEstimate:
    """Storage of one directory configuration."""

    entries: int
    bits_per_entry: int
    directory_bits: int
    stash_bit_overhead: int   # extra LLC bits (stash design only)

    @property
    def total_bits(self) -> int:
        """Directory array plus any LLC-side overhead."""
        return self.directory_bits + self.stash_bit_overhead

    @property
    def total_kib(self) -> float:
        """Total storage in KiB."""
        return self.total_bits / 8 / 1024


def entry_bits(config: DirectoryConfig, num_cores: int, sets: int, block_bytes: int) -> int:
    """Bits per directory entry for this organization and format."""
    block_addr_bits = PHYSICAL_ADDR_BITS - log2_exact(block_bytes)
    if config.kind in (DirectoryKind.CUCKOO, DirectoryKind.SCD):
        # Fully hashed / fully associative pools store the full block address.
        tag = block_addr_bits
    elif config.kind in (DirectoryKind.IN_LLC, DirectoryKind.TARDIS):
        # Embedded in the LLC line: the LLC tag already identifies the block.
        tag = 0
    else:
        tag = block_addr_bits - max(0, log2_exact(max(1, sets)))
    state = 2
    valid = 1
    owner_ptr = max(1, (num_cores - 1).bit_length())
    replacement = max(1, (config.ways - 1).bit_length())  # LRU rank approx
    if config.kind is DirectoryKind.TARDIS:
        # No sharer vector at all: two timestamps (wts/rts) plus an owner
        # pointer ride in the LLC tag array.  No replacement state either —
        # entries live and die with the LLC line.  This is the O(log N)
        # scaling story timestamp coherence trades its lease misses for.
        return 2 * config.tardis_ts_bits + owner_ptr + valid
    if config.kind is DirectoryKind.SCD:
        from ..directory.hierarchical import DEFAULT_LEAF_SIZE, DEFAULT_POINTERS

        # An SCD line holds either a few pointers or one leaf bit-group,
        # whichever is wider, plus a type bit.
        ptr_bits = max(1, (num_cores - 1).bit_length())
        sharers = max(DEFAULT_POINTERS * ptr_bits, DEFAULT_LEAF_SIZE) + 1
    else:
        sharers = sharer_storage_bits(
            config.sharer_format,
            num_cores,
            group=config.coarse_group,
            pointers=config.limited_pointers,
            cluster=config.hier_cluster,
            hier_pointers=config.hier_pointers,
        )
    return tag + state + valid + owner_ptr + replacement + sharers


def storage_of(config: SystemConfig) -> StorageEstimate:
    """Storage estimate for a full system configuration."""
    entries = config.directory_entries
    dcfg = config.directory
    if dcfg.kind is DirectoryKind.IDEAL:
        # Report the duplicate-tag equivalent: one entry per private block.
        entries = config.num_cores * config.private_blocks_per_core
    elif dcfg.kind in (DirectoryKind.IN_LLC, DirectoryKind.TARDIS):
        # One embedded entry per LLC line (no tag: the LLC tag serves).
        entries = config.llc.blocks
    sets = max(1, entries // dcfg.ways)
    bits = entry_bits(dcfg, config.num_cores, sets, config.block_bytes)
    stash_kinds = (DirectoryKind.STASH, DirectoryKind.ADAPTIVE_STASH)
    stash_overhead = config.llc.blocks if dcfg.kind in stash_kinds else 0
    if dcfg.discovery_filter_slots:
        from ..core.filter import PresenceFilter

        stash_overhead += PresenceFilter.storage_bits(
            config.num_cores, dcfg.discovery_filter_slots
        )
    return StorageEstimate(
        entries=entries,
        bits_per_entry=bits,
        directory_bits=entries * bits,
        stash_bit_overhead=stash_overhead,
    )


def relative_storage(config: SystemConfig, baseline: SystemConfig) -> float:
    """Total storage relative to a baseline configuration."""
    base = storage_of(baseline).total_bits
    if base == 0:
        return 1.0
    return storage_of(config).total_bits / base
