"""Dynamic + leakage energy model.

Per DESIGN.md's substitution table: the paper derives energies from CACTI;
we use representative per-event constants.  All reproduced energy claims
are **ratios between organizations**, which survive any monotone per-event
model — the interesting terms are (a) directory leakage, proportional to
entry count, where a 1/8-provisioned stash directory wins by construction,
and (b) the extra dynamic energy of discovery broadcasts versus the saved
invalidation/refetch traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.config import EnergyConfig
from ..sim.results import SimulationResult


@dataclass
class EnergyBreakdown:
    """Energy of one run, by component (picojoules)."""

    l1_dynamic: float
    llc_dynamic: float
    directory_dynamic: float
    memory_dynamic: float
    noc_dynamic: float
    directory_leakage: float

    @property
    def dynamic_total(self) -> float:
        """All switching energy."""
        return (
            self.l1_dynamic
            + self.llc_dynamic
            + self.directory_dynamic
            + self.memory_dynamic
            + self.noc_dynamic
        )

    @property
    def total(self) -> float:
        """Dynamic + leakage."""
        return self.dynamic_total + self.directory_leakage

    def normalized_to(self, baseline: "EnergyBreakdown") -> float:
        """Total energy relative to a baseline run."""
        if baseline.total == 0:
            return 1.0
        return self.total / baseline.total


def energy_of(result: SimulationResult, config: EnergyConfig = None) -> EnergyBreakdown:
    """Compute the energy breakdown of a finished run."""
    if config is None:
        config = result.config.energy
    stats = result.stats

    l1_accesses = stats.get("system.protocol.accesses", 0.0)
    llc_accesses = (
        stats.get("system.protocol.llc_hits", 0.0)
        + stats.get("system.protocol.llc_misses", 0.0)
        + stats.get("system.llc.writebacks_absorbed", 0.0)
    )
    dir_accesses = stats.get("system.directory.hits", 0.0) + stats.get(
        "system.directory.misses", 0.0
    )
    memory_accesses = stats.get("system.memory.reads", 0.0) + stats.get(
        "system.memory.writes", 0.0
    )
    flit_hops = stats.get("system.noc.flit_hops.total", 0.0)

    entries = result.config.directory_entries
    if result.config.directory.kind.value == "ideal":
        entries = 0  # unbounded directory: leakage is not meaningful

    return EnergyBreakdown(
        l1_dynamic=l1_accesses * config.l1_access_pj,
        llc_dynamic=llc_accesses * config.llc_access_pj,
        directory_dynamic=dir_accesses * config.directory_access_pj,
        memory_dynamic=memory_accesses * config.memory_access_pj,
        noc_dynamic=flit_hops * config.noc_hop_pj,
        directory_leakage=(
            entries
            * config.directory_leakage_pw_per_entry
            * result.execution_time
            * 1e-3  # pW-cycles -> pJ-scale units (arbitrary but consistent)
        ),
    )
