"""Main-memory models: flat latency (default) and banked open-page DRAM."""

from __future__ import annotations

from typing import Union

from ..common.config import MemoryModel, SystemConfig
from ..common.stats import StatGroup
from .dram import DramBank, DramModel
from .main_memory import MainMemory

#: Either memory model (same read/write interface).
Memory = Union[MainMemory, "DramAdapter"]


class DramAdapter:
    """Adapts :class:`DramModel` to the MainMemory read/write interface."""

    def __init__(self, dram: DramModel) -> None:
        self.dram = dram

    def read(self, block_addr: int = 0, now: float = 0.0) -> int:
        """Fetch one block through the DRAM model."""
        return self.dram.access(block_addr, now, is_write=False)

    def write(self, block_addr: int = 0, now: float = 0.0) -> int:
        """Write one block back through the DRAM model."""
        return self.dram.access(block_addr, now, is_write=True)

    def reads(self) -> float:
        """Blocks fetched so far."""
        return self.dram.reads()

    def writes(self) -> float:
        """Blocks written back so far."""
        return self.dram.writes()


def make_memory(config: SystemConfig, stats: StatGroup) -> Memory:
    """Instantiate the memory model ``config.memory_model`` selects."""
    if config.memory_model is MemoryModel.DRAM:
        return DramAdapter(DramModel(config.dram, stats))
    return MainMemory(config.timing, stats)


__all__ = ["DramAdapter", "DramBank", "DramModel", "MainMemory", "Memory", "make_memory"]
