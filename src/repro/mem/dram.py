"""Bank/row-buffer DRAM model (optional upgrade over the flat model).

The flat-latency model is enough for the paper's directory claims, but a
directory study's refetch traffic is bursty — coverage misses cluster on
the same rows they were evicted from — so an open-page DRAM model gives the
latency penalty of a refetch a more honest distribution:

* the address maps to a (channel-less) **bank** and **row**;
* a **row-buffer hit** pays CAS only;
* a **row-buffer miss** pays precharge + activate + CAS;
* a bank conflict additionally waits for the bank's busy window.

Timing is approximate (no command bus, no refresh) but captures the two
effects that matter here: row locality of streaming refetches and bank
parallelism of independent ones.  Select it with
``TimingConfig`` + :class:`~repro.common.config.MemoryModel` — see
:func:`repro.mem.make_memory`.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.config import DramConfig
from ..common.stats import StatGroup


class DramBank:
    """One bank: an open row and a busy-until timestamp."""

    __slots__ = ("open_row", "busy_until")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.busy_until: float = 0.0


class DramModel:
    """Open-page DRAM with per-bank row buffers.

    The simulator is trace-driven with per-core clocks, so the model keeps
    its own coarse notion of time: callers pass the requester's current
    clock (``now``), and the access latency includes any wait for the
    target bank.
    """

    def __init__(self, config: DramConfig, stats: StatGroup) -> None:
        self.config = config
        self._stats = stats
        self._banks: List[DramBank] = [DramBank() for _ in range(config.banks)]

    # -- address mapping --------------------------------------------------------

    def bank_of(self, block_addr: int) -> int:
        """Block-interleaved bank mapping."""
        return block_addr % self.config.banks

    def row_of(self, block_addr: int) -> int:
        """Row id: consecutive blocks within a bank share a row."""
        return (block_addr // self.config.banks) // self.config.row_blocks

    # -- accesses -----------------------------------------------------------------

    def access(self, block_addr: int, now: float, is_write: bool) -> int:
        """One block transfer; returns its latency in cycles.

        ``now`` is the requester's clock, used to model bank busy time.
        """
        bank = self._banks[self.bank_of(block_addr)]
        row = self.row_of(block_addr)
        cfg = self.config

        wait = max(0.0, bank.busy_until - now)
        if wait > 0:
            self._stats.add("bank_conflict_wait_cycles", wait)
            self._stats.add("bank_conflicts")

        if bank.open_row == row:
            service = cfg.cas_cycles
            self._stats.add("row_hits")
        elif bank.open_row is None:
            service = cfg.activate_cycles + cfg.cas_cycles
            self._stats.add("row_empty")
        else:
            service = cfg.precharge_cycles + cfg.activate_cycles + cfg.cas_cycles
            self._stats.add("row_misses")
        bank.open_row = row

        latency = int(wait + service + cfg.transfer_cycles)
        bank.busy_until = now + wait + service + cfg.transfer_cycles
        self._stats.add("writes" if is_write else "reads")
        return latency

    # -- reporting ------------------------------------------------------------------

    def row_hit_rate(self) -> float:
        """Row-buffer hits / all accesses."""
        hits = self._stats.get("row_hits")
        total = hits + self._stats.get("row_misses") + self._stats.get("row_empty")
        return hits / total if total else 0.0

    def reads(self) -> float:
        """Blocks fetched so far."""
        return self._stats.get("reads")

    def writes(self) -> float:
        """Blocks written back so far."""
        return self._stats.get("writes")
