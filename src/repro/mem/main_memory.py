"""Fixed-latency main-memory model with bandwidth accounting.

The paper's results do not hinge on DRAM microarchitecture, so memory is a
flat-latency device; what matters is *how often* each directory organization
forces a trip to it (coverage misses refetch from the LLC, but LLC misses
caused by lost locality do reach memory).  Reads and writebacks are counted
separately so the energy model and traffic reports can weight them.
"""

from __future__ import annotations

from ..common.config import TimingConfig
from ..common.stats import StatGroup


class MainMemory:
    """Flat-latency DRAM stand-in."""

    def __init__(self, timing: TimingConfig, stats: StatGroup) -> None:
        self._latency = timing.memory_latency
        self._stats = stats

    def read(self, block_addr: int = 0, now: float = 0.0) -> int:
        """Fetch one block; returns the access latency in cycles.

        ``block_addr`` and ``now`` exist for interface parity with the DRAM
        model (:class:`repro.mem.dram.DramModel`); the flat model ignores
        them.
        """
        self._stats.add("reads")
        return self._latency

    def write(self, block_addr: int = 0, now: float = 0.0) -> int:
        """Write one block back; returns the access latency in cycles.

        Writebacks are off the critical path of the evicting request in real
        systems; the protocol engine therefore records but does not charge
        this latency to the requester.
        """
        self._stats.add("writes")
        return self._latency

    @property
    def latency(self) -> int:
        """The configured access latency."""
        return self._latency

    def reads(self) -> float:
        """Blocks fetched so far."""
        return self._stats.get("reads")

    def writes(self) -> float:
        """Blocks written back so far."""
        return self._stats.get("writes")
