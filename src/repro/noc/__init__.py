"""Mesh NoC model: topology, latency and per-class traffic accounting."""

from .contention import LinkTracker
from .network import Network
from .topology import Mesh2D
from .traffic import DATA_CLASSES, DATA_FLITS, MessageClass, TrafficMeter, flits_of

__all__ = [
    "LinkTracker",
    "DATA_CLASSES",
    "DATA_FLITS",
    "Mesh2D",
    "MessageClass",
    "Network",
    "TrafficMeter",
    "flits_of",
]
