"""Per-link traffic attribution and congestion estimation.

The base network model charges distance-proportional latency and meters
traffic per message class.  For *where does the traffic go* questions —
are discovery broadcasts hammering the links around a hot home bank? —
this module attributes every message's flits to the mesh links its XY route
traverses and derives per-link utilization and an M/M/1-style queueing
estimate.

Tracking walks the route (O(hops) per message), so it is opt-in:
``NoCConfig(track_links=True)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..common.stats import ratio
from .topology import Mesh2D

#: A directed mesh link between two adjacent tiles.
Link = Tuple[int, int]


class LinkTracker:
    """Accumulates flit counts per directed mesh link (XY routing)."""

    def __init__(self, mesh: Mesh2D) -> None:
        self.mesh = mesh
        self._flits: Dict[Link, float] = {}
        self._messages = 0

    # -- recording ------------------------------------------------------------

    def xy_route(self, src: int, dst: int) -> List[Link]:
        """The XY route as a list of directed links (X first, then Y)."""
        links: List[Link] = []
        x, y = self.mesh.coords(src)
        dx, dy = self.mesh.coords(dst)
        while x != dx:
            nx = x + (1 if dx > x else -1)
            links.append((self.mesh.tile(x, y), self.mesh.tile(nx, y)))
            x = nx
        while y != dy:
            ny = y + (1 if dy > y else -1)
            links.append((self.mesh.tile(x, y), self.mesh.tile(x, ny)))
            y = ny
        return links

    def record(self, src: int, dst: int, flits: int) -> None:
        """Attribute one message's flits to every link on its route."""
        self._messages += 1
        for link in self.xy_route(src, dst):
            self._flits[link] = self._flits.get(link, 0.0) + flits

    # -- reporting --------------------------------------------------------------

    def link_flits(self) -> Dict[Link, float]:
        """Copy of the per-link flit counts."""
        return dict(self._flits)

    def hottest_links(self, top: int = 5) -> List[Tuple[Link, float]]:
        """The ``top`` most-used links, busiest first."""
        ranked = sorted(self._flits.items(), key=lambda item: -item[1])
        return ranked[:top]

    def total_flit_hops(self) -> float:
        """Sum over links == hop-weighted flits (cross-check vs the meter)."""
        return sum(self._flits.values())

    def utilization(self, link: Link, elapsed_cycles: float) -> float:
        """Flits per cycle offered to one link (1.0 = saturated)."""
        return ratio(self._flits.get(link, 0.0), elapsed_cycles)

    def max_utilization(self, elapsed_cycles: float) -> float:
        """Utilization of the busiest link."""
        if not self._flits:
            return 0.0
        return self.utilization(max(self._flits, key=self._flits.get), elapsed_cycles)

    def estimated_queueing_delay(self, link: Link, elapsed_cycles: float) -> float:
        """M/M/1-style mean waiting estimate, in cycles per flit.

        ``rho / (1 - rho)`` with utilization capped below 1; a post-hoc
        sanity metric ("would this traffic level congest?"), not a timing
        feedback path.
        """
        rho = min(self.utilization(link, elapsed_cycles), 0.99)
        return rho / (1.0 - rho)

    def heatmap(self, elapsed_cycles: float, precision: int = 2) -> str:
        """ASCII per-tile heat: total utilization of each tile's outgoing links."""
        outgoing: Dict[int, float] = {}
        for (src, _dst), flits in self._flits.items():
            outgoing[src] = outgoing.get(src, 0.0) + flits
        lines = ["link-utilization heatmap (outgoing flits/cycle per tile)"]
        for y in range(self.mesh.height):
            row = []
            for x in range(self.mesh.width):
                tile = self.mesh.tile(x, y)
                row.append(f"{ratio(outgoing.get(tile, 0.0), elapsed_cycles):.{precision}f}")
            lines.append("  ".join(row))
        return "\n".join(lines)
