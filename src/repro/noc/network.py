"""Network façade used by the protocol engine.

``send`` is the single entry point: it returns the latency of one message
and records its traffic.  ``broadcast`` models the discovery probe fan-out —
one probe per destination tile plus the replies, with the *latency* of the
round trip being the slowest leg (probes travel in parallel).

Both are pure table lookups: :class:`~repro.noc.topology.Mesh2D` precomputes
the per-tile-pair hop and latency tables once (≤ 64×64 ints), and the
traffic accounting increments bound
:class:`~repro.common.stats.StatCounter` cells shared with the
:class:`~repro.noc.traffic.TrafficMeter` — no route arithmetic and no
string-keyed stats writes on the per-message path.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..common.config import NoCConfig
from ..common.stats import StatGroup
from .contention import LinkTracker
from .topology import Mesh2D
from .traffic import MessageClass, TrafficMeter


class Network:
    """Hop-latency mesh network with per-class traffic metering.

    With ``NoCConfig(track_links=True)`` every message's flits are also
    attributed to the links of its XY route (see
    :class:`~repro.noc.contention.LinkTracker`, exposed as ``links``).
    """

    def __init__(self, config: NoCConfig, stats: StatGroup) -> None:
        self.mesh = Mesh2D(config)
        self.traffic = TrafficMeter(stats)
        self.links: Optional[LinkTracker] = (
            LinkTracker(self.mesh) if config.track_links else None
        )
        # Hot-path aliases: the mesh's precomputed N x N tables (list rows,
        # indexed [src][dst]) and the meter's per-class cell dict (same
        # objects — accounting stays observable through ``traffic``).
        self._hops = self.mesh.hop_table()
        self._latencies = self.mesh.latency_table()
        self._class_cells = self.traffic.class_cells
        self._bind_class = self.traffic.bind_class

    def send(self, src: int, dst: int, msg_class: MessageClass) -> int:
        """Deliver one message; returns its latency in cycles."""
        if src < 0 or dst < 0:
            self.mesh.hops(src, dst)  # raises ConfigError
        try:
            hops = self._hops[src][dst]
            latency = self._latencies[src][dst]
        except IndexError:
            self.mesh.hops(src, dst)  # raises ConfigError
            raise  # pragma: no cover - unreachable
        cells = self._class_cells.get(msg_class)
        if cells is None:
            cells = self._bind_class(msg_class)
        msgs, hop_count, flit_hops, flits, total_msgs, total_flit_hops = cells
        fh = hops * flits
        msgs.value += 1
        hop_count.value += hops
        flit_hops.value += fh
        total_msgs.value += 1
        total_flit_hops.value += fh
        if self.links is not None:
            self.links.record(src, dst, flits)
        return latency

    def broadcast(
        self,
        src: int,
        dsts: Iterable[int],
        probe_class: MessageClass,
        reply_class: MessageClass,
    ) -> Tuple[int, int]:
        """Probe every tile in ``dsts`` and collect one reply from each.

        Returns ``(round_trip_latency, fanout)``: probes are sent in
        parallel, so the round-trip latency is that of the farthest
        destination; traffic is recorded for every probe and every reply.
        An empty destination set costs nothing.
        """
        worst = 0
        fanout = 0
        probe_cells = reply_cells = None
        hop_rows = self._hops
        lat_rows = self._latencies
        hop_row = hop_rows[src]
        lat_row = lat_rows[src]
        links = self.links
        for dst in dsts:
            if probe_cells is None:
                # Bind lazily so an empty destination set creates no counters.
                probe_cells = self._class_cells.get(probe_class) or self._bind_class(
                    probe_class
                )
                reply_cells = self._class_cells.get(reply_class) or self._bind_class(
                    reply_class
                )
            fanout += 1
            out_hops = hop_row[dst]
            back_hops = hop_rows[dst][src]
            p_msgs, p_hops, p_fh, p_flits, total_msgs, total_flit_hops = probe_cells
            p_msgs.value += 1
            p_hops.value += out_hops
            p_fh.value += out_hops * p_flits
            r_msgs, r_hops, r_fh, r_flits, _, _ = reply_cells
            r_msgs.value += 1
            r_hops.value += back_hops
            r_fh.value += back_hops * r_flits
            total_msgs.value += 2
            total_flit_hops.value += out_hops * p_flits + back_hops * r_flits
            if links is not None:
                links.record(src, dst, p_flits)
                links.record(dst, src, r_flits)
            round_trip = lat_row[dst] + lat_rows[dst][src]
            if round_trip > worst:
                worst = round_trip
        return worst, fanout
