"""Network façade used by the protocol engine.

``send`` is the single entry point: it returns the latency of one message
and records its traffic.  ``broadcast`` models the discovery probe fan-out —
one probe per destination tile plus the replies, with the *latency* of the
round trip being the slowest leg (probes travel in parallel).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..common.config import NoCConfig
from ..common.stats import StatGroup
from .contention import LinkTracker
from .topology import Mesh2D
from .traffic import MessageClass, TrafficMeter, flits_of


class Network:
    """Hop-latency mesh network with per-class traffic metering.

    With ``NoCConfig(track_links=True)`` every message's flits are also
    attributed to the links of its XY route (see
    :class:`~repro.noc.contention.LinkTracker`, exposed as ``links``).
    """

    def __init__(self, config: NoCConfig, stats: StatGroup) -> None:
        self.mesh = Mesh2D(config)
        self.traffic = TrafficMeter(stats)
        self.links: Optional[LinkTracker] = (
            LinkTracker(self.mesh) if config.track_links else None
        )

    def send(self, src: int, dst: int, msg_class: MessageClass) -> int:
        """Deliver one message; returns its latency in cycles."""
        hops = self.mesh.hops(src, dst)
        self.traffic.record(msg_class, hops)
        if self.links is not None:
            self.links.record(src, dst, flits_of(msg_class))
        return self.mesh.latency(src, dst)

    def broadcast(
        self,
        src: int,
        dsts: Iterable[int],
        probe_class: MessageClass,
        reply_class: MessageClass,
    ) -> Tuple[int, int]:
        """Probe every tile in ``dsts`` and collect one reply from each.

        Returns ``(round_trip_latency, fanout)``: probes are sent in
        parallel, so the round-trip latency is that of the farthest
        destination; traffic is recorded for every probe and every reply.
        An empty destination set costs nothing.
        """
        worst = 0
        fanout = 0
        for dst in dsts:
            fanout += 1
            self.traffic.record(probe_class, self.mesh.hops(src, dst))
            self.traffic.record(reply_class, self.mesh.hops(dst, src))
            if self.links is not None:
                self.links.record(src, dst, flits_of(probe_class))
                self.links.record(dst, src, flits_of(reply_class))
            round_trip = self.mesh.latency(src, dst) + self.mesh.latency(dst, src)
            if round_trip > worst:
                worst = round_trip
        return worst, fanout
