"""2-D mesh topology: tile coordinates and minimal-route hop counts.

One tile per core; LLC banks and directory slices are co-located with tiles
(bank *b* lives on tile *b*).  Routing is dimension-ordered (XY), so the hop
count between two tiles is their Manhattan distance — all the latency model
needs.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..common.config import NoCConfig
from ..common.errors import ConfigError


class Mesh2D:
    """Coordinate math for a ``width x height`` mesh of tiles."""

    def __init__(self, config: NoCConfig) -> None:
        self.config = config
        self.width = config.mesh_width
        self.height = config.mesh_height
        # Hop counts and latencies are looked up on every message: precompute
        # the full N x N tables once (N <= 64, so at most 4096 ints each).
        n = self.width * self.height
        self._hops = [
            [
                abs(s % self.width - d % self.width)
                + abs(s // self.width - d // self.width)
                for d in range(n)
            ]
            for s in range(n)
        ]
        hop, router = config.hop_cycles, config.router_cycles
        self._latencies = [
            [h * hop + router for h in row] for row in self._hops
        ]

    @property
    def nodes(self) -> int:
        """Number of tiles."""
        return self.width * self.height

    def coords(self, tile: int) -> Tuple[int, int]:
        """(x, y) coordinates of a tile id (row-major)."""
        if not 0 <= tile < self.nodes:
            raise ConfigError(f"tile {tile} outside mesh of {self.nodes} nodes")
        return tile % self.width, tile // self.width

    def tile(self, x: int, y: int) -> int:
        """Tile id at coordinates (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigError(f"coords ({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles (XY routing)."""
        if src < 0 or dst < 0:
            raise ConfigError(f"negative tile id ({src}, {dst})")
        try:
            return self._hops[src][dst]
        except IndexError:
            raise ConfigError(
                f"tile pair ({src}, {dst}) outside mesh of {self.nodes} nodes"
            ) from None

    def latency(self, src: int, dst: int) -> int:
        """Cycles for one message: hops * hop_cycles + router overhead.

        A self-send (src == dst, e.g. a core whose tile hosts the home bank)
        still pays the router overhead once.
        """
        if src < 0 or dst < 0:
            raise ConfigError(f"negative tile id ({src}, {dst})")
        try:
            return self._latencies[src][dst]
        except IndexError:
            raise ConfigError(
                f"tile pair ({src}, {dst}) outside mesh of {self.nodes} nodes"
            ) from None

    def hop_table(self):
        """The precomputed ``[src][dst]`` hop-count table (do not mutate).

        :class:`~repro.noc.network.Network` aliases this so its per-message
        path is a pure table lookup.
        """
        return self._hops

    def latency_table(self):
        """The precomputed ``[src][dst]`` latency table (do not mutate)."""
        return self._latencies

    def average_distance(self) -> float:
        """Mean hop count over all ordered tile pairs (used in reports)."""
        total = sum(sum(row) for row in self._hops)
        return total / (self.nodes * self.nodes)

    def neighbors(self, tile: int) -> List[int]:
        """Adjacent tiles (mesh links) of ``tile``."""
        x, y = self.coords(tile)
        result = []
        if x > 0:
            result.append(self.tile(x - 1, y))
        if x < self.width - 1:
            result.append(self.tile(x + 1, y))
        if y > 0:
            result.append(self.tile(x, y - 1))
        if y < self.height - 1:
            result.append(self.tile(x, y + 1))
        return result

    def iter_tiles(self) -> Iterator[int]:
        """All tile ids in order."""
        return iter(range(self.nodes))
