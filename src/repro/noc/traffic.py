"""Message classes and traffic accounting.

The paper's traffic claims are message-count claims: how much extra traffic
do discovery broadcasts add, and how much invalidation + refetch traffic does
stashing remove.  We therefore classify every message and account both raw
counts and hop-weighted counts (a proxy for link energy / utilization).

Control messages are one flit; data-bearing messages carry a cache line and
are weighted by ``DATA_FLITS``.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Tuple

from ..common.stats import StatCounter, StatGroup

#: Flits per data-bearing message relative to a 1-flit control message.
DATA_FLITS = 5


class MessageClass(str, Enum):
    """Every message type the protocol engine can put on the network."""

    REQUEST = "request"                  # core -> home: GetS/GetM/upgrade
    DATA_RESPONSE = "data_response"      # home/owner -> core: line fill
    CONTROL_RESPONSE = "control_response"  # acks, grant-without-data
    FORWARD = "forward"                  # home -> owner: intervention
    INVALIDATION = "invalidation"        # home -> sharer: invalidate
    INV_ACK = "inv_ack"                  # sharer -> home/requester
    WRITEBACK = "writeback"              # core -> home: dirty data (PutM)
    WB_ACK = "wb_ack"                    # home -> core
    EVICTION_NOTICE = "eviction_notice"  # core -> home: clean PutE/PutS (ablation A2)
    DISCOVERY_PROBE = "discovery_probe"  # home -> all cores: find hidden copy
    DISCOVERY_REPLY = "discovery_reply"  # core -> home: here / not-here (+data)
    MEMORY = "memory"                    # home <-> memory controller


#: Message classes that carry a full cache line.
DATA_CLASSES = frozenset(
    {
        MessageClass.DATA_RESPONSE,
        MessageClass.WRITEBACK,
        MessageClass.MEMORY,
    }
)


def flits_of(msg_class: MessageClass) -> int:
    """Flit weight of one message of this class."""
    return DATA_FLITS if msg_class in DATA_CLASSES else 1


#: One class's bound accounting slots: (msgs, hops, flit_hops, flit weight,
#: msgs.total, flit_hops.total) — everything one ``record`` touches.
ClassCells = Tuple[StatCounter, StatCounter, StatCounter, int, StatCounter, StatCounter]


class TrafficMeter:
    """Accumulates per-class message, hop and flit-hop counts.

    Counts live in bound :class:`~repro.common.stats.StatCounter` cells of
    the meter's :class:`~repro.common.stats.StatGroup` (same names
    :meth:`StatGroup.add` would create), so the stats tree stays the single
    source of truth while the per-message cost is one dict lookup plus five
    attribute adds.  Cells are bound on a class's *first* message, keeping
    the stats tree free of never-used classes exactly as lazily-created
    counters always were.
    """

    def __init__(self, stats: StatGroup) -> None:
        self._stats = stats
        #: msg_class -> ClassCells; shared with ``Network``'s inlined fast
        #: path (same dict object).
        self.class_cells: Dict[MessageClass, ClassCells] = {}

    def bind_class(self, msg_class: MessageClass) -> ClassCells:
        """Materialize and cache the accounting cells of one message class."""
        counter = self._stats.counter
        cells = (
            counter(f"msgs.{msg_class.value}"),
            counter(f"hops.{msg_class.value}"),
            counter(f"flit_hops.{msg_class.value}"),
            flits_of(msg_class),
            counter("msgs.total"),
            counter("flit_hops.total"),
        )
        self.class_cells[msg_class] = cells
        return cells

    def record(self, msg_class: MessageClass, hops: int) -> None:
        """Account one message of ``msg_class`` traversing ``hops`` links."""
        cells = self.class_cells.get(msg_class)
        if cells is None:
            cells = self.bind_class(msg_class)
        msgs, hop_count, flit_hops, flits, total_msgs, total_flit_hops = cells
        fh = hops * flits
        msgs.value += 1
        hop_count.value += hops
        flit_hops.value += fh
        total_msgs.value += 1
        total_flit_hops.value += fh

    def messages(self, msg_class: MessageClass) -> float:
        """Raw count of one class."""
        return self._stats.get(f"msgs.{msg_class.value}")

    def flit_hops(self, msg_class: MessageClass) -> float:
        """Hop-weighted flits of one class."""
        return self._stats.get(f"flit_hops.{msg_class.value}")

    def total_messages(self) -> float:
        """All messages."""
        return self._stats.get("msgs.total")

    def total_flit_hops(self) -> float:
        """All hop-weighted flits — the headline traffic metric."""
        return self._stats.get("flit_hops.total")

    def by_class(self) -> Dict[str, float]:
        """``{class: flit_hops}`` for reporting."""
        return {
            cls.value: self.flit_hops(cls)
            for cls in MessageClass
            if self.flit_hops(cls) > 0
        }
