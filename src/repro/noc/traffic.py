"""Message classes and traffic accounting.

The paper's traffic claims are message-count claims: how much extra traffic
do discovery broadcasts add, and how much invalidation + refetch traffic does
stashing remove.  We therefore classify every message and account both raw
counts and hop-weighted counts (a proxy for link energy / utilization).

Control messages are one flit; data-bearing messages carry a cache line and
are weighted by ``DATA_FLITS``.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict

from ..common.stats import StatGroup

#: Flits per data-bearing message relative to a 1-flit control message.
DATA_FLITS = 5


class MessageClass(str, Enum):
    """Every message type the protocol engine can put on the network."""

    REQUEST = "request"                  # core -> home: GetS/GetM/upgrade
    DATA_RESPONSE = "data_response"      # home/owner -> core: line fill
    CONTROL_RESPONSE = "control_response"  # acks, grant-without-data
    FORWARD = "forward"                  # home -> owner: intervention
    INVALIDATION = "invalidation"        # home -> sharer: invalidate
    INV_ACK = "inv_ack"                  # sharer -> home/requester
    WRITEBACK = "writeback"              # core -> home: dirty data (PutM)
    WB_ACK = "wb_ack"                    # home -> core
    EVICTION_NOTICE = "eviction_notice"  # core -> home: clean PutE/PutS (ablation A2)
    DISCOVERY_PROBE = "discovery_probe"  # home -> all cores: find hidden copy
    DISCOVERY_REPLY = "discovery_reply"  # core -> home: here / not-here (+data)
    MEMORY = "memory"                    # home <-> memory controller


#: Message classes that carry a full cache line.
DATA_CLASSES = frozenset(
    {
        MessageClass.DATA_RESPONSE,
        MessageClass.WRITEBACK,
        MessageClass.MEMORY,
    }
)


def flits_of(msg_class: MessageClass) -> int:
    """Flit weight of one message of this class."""
    return DATA_FLITS if msg_class in DATA_CLASSES else 1


#: Precomputed (msgs, hops, flit_hops, flit_weight) keys per class — this is
#: the single hottest accounting path in the simulator.
_CLASS_KEYS = {
    cls: (
        f"msgs.{cls.value}",
        f"hops.{cls.value}",
        f"flit_hops.{cls.value}",
        flits_of(cls),
    )
    for cls in MessageClass
}


class TrafficMeter:
    """Accumulates per-class message, hop and flit-hop counts.

    Writes straight into its :class:`~repro.common.stats.StatGroup`'s
    counter dict (same keys :meth:`StatGroup.add` would create), so the
    stats tree stays the single source of truth while the per-message cost
    is a handful of dict operations.
    """

    def __init__(self, stats: StatGroup) -> None:
        self._stats = stats
        self._counters = stats._counters  # hot-path alias, same dict

    def record(self, msg_class: MessageClass, hops: int) -> None:
        """Account one message of ``msg_class`` traversing ``hops`` links."""
        msgs_key, hops_key, flit_key, flits = _CLASS_KEYS[msg_class]
        counters = self._counters
        flit_hops = hops * flits
        counters[msgs_key] = counters.get(msgs_key, 0.0) + 1
        counters[hops_key] = counters.get(hops_key, 0.0) + hops
        counters[flit_key] = counters.get(flit_key, 0.0) + flit_hops
        counters["msgs.total"] = counters.get("msgs.total", 0.0) + 1
        counters["flit_hops.total"] = counters.get("flit_hops.total", 0.0) + flit_hops

    def messages(self, msg_class: MessageClass) -> float:
        """Raw count of one class."""
        return self._stats.get(f"msgs.{msg_class.value}")

    def flit_hops(self, msg_class: MessageClass) -> float:
        """Hop-weighted flits of one class."""
        return self._stats.get(f"flit_hops.{msg_class.value}")

    def total_messages(self) -> float:
        """All messages."""
        return self._stats.get("msgs.total")

    def total_flit_hops(self) -> float:
        """All hop-weighted flits — the headline traffic metric."""
        return self._stats.get("flit_hops.total")

    def by_class(self) -> Dict[str, float]:
        """``{class: flit_hops}`` for reporting."""
        return {
            cls.value: self.flit_hops(cls)
            for cls in MessageClass
            if self.flit_hops(cls) > 0
        }
