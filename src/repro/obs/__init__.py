"""``repro.obs`` — zero-cost observability: epochs, event traces, invariants.

Three orthogonal probes over one simulated system, all **off by default**:

* **Epoch sampler** (:mod:`repro.obs.epoch`) — every N operations,
  snapshot selected statistics counters (delta-encoded) plus live gauges
  (directory occupancy, stash bits, effective tracking) into a per-run
  time-series; export as JSONL or CSV.
* **Event tracer** (:mod:`repro.obs.events`) — a bounded ring buffer of
  typed coherence events (miss, grant, directory eviction, stash
  spill/discovery, invalidation, LLC eviction) emitted by the L1 and home
  controllers; export as Chrome-trace/Perfetto JSON
  (:mod:`repro.obs.export`) and open the run in a trace viewer.
* **Sampled invariant checking** — run the full
  :mod:`repro.coherence.invariants` suite every N operations from inside
  the simulator's run loop (CLI ``--check-invariants N``).

The null-probe contract: with everything off, :func:`attach` returns
``None`` and **touches nothing** — the controllers keep their ``_obs is
None`` fast test, the simulator's epoch threshold never fires, no counter
is added to the statistics tree, and the golden hot-path capture stays
bit-identical (``tests/integration/test_golden_hotpath.py`` and the
``bench_hotpath`` smoke enforce this).  Even with probes *on*, the
statistics tree is unchanged: observability data lives beside the stats,
never inside them, so an observed run reports the exact numbers an
unobserved run does (``tests/obs/test_integration_obs.py`` proves it).

Usage::

    from repro.obs import ObsConfig, attach
    system = build_system(config)
    observer = attach(system, ObsConfig(epoch_interval=512,
                                        trace_capacity=65536))
    result = Simulator(system, observer=observer).run(trace)
    observer.write_all("myrun")   # myrun.epochs.jsonl/.csv, myrun.trace.json

See docs/OBSERVABILITY.md for the event schema and the overhead table.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .epoch import DEFAULT_EPOCH_KEYS, EpochSampler
from .events import (
    CAUSE_DIR_EVICT,
    CAUSE_LLC_EVICT,
    CAUSE_WRITE,
    EV_DIR_EVICT,
    EV_DISCOVERY,
    EV_GRANT,
    EV_INVAL,
    EV_LLC_EVICT,
    EV_MISS,
    EV_STASH_SPILL,
    EV_UPGRADE,
    EVENT_NAMES,
    EventRing,
    decode_args,
)
from .export import (
    chrome_trace,
    read_epochs_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_epochs_csv,
    write_epochs_jsonl,
)

__all__ = [
    "ObsConfig",
    "Observer",
    "attach",
    "EpochSampler",
    "EventRing",
    "DEFAULT_EPOCH_KEYS",
    "EVENT_NAMES",
    "decode_args",
    "chrome_trace",
    "write_chrome_trace",
    "write_epochs_jsonl",
    "write_epochs_csv",
    "read_epochs_jsonl",
    "validate_chrome_trace",
    "EV_MISS",
    "EV_GRANT",
    "EV_UPGRADE",
    "EV_DIR_EVICT",
    "EV_STASH_SPILL",
    "EV_DISCOVERY",
    "EV_INVAL",
    "EV_LLC_EVICT",
    "CAUSE_WRITE",
    "CAUSE_DIR_EVICT",
    "CAUSE_LLC_EVICT",
]

#: Default event-ring capacity when tracing is enabled without a size.
DEFAULT_TRACE_CAPACITY = 65_536


@dataclass(frozen=True)
class ObsConfig:
    """What to observe.  All-zero (the default) means observe nothing.

    Frozen and built from primitives so it crosses process boundaries —
    the sweep runner forwards one per :class:`~repro.analysis.runner.
    SweepPoint` to its worker processes.

    Attributes:
        epoch_interval: sample the epoch series every N operations
            (0 = off).
        trace_capacity: event-ring size; newest events win on overflow
            (0 = off).
        invariant_interval: run the full invariant suite every N
            operations inside the simulator loop (0 = off).
        epoch_keys: statistics keys the sampler snapshots; ``None`` uses
            :data:`~repro.obs.epoch.DEFAULT_EPOCH_KEYS`.
        out_prefix: where :meth:`Observer.write_all` (and the sweep
            runner) write exports: ``<prefix>.epochs.jsonl``,
            ``<prefix>.epochs.csv``, ``<prefix>.trace.json``.
    """

    epoch_interval: int = 0
    trace_capacity: int = 0
    invariant_interval: int = 0
    epoch_keys: Optional[Tuple[str, ...]] = None
    out_prefix: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("epoch_interval", "trace_capacity", "invariant_interval"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def enabled(self) -> bool:
        """Does this configuration observe anything at all?"""
        return bool(
            self.epoch_interval or self.trace_capacity or self.invariant_interval
        )


class Observer:
    """One attached observation session over one system.

    Holds the live probes (sampler, ring) plus the invariant cadence the
    simulator honors.  Construct via :func:`attach`, which also wires the
    event probe into the protocol controllers.
    """

    def __init__(self, system, config: ObsConfig) -> None:
        self.system = system
        self.config = config
        self.epoch_interval = config.epoch_interval
        self.invariant_interval = config.invariant_interval
        self.sampler: Optional[EpochSampler] = (
            EpochSampler(system, config.epoch_interval, config.epoch_keys)
            if config.epoch_interval
            else None
        )
        self.ring: Optional[EventRing] = (
            EventRing(config.trace_capacity) if config.trace_capacity else None
        )

    # -- simulator-facing ---------------------------------------------------

    def sample_epoch(self, op: int, clock: float) -> None:
        """Record one epoch (no-op when the sampler is off)."""
        if self.sampler is not None:
            self.sampler.sample(op, clock)

    # -- exports ------------------------------------------------------------

    def write_all(
        self,
        prefix: Optional[str] = None,
        meta: Optional[Dict] = None,
    ) -> List[Path]:
        """Write every enabled export under ``<prefix>.*``; returns paths.

        ``prefix`` falls back to ``config.out_prefix``; with neither set,
        nothing is written.
        """
        prefix = prefix if prefix is not None else self.config.out_prefix
        if not prefix:
            return []
        written: List[Path] = []
        if self.sampler is not None:
            written.append(
                write_epochs_jsonl(self.sampler, f"{prefix}.epochs.jsonl", meta)
            )
            written.append(write_epochs_csv(self.sampler, f"{prefix}.epochs.csv"))
        if self.ring is not None:
            written.append(write_chrome_trace(self.ring, f"{prefix}.trace.json", meta))
        return written

    def detach(self) -> None:
        """Unhook the event probe; the system reverts to the null probe."""
        system = self.system
        system.home._obs = None
        for controller in system.l1_controllers:
            controller._obs = None


def attach(system, config: ObsConfig) -> Optional[Observer]:
    """Attach observability to a built system; ``None`` when all-off.

    The ``None`` return *is* the null probe: nothing on the system is
    touched, so a disabled run is byte-identical — in results and in
    per-op cost — to a build that never imported this package.
    """
    if not config.enabled:
        return None
    observer = Observer(system, config)
    if observer.ring is not None:
        emit = observer.ring.append
        system.home._obs = emit
        for controller in system.l1_controllers:
            controller._obs = emit
    return observer
