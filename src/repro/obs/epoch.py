"""Epoch sampler: per-run time-series of selected statistics counters.

The end-of-run statistics tree answers *how much*; the epoch sampler
answers *when*.  Every ``interval`` operations the simulator calls
:meth:`EpochSampler.sample`, which snapshots a selected slice of the
flattened statistics tree plus a handful of live gauges (directory
occupancy, stash-bit population, effective tracking) into one epoch
record.

Counter fields are **delta-encoded**: each epoch stores only the change
since the previous epoch (zero deltas are omitted entirely), so a quiet
epoch costs a few bytes and the cumulative series is recoverable exactly
via :meth:`EpochSampler.series`.  Gauges are instantaneous values and are
stored absolute.

Epoch records are plain dicts ready for JSONL/CSV export
(:mod:`repro.obs.export`)::

    {"op": 4096, "clock": 10234.0,
     "d": {"system.protocol.l1_misses": 312.0, ...},
     "g": {"dir_occupancy": 504.0, "stash_bits": 122.0, ...}}

Sampling happens off the hot path (every N thousand ops) so it favors
clarity over speed; the only hot-path cost of an *enabled* sampler is the
simulator's epoch-threshold compare.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Counters sampled by default: the keys behind the evaluation's headline
#: metrics (miss rates, directory behaviour, invalidations, NoC traffic).
DEFAULT_EPOCH_KEYS: Tuple[str, ...] = (
    "system.protocol.accesses",
    "system.protocol.l1_misses",
    "system.protocol.coverage_misses",
    "system.protocol.upgrade_misses",
    "system.protocol.llc_misses",
    "system.protocol.latency_total",
    "system.protocol.dir_induced_invalidations",
    "system.protocol.dir_eviction_inval_msgs",
    "system.protocol.write_inval_msgs",
    "system.directory.allocations",
    "system.directory.evictions",
    "system.directory.evictions_invalidate",
    "system.directory.evictions_stash",
    "system.discovery.broadcasts",
    "system.discovery.false_discoveries",
    "system.noc.msgs.total",
    "system.noc.flit_hops.total",
)


class EpochSampler:
    """Samples one system's statistics into delta-encoded epoch records."""

    def __init__(
        self,
        system,
        interval: int,
        keys: Optional[Sequence[str]] = None,
    ) -> None:
        if interval < 1:
            raise ValueError(f"epoch interval must be >= 1, got {interval}")
        self.system = system
        self.interval = interval
        #: None means "every counter in the tree" (keys can appear lazily).
        self.keys: Optional[Tuple[str, ...]] = (
            tuple(keys) if keys is not None else DEFAULT_EPOCH_KEYS
        )
        self.epochs: List[Dict[str, object]] = []
        self._prev: Dict[str, float] = {}

    # -- sampling -----------------------------------------------------------

    def _selected(self) -> Dict[str, float]:
        flat = self.system.flat_stats()
        if self.keys is None:
            return flat
        return {key: flat[key] for key in self.keys if key in flat}

    def _gauges(self) -> Dict[str, float]:
        system = self.system
        gauges: Dict[str, float] = {}
        for name, value in system.directory.obs_gauges().items():
            gauges[f"dir_{name}"] = float(value)
        gauges["stash_bits"] = float(system.llc.stash_bit_count())
        gauges["effective_tracking"] = float(system.effective_tracking())
        return gauges

    def sample(self, op: int, clock: float) -> Dict[str, object]:
        """Record one epoch at operation ``op`` / requester clock ``clock``."""
        current = self._selected()
        prev = self._prev
        deltas = {}
        for key, value in current.items():
            delta = value - prev.get(key, 0.0)
            if delta:
                deltas[key] = delta
        record: Dict[str, object] = {
            "op": op,
            "clock": clock,
            "d": deltas,
            "g": self._gauges(),
        }
        self.epochs.append(record)
        self._prev = current
        return record

    # -- reconstruction -----------------------------------------------------

    def series(self, key: str) -> List[float]:
        """Cumulative per-epoch values of one counter (deltas re-summed)."""
        out: List[float] = []
        running = 0.0
        for epoch in self.epochs:
            running += epoch["d"].get(key, 0.0)  # type: ignore[union-attr]
            out.append(running)
        return out

    def delta_series(self, key: str) -> List[float]:
        """Per-epoch deltas of one counter (the rate-over-time view)."""
        return [epoch["d"].get(key, 0.0) for epoch in self.epochs]  # type: ignore[union-attr]

    def gauge_series(self, name: str) -> List[float]:
        """Per-epoch values of one gauge (absolute, not delta-encoded)."""
        return [epoch["g"].get(name, 0.0) for epoch in self.epochs]  # type: ignore[union-attr]

    def latest_gauges(self) -> Dict[str, float]:
        """The most recent epoch's gauges plus its op/clock position.

        The live-metrics view of an observed run: the campaign service
        surfaces this dict as Prometheus gauges
        (``repro_obs_gauge{gauge="dir_occupancy", ...}``), so ``/metrics``
        tracks directory occupancy, stash-bit population and effective
        tracking of whatever observed point finished last.  Empty before
        the first sample.
        """
        if not self.epochs:
            return {}
        latest = self.epochs[-1]
        gauges = dict(latest["g"])  # type: ignore[arg-type]
        gauges["epoch_op"] = float(latest["op"])  # type: ignore[arg-type]
        gauges["epoch_clock"] = float(latest["clock"])  # type: ignore[arg-type]
        return gauges

    def field_names(self) -> Tuple[List[str], List[str]]:
        """(counter keys, gauge names) appearing anywhere in the series."""
        counter_keys: Dict[str, None] = {}
        gauge_names: Dict[str, None] = {}
        for epoch in self.epochs:
            for key in epoch["d"]:  # type: ignore[union-attr]
                counter_keys.setdefault(key)
            for name in epoch["g"]:  # type: ignore[union-attr]
                gauge_names.setdefault(name)
        return list(counter_keys), list(gauge_names)
