"""Typed coherence events and the bounded trace ring buffer.

The tracer is the **hot half** of the observability subsystem, so the event
record is deliberately primitive: one fixed-shape tuple

    (ts, kind, core, addr, dur, arg)

* ``ts``   — requester clock at transaction start (cycles, float).  The
  simulator's timestamp-ordered interleave issues operations in
  non-decreasing clock order, so raw event timestamps are already
  monotonic; exporters still sort defensively.
* ``kind`` — one of the ``EV_*`` integer codes below.
* ``core`` — the acting core (requester, hider, invalidation target), or
  ``-1`` when no single core applies (e.g. a directory eviction).
* ``addr`` — block address the event concerns.
* ``dur``  — critical-path cycles for span-shaped events (grants,
  upgrades, discoveries); 0 for instants.
* ``arg``  — kind-specific packed integer; :func:`decode_args` unpacks it
  into the named fields of the event schema (docs/OBSERVABILITY.md).

Emission sites do ``obs = self._obs`` / ``if obs is not None: obs((...))``
where ``_obs`` is :meth:`EventRing.append` — with observability off the
probe is a single attribute load and ``None`` test, and the simulator's
hot path allocates nothing.

The ring is bounded: once ``capacity`` events are held, each append
overwrites the oldest event and bumps :attr:`EventRing.dropped`, so a
multi-million-op run traces its tail at O(capacity) memory.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

#: Event record: (ts, kind, core, addr, dur, arg).
Event = Tuple[float, int, int, int, int, int]

# ---------------------------------------------------------------- event kinds

EV_MISS = 0            # L1 miss detected (instant; arg: write|coverage flags)
EV_GRANT = 1           # home grant back at the requester (span; arg: state|write)
EV_UPGRADE = 2         # S->M write upgrade served (span; arg: 1 if hider upgrade)
EV_DIR_EVICT = 3       # invalidating directory eviction (span; arg: target count)
EV_STASH_SPILL = 4     # stash eviction: entry dropped, LLC stash bit set
EV_DISCOVERY = 5       # discovery broadcast (span; arg: found|demand|fanout)
EV_INVAL = 6           # one invalidation message (instant; arg: cause|destroyed)
EV_LLC_EVICT = 7       # LLC line eviction (instant; arg: dirty|stash flags)

#: kind code -> stable event-schema name.
EVENT_NAMES: Dict[int, str] = {
    EV_MISS: "miss",
    EV_GRANT: "grant",
    EV_UPGRADE: "upgrade",
    EV_DIR_EVICT: "dir_eviction",
    EV_STASH_SPILL: "stash_spill",
    EV_DISCOVERY: "discovery",
    EV_INVAL: "invalidation",
    EV_LLC_EVICT: "llc_eviction",
}

# arg layouts (packed at the emission sites, unpacked by decode_args):
#   EV_MISS      bit0 = write, bit1 = coverage miss
#   EV_GRANT     bit0 = write, bits1-3 = granted MESI state code
#   EV_UPGRADE   bit0 = hider upgrade (untracked stash-bit block)
#   EV_DIR_EVICT value = number of invalidation targets
#   EV_DISCOVERY bit0 = found, bits1-2 = demand (0 read / 1 write / 2 evict),
#                bits3+ = fanout (cores probed)
#   EV_INVAL     bits0-1 = cause (0 write / 1 dir eviction / 2 LLC eviction),
#                bit2 = a live copy was destroyed
#   EV_LLC_EVICT bit0 = dirty writeback to memory, bit1 = stash bit was set

#: EV_INVAL cause codes.
CAUSE_WRITE = 0
CAUSE_DIR_EVICT = 1
CAUSE_LLC_EVICT = 2

_CAUSE_NAMES = {CAUSE_WRITE: "write", CAUSE_DIR_EVICT: "dir_eviction",
                CAUSE_LLC_EVICT: "llc_eviction"}
_DEMAND_NAMES = {0: "read", 1: "write", 2: "evict"}
_STATE_NAMES = {0: "I", 1: "S", 2: "E", 3: "M", 4: "O"}


def decode_args(kind: int, arg: int) -> Dict[str, object]:
    """Unpack one event's ``arg`` field into named schema fields."""
    if kind == EV_MISS:
        return {"write": bool(arg & 1), "coverage": bool(arg & 2)}
    if kind == EV_GRANT:
        return {"write": bool(arg & 1),
                "state": _STATE_NAMES.get((arg >> 1) & 0x7, "?")}
    if kind == EV_UPGRADE:
        return {"hider_upgrade": bool(arg & 1)}
    if kind == EV_DIR_EVICT:
        return {"targets": arg}
    if kind == EV_STASH_SPILL:
        return {}
    if kind == EV_DISCOVERY:
        return {"found": bool(arg & 1),
                "demand": _DEMAND_NAMES.get((arg >> 1) & 0x3, "?"),
                "fanout": arg >> 3}
    if kind == EV_INVAL:
        return {"cause": _CAUSE_NAMES.get(arg & 0x3, "?"),
                "destroyed": bool(arg & 4)}
    if kind == EV_LLC_EVICT:
        return {"dirty": bool(arg & 1), "stash_bit": bool(arg & 2)}
    return {"raw": arg}


class EventRing:
    """Bounded ring of :data:`Event` tuples; overflow drops the oldest.

    ``append`` is the probe handed to the protocol controllers, so it is
    branch-minimal: one store, one index wrap, one counter.  ``dropped``
    counts overwritten events so exports can state exactly how much of the
    run's head was lost.
    """

    __slots__ = ("capacity", "_buf", "_next", "total")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"EventRing capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buf: List[Event] = [None] * capacity  # type: ignore[list-item]
        self._next = 0
        self.total = 0

    def append(self, event: Event) -> None:
        """Record one event, evicting the oldest when full."""
        self._buf[self._next] = event
        self._next += 1
        if self._next == self.capacity:
            self._next = 0
        self.total += 1

    @property
    def dropped(self) -> int:
        """Events overwritten because the ring was full."""
        return self.total - self.capacity if self.total > self.capacity else 0

    def __len__(self) -> int:
        return min(self.total, self.capacity)

    def events(self) -> List[Event]:
        """Retained events, oldest first."""
        if self.total <= self.capacity:
            return list(self._buf[: self.total])
        return self._buf[self._next:] + self._buf[: self._next]

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events())

    def counts_by_kind(self) -> Dict[str, int]:
        """Retained-event histogram keyed by schema name (reporting)."""
        counts: Dict[str, int] = {}
        for event in self.events():
            name = EVENT_NAMES.get(event[1], str(event[1]))
            counts[name] = counts.get(name, 0) + 1
        return counts

    def clear(self) -> None:
        """Drop every retained event and the drop counter."""
        self._buf = [None] * self.capacity  # type: ignore[list-item]
        self._next = 0
        self.total = 0
