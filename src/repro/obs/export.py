"""Exporters: epoch time-series to JSONL/CSV, event traces to Chrome JSON.

Three on-disk formats, all plain text:

* **Epoch JSONL** — first line is a ``{"type": "meta", ...}`` header
  (interval, sampled keys, system description), then one JSON object per
  epoch exactly as :class:`~repro.obs.epoch.EpochSampler` recorded it
  (delta-encoded counters under ``"d"``, absolute gauges under ``"g"``).
* **Epoch CSV** — the same series widened into columns (``d_<key>`` delta
  columns, ``g_<name>`` gauge columns) for spreadsheets and pandas.
* **Chrome trace JSON** — the event ring rendered in the Trace Event
  Format that ``chrome://tracing`` and https://ui.perfetto.dev load
  directly: span events (``ph: "X"``) for grants/upgrades/evictions/
  discoveries with their critical-path cycles as the duration, instant
  events (``ph: "i"``) for misses/invalidations/LLC evictions, one track
  per core plus a ``home`` track for home-side events, and thread-name
  metadata so the viewer labels tracks.  Timestamps are simulated cycles
  written into the microsecond field — absolute wall time is meaningless
  in a trace-driven simulator, relative position is what the viewer shows.

Every exporter sorts defensively by timestamp so the emitted files are
monotonic even if a future emission site breaks the natural order, and the
trace records ``dropped_events`` so a truncated head is visible, not
silent.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .epoch import EpochSampler
from .events import (
    EV_DIR_EVICT,
    EV_DISCOVERY,
    EV_GRANT,
    EV_INVAL,
    EV_LLC_EVICT,
    EV_MISS,
    EV_STASH_SPILL,
    EV_UPGRADE,
    EVENT_NAMES,
    EventRing,
    decode_args,
)

#: Kinds rendered as span ("X") events; everything else is an instant.
_SPAN_KINDS = frozenset({EV_GRANT, EV_UPGRADE, EV_DIR_EVICT, EV_DISCOVERY})

#: Kinds tracked on the shared "home" track rather than a core track.
_HOME_KINDS = frozenset({EV_DIR_EVICT, EV_STASH_SPILL, EV_LLC_EVICT})

#: Trace-viewer category per kind (Perfetto's filter facet).
_CATEGORIES = {
    EV_MISS: "l1",
    EV_GRANT: "l1",
    EV_UPGRADE: "l1",
    EV_DIR_EVICT: "directory",
    EV_STASH_SPILL: "directory",
    EV_DISCOVERY: "discovery",
    EV_INVAL: "protocol",
    EV_LLC_EVICT: "llc",
}

_HOME_TID = 10_000  # track id for home-side events (above any core id)


# ------------------------------------------------------------------ epochs

def epochs_meta(sampler: EpochSampler, extra: Optional[Dict] = None) -> Dict:
    """The JSONL header record describing one epoch series."""
    meta: Dict[str, object] = {
        "type": "meta",
        "format": "repro.obs.epochs",
        "version": 1,
        "interval": sampler.interval,
        "keys": list(sampler.keys) if sampler.keys is not None else None,
        "epochs": len(sampler.epochs),
    }
    if extra:
        meta.update(extra)
    return meta


def write_epochs_jsonl(
    sampler: EpochSampler,
    path: Union[str, Path],
    extra_meta: Optional[Dict] = None,
) -> Path:
    """Write meta line + one JSON object per epoch; returns the path."""
    path = Path(path)
    with open(path, "w") as handle:
        handle.write(json.dumps(epochs_meta(sampler, extra_meta)) + "\n")
        for epoch in sampler.epochs:
            handle.write(json.dumps(epoch) + "\n")
    return path


def read_epochs_jsonl(path: Union[str, Path]) -> tuple:
    """Load an epoch JSONL file; returns ``(meta, epochs)``."""
    meta: Dict = {}
    epochs: List[Dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "meta":
                meta = record
            else:
                epochs.append(record)
    return meta, epochs


def write_epochs_csv(sampler: EpochSampler, path: Union[str, Path]) -> Path:
    """Widen the epoch series into one CSV table; returns the path."""
    path = Path(path)
    counter_keys, gauge_names = sampler.field_names()
    header = (
        ["op", "clock"]
        + [f"d_{key}" for key in counter_keys]
        + [f"g_{name}" for name in gauge_names]
    )
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for epoch in sampler.epochs:
            deltas = epoch["d"]
            gauges = epoch["g"]
            writer.writerow(
                [epoch["op"], epoch["clock"]]
                + [deltas.get(key, 0.0) for key in counter_keys]
                + [gauges.get(name, 0.0) for name in gauge_names]
            )
    return path


# ------------------------------------------------------------------ traces

def chrome_trace(
    ring: EventRing,
    meta: Optional[Dict] = None,
    pid: int = 1,
) -> Dict:
    """Render the event ring as a Trace Event Format document (dict).

    The returned dict is ``json.dump``-ready; :func:`write_chrome_trace`
    is the file-writing convenience.
    """
    events = sorted(ring.events(), key=lambda event: event[0])
    trace_events: List[Dict] = []
    tracks = set()
    for ts, kind, core, addr, dur, arg in events:
        tid = _HOME_TID if kind in _HOME_KINDS or core < 0 else core
        tracks.add(tid)
        args = decode_args(kind, arg)
        args["addr"] = f"{addr:#x}"
        record: Dict[str, object] = {
            "name": EVENT_NAMES.get(kind, str(kind)),
            "cat": _CATEGORIES.get(kind, "protocol"),
            "ts": ts,
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        if kind in _SPAN_KINDS:
            record["ph"] = "X"
            record["dur"] = max(dur, 1)  # zero-width spans vanish in viewers
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)
    # Thread-name metadata so viewers label the tracks.
    for tid in sorted(tracks):
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "home" if tid == _HOME_TID else f"core {tid}"},
        })
    document: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro.obs.trace",
            "version": 1,
            "clock_unit": "cycles",
            "events_emitted": ring.total,
            "events_retained": len(ring),
            "dropped_events": ring.dropped,
            "counts_by_kind": ring.counts_by_kind(),
        },
    }
    if meta:
        document["otherData"].update(meta)  # type: ignore[union-attr]
    return document


def write_chrome_trace(
    ring: EventRing,
    path: Union[str, Path],
    meta: Optional[Dict] = None,
) -> Path:
    """Write the ring as Perfetto-loadable JSON; returns the path."""
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(chrome_trace(ring, meta), handle)
    return path


def validate_chrome_trace(document: Dict) -> List[str]:
    """Structural checks on a trace document; returns problem strings.

    Used by the CI smoke job (``tools/validate_trace.py``) and the export
    tests: required top-level keys, per-event required fields, and
    non-decreasing timestamps over the non-metadata events.
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    other = document.get("otherData", {})
    if "dropped_events" not in other:
        problems.append("otherData.dropped_events missing")
    last_ts = None
    for index, event in enumerate(events):
        if event.get("ph") == "M":
            continue
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                problems.append(f"event {index} missing {field!r}")
        if event.get("ph") == "X" and "dur" not in event:
            problems.append(f"span event {index} missing 'dur'")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"event {index} timestamp {ts} < previous {last_ts}"
                )
            last_ts = ts
    return problems
