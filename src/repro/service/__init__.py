"""Campaign service: the sweep engine as a long-running HTTP/JSON server.

``repro serve`` boots :class:`~repro.service.server.CampaignService` — an
asyncio, stdlib-only HTTP server that accepts **campaign manifests**
(full-factorial factor grids, :mod:`repro.service.manifest`), schedules
their sweep points through the pluggable dispatch backends of
:mod:`repro.analysis.dispatch`, journals every completion for crash-safe
resume (:mod:`repro.service.store`) and exposes live Prometheus metrics
(:mod:`repro.service.metrics`).  :mod:`repro.service.loadgen` is the
matching synthetic load client.  See docs/SERVICE.md for the HTTP API.
"""

from .manifest import (
    ABSOLUTE_MAX_POINTS,
    CampaignManifest,
    ManifestError,
    PointSpec,
    parse_manifest,
)
from .metrics import MetricsRegistry, parse_prometheus
from .server import (
    CampaignService,
    ServiceConfig,
    ServiceHandle,
    serve_forever,
)
from .store import CampaignStore

__all__ = [
    "ABSOLUTE_MAX_POINTS",
    "CampaignManifest",
    "CampaignService",
    "CampaignStore",
    "ManifestError",
    "MetricsRegistry",
    "PointSpec",
    "ServiceConfig",
    "ServiceHandle",
    "parse_manifest",
    "parse_prometheus",
    "serve_forever",
]
