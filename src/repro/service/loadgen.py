"""Synthetic load client for the campaign service (stdlib ``urllib`` only).

The measurement companion to :mod:`repro.service.server`: submits
generated campaign manifests over real HTTP, polls them to completion and
reports sustained throughput plus submit→result latency quantiles.  Used
three ways:

* ``benchmarks/bench_service.py`` — the BENCH_service.json numbers
  (sustained points/s, p50/p99 latency, warm vs cold cache).
* ``tools/service_smoke.py`` — the CI smoke job's client half.
* ``python -m repro.service.loadgen --url http://...`` — ad-hoc load
  against an already-running ``repro serve``.

All requests use ``Connection: close`` (matching the server) and every
``/metrics`` fetch round-trips through the strict parser, so a format
regression fails the load run loudly.
"""

from __future__ import annotations

import argparse
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .metrics import parse_prometheus

#: Default per-campaign completion timeout (seconds).
DEFAULT_TIMEOUT = 300.0


class ServiceClientError(RuntimeError):
    """An HTTP call to the campaign service failed."""


# --------------------------------------------------------------- HTTP client

def _request(
    base_url: str,
    path: str,
    body: Optional[Dict] = None,
    timeout: float = 30.0,
) -> Tuple[int, bytes]:
    """One request against the service; returns (status, body bytes)."""
    url = base_url.rstrip("/") + path
    data = None
    method = "GET"
    headers = {}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        method = "POST"
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, method=method, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()
    except (urllib.error.URLError, OSError) as exc:
        raise ServiceClientError(f"{method} {url}: {exc}") from None


def get_json(base_url: str, path: str, timeout: float = 30.0) -> Dict:
    """GET a JSON endpoint; raises on non-2xx."""
    status, raw = _request(base_url, path, timeout=timeout)
    payload = json.loads(raw.decode("utf-8"))
    if status >= 400:
        raise ServiceClientError(f"GET {path} -> {status}: {payload}")
    return payload


def post_json(base_url: str, path: str, body: Dict, timeout: float = 30.0) -> Dict:
    """POST JSON; returns the decoded response, raises on non-2xx."""
    status, raw = _request(base_url, path, body=body, timeout=timeout)
    payload = json.loads(raw.decode("utf-8"))
    if status >= 400:
        raise ServiceClientError(f"POST {path} -> {status}: {payload}")
    return payload


def fetch_metrics(base_url: str, timeout: float = 30.0) -> Dict:
    """GET ``/metrics`` and parse it strictly; raises on junk output."""
    status, raw = _request(base_url, "/metrics", timeout=timeout)
    if status != 200:
        raise ServiceClientError(f"GET /metrics -> {status}")
    return parse_prometheus(raw.decode("utf-8"))


def wait_campaign(
    base_url: str,
    campaign_id: str,
    timeout: float = DEFAULT_TIMEOUT,
    poll: float = 0.2,
) -> Dict:
    """Poll one campaign until it reaches a terminal state."""
    deadline = time.monotonic() + timeout
    while True:
        status = get_json(base_url, f"/campaigns/{campaign_id}")
        if status["status"] in ("done", "failed", "cancelled"):
            return status
        if time.monotonic() >= deadline:
            raise ServiceClientError(
                f"campaign {campaign_id} still {status['status']!r} "
                f"after {timeout:.0f}s"
            )
        time.sleep(poll)


# ------------------------------------------------------------ load generation

def make_manifest(
    index: int,
    kinds: Tuple[str, ...] = ("sparse", "stash"),
    ratios: Tuple[float, ...] = (0.5, 0.125),
    workload: str = "mix",
    ops: int = 300,
    cores: int = 16,
    seed: int = 1,
) -> Dict:
    """One synthetic campaign manifest; ``index`` shifts the seed so each
    generated campaign is a distinct (cold) parameterization."""
    return {
        "name": f"loadgen-{index}",
        "factors": {
            "kind": list(kinds),
            "ratio": list(ratios),
            "workload": [workload],
            "ops": [ops],
            "cores": [cores],
            "seed": [seed + index],
        },
    }


@dataclass
class LoadReport:
    """Aggregate result of one load run."""

    campaigns: int = 0
    points: int = 0
    computed: int = 0
    cache_hits: int = 0
    resumed: int = 0
    failed: int = 0
    wall_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)

    @property
    def points_per_second(self) -> float:
        return self.points / self.wall_seconds if self.wall_seconds else 0.0

    def quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        data = sorted(self.latencies)
        rank = min(len(data) - 1, max(0, int(q * len(data))))
        return data[rank]

    def to_dict(self) -> Dict:
        return {
            "campaigns": self.campaigns,
            "points": self.points,
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "resumed": self.resumed,
            "failed": self.failed,
            "wall_seconds": round(self.wall_seconds, 6),
            "points_per_second": round(self.points_per_second, 3),
            "latency_p50_seconds": round(self.quantile(0.50), 6),
            "latency_p99_seconds": round(self.quantile(0.99), 6),
        }


def run_load(
    base_url: str,
    campaigns: int = 4,
    ops: int = 300,
    seed: int = 1,
    timeout: float = DEFAULT_TIMEOUT,
    poll: float = 0.1,
) -> LoadReport:
    """Submit ``campaigns`` synthetic manifests back-to-back and poll all
    of them to completion.

    Submissions are not throttled — the service's queue and work-stealing
    batches absorb the burst — so the report's ``points_per_second`` is
    the sustained service throughput, and each campaign's submit→done
    wall time feeds the latency quantiles.
    """
    report = LoadReport()
    start = time.monotonic()
    submitted: List[Tuple[str, float]] = []
    for index in range(campaigns):
        manifest = make_manifest(index, ops=ops, seed=seed)
        response = post_json(base_url, "/campaigns", manifest, timeout=timeout)
        submitted.append((response["id"], time.monotonic()))
    for campaign_id, submit_time in submitted:
        status = wait_campaign(base_url, campaign_id, timeout=timeout, poll=poll)
        report.campaigns += 1
        report.points += status["total_points"]
        report.computed += status["executed"]
        report.cache_hits += status["cache_hits"]
        report.resumed += status["resumed"]
        report.failed += status["counts"]["failed"]
        report.latencies.append(time.monotonic() - submit_time)
    report.wall_seconds = time.monotonic() - start
    # Every load run exercises the metrics path: junk output fails loudly.
    fetch_metrics(base_url, timeout=timeout)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """Ad-hoc load against a running service (prints the report JSON)."""
    parser = argparse.ArgumentParser(
        description="Synthetic load against a running repro campaign service"
    )
    parser.add_argument("--url", required=True, help="service base URL")
    parser.add_argument("--campaigns", type=int, default=4)
    parser.add_argument("--ops", type=int, default=300)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT)
    args = parser.parse_args(argv)
    report = run_load(
        args.url,
        campaigns=args.campaigns,
        ops=args.ops,
        seed=args.seed,
        timeout=args.timeout,
    )
    print(json.dumps(report.to_dict(), indent=2))
    return 0 if report.failed == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
