"""Campaign manifests: run-table style factor grids over sweep points.

A **campaign manifest** is the unit of work the campaign service accepts:
a JSON object describing a full-factorial grid (factors x levels x
replicates) that expands deterministically into
:class:`~repro.analysis.runner.SweepPoint` objects.  The same manifest
always expands to the same points in the same order, and its
content-addressed :attr:`~CampaignManifest.campaign_id` is the resume
handle: re-submitting a manifest after a crash re-runs only the points
its journal has not recorded.

Manifest schema (all fields optional except at least one factor level)::

    {
      "name": "nightly-f3",            # display label (folded into the id)
      "factors": {
        "kind":     ["sparse", "stash"],
        "ratio":    [1.0, 0.5, 0.25, 0.125],
        "workload": ["mix"],
        "cores":    [16],
        "ops":      [2000],
        "engine":   ["interp"],
        "seed":     [1]
      },
      "replicates": 3,                 # re-run the grid with shifted seeds
      "seed_stride": 1000,             # replicate r uses seed + r*stride
      "config": {"moesi": false, "dir_ways": 8},   # constant overrides
      "observe": {"epoch": 0}          # >0: run observed, in-process only
    }

Expansion order is the canonical factor order (:data:`FACTOR_ORDER`) with
replicates and seeds innermost, so point index ``i`` refers to the same
parameterization on every host and restart.  Validation is eager and
total: unknown factors, unknown levels, malformed types and oversized
grids all raise :class:`ManifestError` before anything is scheduled.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.config import DirectoryKind, SharerFormat
from ..common.errors import ReproError
from ..obs import ObsConfig
from ..workloads.suite import workload_names

#: Canonical factor order: the outer-to-inner nesting of the expansion.
FACTOR_ORDER: Tuple[str, ...] = (
    "kind", "ratio", "workload", "cores", "ops", "engine", "seed",
)

#: Default level list for every omitted factor.
FACTOR_DEFAULTS: Dict[str, tuple] = {
    "kind": ("stash",),
    "ratio": (0.125,),
    "workload": ("mix",),
    "cores": (16,),
    "ops": (2000,),
    "engine": ("interp",),
    "seed": (1,),
}

#: Execution engines a manifest may request.
ENGINES: Tuple[str, ...] = ("interp", "vector", "parallel")

#: Constant config overrides a manifest may carry (-> make_config kwargs).
CONFIG_OVERRIDES: Tuple[str, ...] = (
    "moesi", "dir_ways", "sharer_format", "clean_notification",
    "private_l2", "discovery_filter_slots",
)

#: Hard ceiling on grid size regardless of server settings.
ABSOLUTE_MAX_POINTS = 1_000_000


class ManifestError(ReproError):
    """A campaign manifest failed validation."""


@dataclass(frozen=True)
class PointSpec:
    """One expanded grid point: its factor levels plus the runnable point.

    ``index`` is the point's stable position in the campaign (the journal
    key); ``labels`` is the JSON-able factor assignment the status API
    reports.
    """

    index: int
    labels: Dict[str, object]
    point: object  # SweepPoint (typed loosely to keep import layering thin)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ManifestError(message)


def _as_level_list(name: str, raw) -> tuple:
    """Normalize one factor's levels to a non-empty tuple."""
    if isinstance(raw, (str, int, float)):
        raw = [raw]
    _require(
        isinstance(raw, (list, tuple)) and len(raw) > 0,
        f"factor {name!r} must be a non-empty list of levels",
    )
    return tuple(raw)


def _validate_levels(name: str, levels: tuple) -> tuple:
    """Type- and domain-check one factor's levels; returns canonical values."""
    from ..analysis.experiments import MESH_SHAPES

    out = []
    for level in levels:
        if name == "kind":
            _require(isinstance(level, str), "kind levels must be strings")
            try:
                out.append(DirectoryKind(level).value)
            except ValueError:
                raise ManifestError(
                    f"unknown directory kind {level!r}; known: "
                    f"{[k.value for k in DirectoryKind]}"
                ) from None
        elif name == "ratio":
            _require(
                isinstance(level, (int, float)) and not isinstance(level, bool)
                and level > 0,
                f"ratio levels must be positive numbers, got {level!r}",
            )
            out.append(float(level))
        elif name == "workload":
            _require(
                isinstance(level, str) and level in workload_names(),
                f"unknown workload {level!r}; known: {workload_names()}",
            )
            out.append(level)
        elif name == "cores":
            _require(
                isinstance(level, int) and not isinstance(level, bool),
                f"cores levels must be integers, got {level!r}",
            )
            _require(
                level in MESH_SHAPES,
                f"unsupported core count {level}; supported: "
                f"{sorted(MESH_SHAPES)}",
            )
            out.append(level)
        elif name == "ops":
            _require(
                isinstance(level, int) and not isinstance(level, bool)
                and level >= 1,
                f"ops levels must be integers >= 1, got {level!r}",
            )
            out.append(level)
        elif name == "engine":
            _require(
                isinstance(level, str) and level in ENGINES,
                f"unknown engine {level!r}; known: {list(ENGINES)}",
            )
            out.append(level)
        elif name == "seed":
            _require(
                isinstance(level, int) and not isinstance(level, bool),
                f"seed levels must be integers, got {level!r}",
            )
            out.append(level)
    return tuple(out)


def _validate_overrides(raw: Dict) -> Dict[str, object]:
    """Check the constant ``config`` overrides block."""
    _require(isinstance(raw, dict), "'config' must be an object")
    out: Dict[str, object] = {}
    for key, value in raw.items():
        _require(
            key in CONFIG_OVERRIDES,
            f"unknown config override {key!r}; known: {list(CONFIG_OVERRIDES)}",
        )
        if key in ("moesi", "clean_notification", "private_l2"):
            _require(isinstance(value, bool), f"override {key!r} must be a bool")
        elif key in ("dir_ways", "discovery_filter_slots"):
            _require(
                isinstance(value, int) and not isinstance(value, bool)
                and value >= 0,
                f"override {key!r} must be a non-negative integer",
            )
        elif key == "sharer_format":
            try:
                SharerFormat(value)
            except ValueError:
                raise ManifestError(
                    f"unknown sharer_format {value!r}; known: "
                    f"{[f.value for f in SharerFormat]}"
                ) from None
        out[key] = value
    return out


@dataclass(frozen=True)
class CampaignManifest:
    """A validated campaign: factor grid, replicates and constant overrides.

    Construct via :meth:`from_dict` (which validates) rather than
    directly; :meth:`to_dict` round-trips losslessly, and
    :meth:`canonical_json` / :attr:`campaign_id` are stable across
    processes and hosts for identical manifests.
    """

    name: str = "campaign"
    factors: Dict[str, tuple] = field(default_factory=dict)
    replicates: int = 1
    seed_stride: int = 1000
    config: Dict[str, object] = field(default_factory=dict)
    observe_epoch: int = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignManifest":
        """Validate and build a manifest from parsed JSON."""
        _require(isinstance(data, dict), "manifest must be a JSON object")
        known_top = {"name", "factors", "replicates", "seed_stride", "config",
                     "observe"}
        unknown = set(data) - known_top
        _require(
            not unknown,
            f"unknown manifest fields {sorted(unknown)}; known: "
            f"{sorted(known_top)}",
        )
        name = data.get("name", "campaign")
        _require(
            isinstance(name, str) and 0 < len(name) <= 128,
            "'name' must be a non-empty string (<= 128 chars)",
        )
        raw_factors = data.get("factors", {})
        _require(isinstance(raw_factors, dict), "'factors' must be an object")
        unknown_factors = set(raw_factors) - set(FACTOR_ORDER)
        _require(
            not unknown_factors,
            f"unknown factors {sorted(unknown_factors)}; known: "
            f"{list(FACTOR_ORDER)}",
        )
        factors: Dict[str, tuple] = {}
        for factor in FACTOR_ORDER:
            levels = _as_level_list(
                factor, raw_factors.get(factor, list(FACTOR_DEFAULTS[factor]))
            )
            factors[factor] = _validate_levels(factor, levels)
        replicates = data.get("replicates", 1)
        _require(
            isinstance(replicates, int) and not isinstance(replicates, bool)
            and replicates >= 1,
            "'replicates' must be an integer >= 1",
        )
        seed_stride = data.get("seed_stride", 1000)
        _require(
            isinstance(seed_stride, int) and not isinstance(seed_stride, bool)
            and seed_stride >= 1,
            "'seed_stride' must be an integer >= 1",
        )
        overrides = _validate_overrides(data.get("config", {}))
        observe = data.get("observe", {})
        _require(isinstance(observe, dict), "'observe' must be an object")
        _require(
            set(observe) <= {"epoch"},
            "'observe' supports only the 'epoch' key",
        )
        observe_epoch = observe.get("epoch", 0)
        _require(
            isinstance(observe_epoch, int) and not isinstance(observe_epoch, bool)
            and observe_epoch >= 0,
            "'observe.epoch' must be an integer >= 0",
        )
        return cls(
            name=name,
            factors=factors,
            replicates=replicates,
            seed_stride=seed_stride,
            config=overrides,
            observe_epoch=observe_epoch,
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-able form; ``from_dict(to_dict(m)) == m``."""
        out: Dict[str, object] = {
            "name": self.name,
            "factors": {name: list(levels) for name, levels in self.factors.items()},
            "replicates": self.replicates,
            "seed_stride": self.seed_stride,
        }
        if self.config:
            out["config"] = dict(self.config)
        if self.observe_epoch:
            out["observe"] = {"epoch": self.observe_epoch}
        return out

    def canonical_json(self) -> str:
        """Stable (sorted-key, no-whitespace) encoding — the identity."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def campaign_id(self) -> str:
        """Content-addressed id: identical manifests resume each other."""
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()[:16]

    # -- expansion ----------------------------------------------------------

    def grid_size(self) -> int:
        """Number of points the manifest expands to (before any dedup)."""
        size = self.replicates
        for factor in FACTOR_ORDER:
            size *= len(self.factors[factor])
        return size

    def expand(self, max_points: Optional[int] = None) -> List[PointSpec]:
        """Deterministically expand the grid to runnable sweep points.

        ``max_points`` (and the hard :data:`ABSOLUTE_MAX_POINTS` ceiling)
        reject oversized grids *before* any config is built.  The order is
        total and stable: :data:`FACTOR_ORDER` outer-to-inner, then
        replicate, then seed.
        """
        from ..analysis.experiments import make_config
        from ..analysis.runner import SweepPoint

        limit = ABSOLUTE_MAX_POINTS if max_points is None else min(
            int(max_points), ABSOLUTE_MAX_POINTS
        )
        size = self.grid_size()
        if size > limit:
            raise ManifestError(
                f"campaign expands to {size} points, over the limit of {limit}"
            )
        obs = (
            ObsConfig(epoch_interval=self.observe_epoch)
            if self.observe_epoch
            else None
        )
        specs: List[PointSpec] = []
        outer = [self.factors[f] for f in FACTOR_ORDER[:-1]]  # all but seed
        for kind, ratio, workload, cores, ops, engine in itertools.product(*outer):
            for replicate in range(self.replicates):
                for base_seed in self.factors["seed"]:
                    seed = base_seed + replicate * self.seed_stride
                    config = make_config(
                        kind=DirectoryKind(kind),
                        ratio=ratio,
                        num_cores=cores,
                        seed=seed,
                        **self._make_config_kwargs(),
                    )
                    point = SweepPoint(
                        workload, config, ops, seed, obs=obs, engine=engine
                    )
                    labels = {
                        "kind": kind, "ratio": ratio, "workload": workload,
                        "cores": cores, "ops": ops, "engine": engine,
                        "seed": seed, "replicate": replicate,
                    }
                    specs.append(PointSpec(len(specs), labels, point))
        return specs

    def _make_config_kwargs(self) -> Dict[str, object]:
        kwargs = dict(self.config)
        if "sharer_format" in kwargs:
            kwargs["sharer_format"] = SharerFormat(kwargs["sharer_format"])
        return kwargs


def parse_manifest(raw: bytes) -> CampaignManifest:
    """Parse + validate raw JSON bytes (the HTTP request body path)."""
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ManifestError(f"manifest is not valid JSON: {exc}") from None
    return CampaignManifest.from_dict(data)
