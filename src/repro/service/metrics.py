"""Minimal Prometheus-text-format metrics: counters, gauges, summaries.

Stdlib-only instrumentation for the campaign service's ``GET /metrics``
endpoint.  Three metric kinds cover everything the service exposes:

* :class:`Counter` — monotonically increasing, optionally labeled
  (``repro_points_completed_total{kind="stash",source="computed"}``).
* :class:`Gauge` — set-to-current-value, optionally labeled; a gauge can
  also be *callback-backed* (:meth:`MetricsRegistry.gauge_func`), read at
  render time — queue depth, worker utilization and cache hit rates are
  all live views, not pushed samples.
* :class:`Summary` — sliding-window quantiles (p50/p90/p99) plus
  ``_count``/``_sum``, for submit→result latency.

:meth:`MetricsRegistry.render` emits the `Prometheus text exposition
format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(``# HELP`` / ``# TYPE`` headers, escaped label values, one sample per
line); :func:`parse_prometheus` is the matching strict parser — tests,
the load generator and the CI smoke job all round-trip through it, so a
format regression fails loudly.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Summary",
    "parse_prometheus",
    "render_gauge_dict",
]

#: Quantiles a Summary renders.
SUMMARY_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

LabelItems = Tuple[Tuple[str, str], ...]


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(items: LabelItems) -> str:
    if not items:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"' for name, value in items)
    return "{" + inner + "}"


def _items_for(labelnames: Sequence[str], labels: Dict[str, object]) -> LabelItems:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {sorted(labelnames)}, got {sorted(labels)}"
        )
    return tuple((name, str(labels[name])) for name in labelnames)


class _Metric:
    """Shared storage for one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self.values: Dict[LabelItems, float] = {}
        self._lock = threading.Lock()

    def samples(self) -> List[Tuple[str, LabelItems, float]]:
        """(suffix, label items, value) rows to render."""
        with self._lock:
            return [("", items, value) for items, value in self.values.items()]


class Counter(_Metric):
    """Monotonic counter; ``inc`` with label kwargs when labeled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        items = _items_for(self.labelnames, labels)
        with self._lock:
            self.values[items] = self.values.get(items, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value for one label set (0 when never incremented)."""
        items = _items_for(self.labelnames, labels)
        with self._lock:
            return self.values.get(items, 0.0)


class Gauge(_Metric):
    """Set-to-current-value gauge; optionally callback-backed."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        func: Optional[Callable[[], float]] = None,
    ):
        super().__init__(name, help_text, labelnames)
        self._func = func

    def set(self, value: float, **labels) -> None:
        if self._func is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        items = _items_for(self.labelnames, labels)
        with self._lock:
            self.values[items] = float(value)

    def samples(self) -> List[Tuple[str, LabelItems, float]]:
        if self._func is not None:
            return [("", (), float(self._func()))]
        return super().samples()


class Summary(_Metric):
    """Sliding-window quantiles over the most recent ``window`` observations.

    Prometheus-style output: ``name{quantile="0.5"}`` per quantile plus
    ``name_count`` (total observations ever) and ``name_sum``.  The
    window keeps the quantiles current under sustained load instead of
    averaging over the process lifetime.
    """

    kind = "summary"

    def __init__(self, name: str, help_text: str, window: int = 1024):
        super().__init__(name, help_text, ())
        self._window: deque = deque(maxlen=max(1, int(window)))
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._window.append(float(value))
            self._count += 1
            self._sum += float(value)

    def quantile(self, q: float) -> float:
        """Windowed quantile by nearest-rank (NaN when empty)."""
        with self._lock:
            data = sorted(self._window)
        if not data:
            return float("nan")
        rank = min(len(data) - 1, max(0, math.ceil(q * len(data)) - 1))
        return data[rank]

    def samples(self) -> List[Tuple[str, LabelItems, float]]:
        rows: List[Tuple[str, LabelItems, float]] = [
            ("", (("quantile", str(q)),), self.quantile(q))
            for q in SUMMARY_QUANTILES
        ]
        with self._lock:
            rows.append(("_count", (), float(self._count)))
            rows.append(("_sum", (), self._sum))
        return rows


class MetricsRegistry:
    """Named metrics with one render point (the ``/metrics`` endpoint)."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Register a counter family."""
        return self._register(Counter(name, help_text, labelnames))  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Register a settable gauge family."""
        return self._register(Gauge(name, help_text, labelnames))  # type: ignore[return-value]

    def gauge_func(
        self, name: str, help_text: str, func: Callable[[], float]
    ) -> Gauge:
        """Register a callback-backed gauge (read at render time)."""
        return self._register(Gauge(name, help_text, func=func))  # type: ignore[return-value]

    def summary(self, name: str, help_text: str, window: int = 1024) -> Summary:
        """Register a sliding-window summary."""
        return self._register(Summary(name, help_text, window))  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Metric]:
        """Look up a registered metric by name."""
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The full Prometheus text exposition (trailing newline included)."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: List[str] = []
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            samples = metric.samples()
            if not samples and metric.kind in ("counter", "gauge") and not metric.labelnames:
                samples = [("", (), 0.0)]
            for suffix, items, value in samples:
                lines.append(
                    f"{metric.name}{suffix}{_label_str(items)} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + "\n"


def render_gauge_dict(
    name: str,
    help_text: str,
    gauges: Dict[str, float],
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render a plain ``{gauge_name: value}`` dict as one labeled family.

    The bridge from :meth:`repro.obs.epoch.EpochSampler.latest_gauges` to
    the exposition format: every entry becomes
    ``<name>{gauge="<key>",...} value``.
    """
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} gauge"]
    base = tuple((extra_labels or {}).items())
    for key in sorted(gauges):
        items: LabelItems = (("gauge", str(key)),) + tuple(
            (k, str(v)) for k, v in base
        )
        lines.append(f"{name}{_label_str(items)} {_format_value(gauges[key])}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, Dict[LabelItems, float]]:
    """Strict parser for the exposition format; raises ValueError on junk.

    Returns ``{metric_name: {label_items: value}}`` (summary quantile and
    ``_count``/``_sum`` rows appear under their full sample name).  Used
    by tests, the load generator and the CI smoke job to assert the
    service's output actually parses.
    """
    out: Dict[str, Dict[LabelItems, float]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: no sample value in {line!r}")
        try:
            value = float(value_part)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {value_part!r}"
            ) from None
        name_part = name_part.strip()
        labels: List[Tuple[str, str]] = []
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError(f"line {lineno}: unterminated labels in {line!r}")
            name, _, label_blob = name_part.partition("{")
            label_blob = label_blob[:-1]
            if label_blob:
                for chunk in _split_labels(label_blob, lineno):
                    key, eq, raw = chunk.partition("=")
                    if not eq or not (raw.startswith('"') and raw.endswith('"')):
                        raise ValueError(
                            f"line {lineno}: malformed label {chunk!r}"
                        )
                    labels.append((key, _unescape_label(raw[1:-1])))
        else:
            name = name_part
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        out.setdefault(name, {})[tuple(labels)] = value
    return out


def _split_labels(blob: str, lineno: int) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    chunks: List[str] = []
    current = []
    in_quotes = False
    escaped = False
    for char in blob:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            chunks.append("".join(current))
            current = []
            continue
        current.append(char)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated quote in labels")
    if current:
        chunks.append("".join(current))
    return chunks


def _unescape_label(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        char = value[i]
        if char == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt in ("n", '"', "\\"):
                out.append({"n": "\n", '"': '"', "\\": "\\"}[nxt])
                i += 2
                continue
        out.append(char)
        i += 1
    return "".join(out)
