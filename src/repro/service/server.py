"""Asyncio campaign service: the sweep runner as a long-running HTTP server.

``repro serve`` promotes the one-shot sweep CLI into a persistent,
stdlib-only service.  Clients POST **campaign manifests**
(:mod:`repro.service.manifest`); the service expands them to sweep
points, satisfies what it can from the campaign journal and the
content-addressed result cache, and schedules the rest through a
pluggable :class:`~repro.analysis.dispatch.DispatchBackend` in
trace-key-grouped, work-stealing batches.  Every completed point is
journaled (:mod:`repro.service.store`) and cached atomically *as it
finishes*, so a killed server restarted on the same manifest re-runs
only the missing points.

HTTP API (JSON unless noted; see docs/SERVICE.md):

========================== ==============================================
``POST /campaigns``        submit a manifest; idempotent per campaign id
``GET /campaigns``         list campaigns with per-state counts
``GET /campaigns/<id>``    full status including per-point states
``GET /campaigns/<id>/stream``  NDJSON: one line per completed point,
                           streamed live until the campaign finishes
``GET /metrics``           Prometheus text format (queue depth, points/s,
                           cache hit rates, per-kind throughput, worker
                           utilization, latency quantiles, obs gauges)
``GET /healthz``           liveness probe
``GET /``                  service + backend description
========================== ==============================================

Observed campaigns (manifest ``observe.epoch > 0``) run their points
in-process so the freshest epoch sample's gauges
(:meth:`~repro.obs.epoch.EpochSampler.latest_gauges`) are surfaced at
``/metrics`` as ``repro_obs_gauge{gauge=...,campaign=...}``.

The HTTP layer is deliberately tiny: HTTP/1.1 request parsing over
asyncio streams, ``Connection: close`` per request, no TLS, bind to
loopback by default — an internal lab service, not an internet face.
"""

from __future__ import annotations

import asyncio
import json
import math
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..analysis import dispatch as dispatch_mod
from ..analysis import runner
from ..obs import attach
from ..sim.simulator import run_trace
from ..sim.system import build_system
from ..workloads import store as trace_store
from .manifest import CampaignManifest, ManifestError, PointSpec, parse_manifest
from .metrics import MetricsRegistry, render_gauge_dict
from .store import CampaignStore

#: Service API version reported at ``GET /``.
SERVICE_VERSION = 1

#: Backends the async service accepts (serial would block the event loop).
SERVICE_BACKENDS = ("inproc", "pool")

#: Sliding window (seconds) for the points/s gauge.
RATE_WINDOW_SECONDS = 30.0


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to boot.

    ``workers=0`` resolves to the runner's clamped default;
    ``cache_dir=None`` uses the configured runner cache root;
    ``batch_size=0`` picks the work-stealing split (several batches per
    worker, so idle workers pull queued batches).
    """

    host: str = "127.0.0.1"
    port: int = 8765
    backend: str = "pool"
    workers: int = 0
    cache_dir: Optional[str] = None
    cache_enabled: bool = True
    trace_cache_enabled: bool = True
    batch_size: int = 0
    max_points: int = 100_000

    def __post_init__(self) -> None:
        if self.backend not in SERVICE_BACKENDS:
            raise ValueError(
                f"service backend must be one of {list(SERVICE_BACKENDS)}, "
                f"got {self.backend!r} (serial dispatch would block the "
                "event loop)"
            )


class Campaign:
    """Live state of one submitted campaign (service-internal)."""

    def __init__(self, manifest: CampaignManifest, specs: List[PointSpec]):
        self.manifest = manifest
        self.id = manifest.campaign_id
        self.specs = specs
        n = len(specs)
        self.states: List[str] = ["pending"] * n
        self.sources: List[Optional[str]] = [None] * n
        self.summaries: List[Optional[Dict]] = [None] * n
        self.seconds: List[float] = [0.0] * n
        self.errors: List[Optional[str]] = [None] * n
        self.status = "queued"
        self.error: Optional[str] = None
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.submit_monotonic = time.monotonic()
        self.resumed = 0      # points satisfied from the journal at submit
        self.cache_hits = 0   # points satisfied from the result cache
        self.executed = 0     # points actually simulated by this process
        self.events: List[Dict] = []   # completion records, stream order
        self.cond = asyncio.Condition()

    def counts(self) -> Dict[str, int]:
        """Per-state point counts."""
        out = {"pending": 0, "running": 0, "done": 0, "failed": 0}
        for state in self.states:
            out[state] += 1
        return out

    def done(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    def summary_dict(self) -> Dict:
        """The list-view JSON shape."""
        return {
            "id": self.id,
            "name": self.manifest.name,
            "status": self.status,
            "total_points": len(self.specs),
            "counts": self.counts(),
            "resumed": self.resumed,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
        }

    def status_dict(self, include_points: bool = True) -> Dict:
        """The detail-view JSON shape (per-point states included)."""
        out = self.summary_dict()
        out["manifest"] = self.manifest.to_dict()
        if include_points:
            out["points"] = [
                {
                    "index": spec.index,
                    "labels": spec.labels,
                    "state": self.states[i],
                    "source": self.sources[i],
                    "seconds": self.seconds[i],
                    "summary": self.summaries[i],
                    "error": self.errors[i],
                }
                for i, spec in enumerate(self.specs)
            ]
        return out


def _run_observed_point(
    point, spool_dir: str, spool_enabled: bool
) -> Tuple[object, object, float]:
    """Execute one observed point in-process; returns (result, observer, s).

    Runs on an executor thread — observed points cannot cross a process
    boundary and come back with a live :class:`~repro.obs.Observer`, which
    is exactly what the ``/metrics`` obs gauges need.
    """
    start = time.perf_counter()
    trace = trace_store.get_packed_trace(
        point.workload,
        point.config.num_cores,
        point.ops_per_core,
        seed=point.seed,
        block_bytes=point.config.block_bytes,
        root=spool_dir,
        disk_enabled=spool_enabled,
    )
    system = build_system(point.config)
    observer = attach(system, point.obs)
    result = run_trace(point.config, trace, system=system, observer=observer)
    return result, observer, time.perf_counter() - start


class CampaignService:
    """Schedules campaigns over a dispatch backend; owns journal + metrics."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        cache_dir = self.config.cache_dir or str(runner.configure()["cache_dir"])
        self.cache_dir = cache_dir
        self.disk = runner.DiskCache(cache_dir)
        self.spool_dir = str(runner.trace_spool_root(cache_dir))
        self.store = CampaignStore(runner.campaigns_root(cache_dir))
        workers = self.config.workers or runner._effective_workers(None)
        self.backend = dispatch_mod.make_backend(self.config.backend, workers)
        self.campaigns: Dict[str, Campaign] = {}
        self._tasks: Dict[str, asyncio.Task] = {}
        self.registry = registry or MetricsRegistry()
        self._completions: Deque[float] = deque(maxlen=4096)
        self._obs_campaign: Optional[str] = None
        self._obs_gauges: Dict[str, float] = {}
        self._build_metrics()

    # -- metrics ------------------------------------------------------------

    def _build_metrics(self) -> None:
        r = self.registry
        self.m_campaigns = r.counter(
            "repro_campaigns_submitted_total",
            "Campaign manifests accepted", ("resumed",),
        )
        self.m_points = r.counter(
            "repro_points_completed_total",
            "Completed sweep points by directory kind and source",
            ("kind", "source"),
        )
        self.m_failed = r.counter(
            "repro_points_failed_total", "Sweep points that raised",
        )
        self.m_http = r.counter(
            "repro_http_requests_total", "HTTP requests served",
            ("method", "code"),
        )
        self.m_latency = r.summary(
            "repro_point_latency_seconds",
            "Campaign-submit to point-result latency",
        )
        r.gauge_func(
            "repro_queue_depth",
            "Sweep points pending or running across campaigns",
            self._queue_depth,
        )
        r.gauge_func(
            "repro_campaigns_active",
            "Campaigns currently queued or running",
            lambda: sum(1 for c in self.campaigns.values() if not c.done()),
        )
        r.gauge_func(
            "repro_points_per_second",
            f"Point completion rate over the last {RATE_WINDOW_SECONDS:g}s",
            self._points_per_second,
        )
        r.gauge_func(
            "repro_workers", "Dispatch backend worker slots",
            lambda: self.backend.workers,
        )
        r.gauge_func(
            "repro_worker_utilization",
            "Fraction of backend workers with a batch in flight",
            lambda: self.backend.utilization,
        )
        r.gauge_func(
            "repro_dispatch_in_flight", "Batches submitted but not finished",
            lambda: self.backend.in_flight,
        )
        # Cache layers, read live from the runner/trace-store counters.
        c, t = runner.counters, trace_store.counters
        r.gauge_func(
            "repro_result_cache_hit_rate",
            "Result lookups served from memo or disk",
            lambda: c.hit_rate,
        )
        r.gauge_func(
            "repro_result_cache_memo_hits", "Result memo hits", lambda: c.memo_hits
        )
        r.gauge_func(
            "repro_result_cache_disk_hits", "Result disk-cache hits",
            lambda: c.disk_hits,
        )
        r.gauge_func(
            "repro_result_cache_computed", "Results computed (cache misses)",
            lambda: c.computed,
        )
        r.gauge_func(
            "repro_trace_cache_hit_rate",
            "Trace lookups served from memo or spool",
            lambda: (
                (t.memo_hits + t.disk_hits) / t.lookups if t.lookups else 0.0
            ),
        )
        r.gauge_func(
            "repro_trace_cache_generated", "Workload traces generated",
            lambda: t.generated,
        )

    def _queue_depth(self) -> int:
        depth = 0
        for campaign in self.campaigns.values():
            counts = campaign.counts()
            depth += counts["pending"] + counts["running"]
        return depth

    def _points_per_second(self) -> float:
        now = time.monotonic()
        recent = sum(1 for t in self._completions if now - t <= RATE_WINDOW_SECONDS)
        return recent / RATE_WINDOW_SECONDS

    def metrics_text(self) -> str:
        """The full ``/metrics`` payload (registry + obs gauges)."""
        text = self.registry.render()
        if self._obs_gauges and self._obs_campaign:
            text += render_gauge_dict(
                "repro_obs_gauge",
                "Latest observed-point epoch gauges (freshest run wins)",
                self._obs_gauges,
                {"campaign": self._obs_campaign},
            )
        return text

    # -- submission ---------------------------------------------------------

    async def submit(self, manifest: CampaignManifest) -> Tuple[Campaign, bool]:
        """Accept (or re-attach to) a campaign; returns (campaign, created).

        Idempotent per campaign id: re-submitting a manifest already known
        to this process returns its live state; a manifest journaled by a
        previous process resumes — only unjournaled points execute.
        """
        campaign_id = manifest.campaign_id
        existing = self.campaigns.get(campaign_id)
        if existing is not None:
            return existing, False
        specs = manifest.expand(self.config.max_points)
        self.store.create(manifest)
        campaign = Campaign(manifest, specs)
        self.campaigns[campaign_id] = campaign
        journal = self.store.load_journal(campaign_id)
        self.m_campaigns.inc(resumed="true" if journal else "false")
        task = asyncio.create_task(self._run(campaign, journal))
        self._tasks[campaign_id] = task
        return campaign, True

    # -- scheduling ---------------------------------------------------------

    def _service_batch_size(self, pending: int) -> int:
        """Work-stealing split: several small batches per worker."""
        if self.config.batch_size > 0:
            return self.config.batch_size
        return max(1, min(math.ceil(pending / (self.backend.workers * 4)), 32))

    async def _notify(self, campaign: Campaign) -> None:
        async with campaign.cond:
            campaign.cond.notify_all()

    def _complete_point(
        self,
        campaign: Campaign,
        index: int,
        source: str,
        seconds: float,
        summary: Dict,
        journal_handle,
        key: str = "",
    ) -> None:
        """All bookkeeping for one finished point (journal, metrics, event)."""
        campaign.states[index] = "done"
        campaign.sources[index] = source
        campaign.seconds[index] = seconds
        campaign.summaries[index] = summary
        if source != "journal":
            self.store.append(
                campaign.id, index, source, key=key, seconds=seconds,
                summary=summary, handle=journal_handle,
            )
        labels = campaign.specs[index].labels
        self.m_points.inc(kind=str(labels["kind"]), source=source)
        if source != "journal":
            self.m_latency.observe(time.monotonic() - campaign.submit_monotonic)
            self._completions.append(time.monotonic())
        campaign.events.append(
            {
                "campaign": campaign.id,
                "index": index,
                "state": "done",
                "source": source,
                "seconds": round(seconds, 6),
                "labels": labels,
                "summary": summary,
            }
        )

    def _fail_point(
        self, campaign: Campaign, index: int, error: str
    ) -> None:
        campaign.states[index] = "failed"
        campaign.errors[index] = error
        self.m_failed.inc()
        campaign.events.append(
            {
                "campaign": campaign.id,
                "index": index,
                "state": "failed",
                "error": error,
                "labels": campaign.specs[index].labels,
            }
        )

    async def _run(self, campaign: Campaign, journal: Dict[int, Dict]) -> None:
        """The per-campaign scheduler task."""
        loop = asyncio.get_running_loop()
        campaign.status = "running"
        campaign.started = time.time()
        journal_handle = self.store.open_journal(campaign.id)
        try:
            # 1. Resume: journaled points are done, no re-execution.
            for index, record in sorted(journal.items()):
                if index < len(campaign.specs) and campaign.states[index] == "pending":
                    self._complete_point(
                        campaign, index, "journal",
                        float(record.get("seconds", 0.0)),
                        dict(record.get("summary") or {}),
                        journal_handle,
                    )
                    campaign.resumed += 1
            await self._notify(campaign)

            # 2. Result-cache probe: a point someone already computed (any
            # process, any campaign) completes without dispatch.
            pending = [
                i for i, s in enumerate(campaign.states) if s == "pending"
            ]
            if self.config.cache_enabled:
                still = []
                for index in pending:
                    point = campaign.specs[index].point
                    if point.observed:
                        still.append(index)
                        continue
                    hit = runner._MEMO.get(point.memo_key)
                    key = runner.cache_key(point)
                    if hit is not None:
                        runner.counters.memo_hits += 1
                    else:
                        hit = self.disk.load(key)
                        if hit is not None:
                            runner.counters.disk_hits += 1
                            runner._MEMO[point.memo_key] = hit
                    if hit is None:
                        still.append(index)
                        continue
                    campaign.cache_hits += 1
                    self._complete_point(
                        campaign, index, "cache", 0.0, hit.summary(),
                        journal_handle, key=key,
                    )
                pending = still
                await self._notify(campaign)

            observed = [
                i for i in pending if campaign.specs[i].point.observed
            ]
            plain = [i for i in pending if not campaign.specs[i].point.observed]

            # 3. Materialize every distinct input trace once, off-loop.
            seen = set()
            for index in pending:
                point = campaign.specs[index].point
                trace_key = point.trace_memo_key
                if trace_key in seen:
                    continue
                seen.add(trace_key)
                await loop.run_in_executor(
                    None,
                    partial(
                        trace_store.get_packed_trace,
                        *trace_key,
                        root=self.spool_dir,
                        disk_enabled=self.config.trace_cache_enabled,
                    ),
                )

            # 4. Dispatch plain points in trace-grouped batches.
            futures: Dict[asyncio.Future, Tuple[str, object]] = {}
            if plain:
                points = [campaign.specs[i].point for i in plain]
                plan = runner._plan_batches(
                    points,
                    self.backend.workers,
                    self._service_batch_size(len(points)),
                )
                run_fn = partial(
                    runner._run_batch,
                    spool_dir=self.spool_dir,
                    spool_enabled=self.config.trace_cache_enabled,
                )
                for batch_no, batch in enumerate(plan):
                    cf = self.backend.submit(
                        run_fn, [points[i] for i in batch]
                    )
                    for local in batch:
                        campaign.states[plain[local]] = "running"
                    futures[asyncio.wrap_future(cf)] = (
                        "batch",
                        [plain[local] for local in batch],
                    )

            # 5. Observed points run in-process, one executor task each.
            for index in observed:
                campaign.states[index] = "running"
                future = loop.run_in_executor(
                    None,
                    _run_observed_point,
                    campaign.specs[index].point,
                    self.spool_dir,
                    self.config.trace_cache_enabled,
                )
                futures[future] = ("observed", index)

            await self._notify(campaign)

            # 6. Fold completions as they land (work-stealing order).
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = await asyncio.wait(
                    outstanding, return_when=asyncio.FIRST_COMPLETED
                )
                for future in finished:
                    kind, payload = futures[future]
                    if kind == "batch":
                        self._fold_batch(campaign, payload, future, journal_handle)
                    else:
                        self._fold_observed(campaign, payload, future, journal_handle)
                await self._notify(campaign)

            failed = campaign.counts()["failed"]
            campaign.status = "failed" if failed else "done"
        except asyncio.CancelledError:
            campaign.status = "cancelled"
            campaign.error = "service shutdown"
            raise
        except ManifestError as exc:
            campaign.status = "failed"
            campaign.error = str(exc)
        except Exception as exc:  # pragma: no cover - defensive
            campaign.status = "failed"
            campaign.error = f"{type(exc).__name__}: {exc}"
        finally:
            campaign.finished = time.time()
            journal_handle.close()
            await self._notify(campaign)

    def _fold_batch(
        self, campaign: Campaign, indices: List[int], future, journal_handle
    ) -> None:
        try:
            outputs = future.result()
        except Exception as exc:
            for index in indices:
                self._fail_point(campaign, index, f"{type(exc).__name__}: {exc}")
            return
        for index, (result, seconds, trace_seconds) in zip(indices, outputs):
            point = campaign.specs[index].point
            key = runner.cache_key(point)
            runner._MEMO[point.memo_key] = result
            if self.config.cache_enabled:
                self.disk.store(key, point, result)
            runner.counters.computed += 1
            runner.counters.compute_seconds += seconds
            runner.counters.trace_seconds += trace_seconds
            campaign.executed += 1
            self._complete_point(
                campaign, index, "computed", seconds, result.summary(),
                journal_handle, key=key,
            )

    def _fold_observed(
        self, campaign: Campaign, index: int, future, journal_handle
    ) -> None:
        try:
            result, observer, seconds = future.result()
        except Exception as exc:
            self._fail_point(campaign, index, f"{type(exc).__name__}: {exc}")
            return
        runner.counters.computed += 1
        runner.counters.compute_seconds += seconds
        campaign.executed += 1
        sampler = getattr(observer, "sampler", None)
        if sampler is not None:
            gauges = sampler.latest_gauges()
            if gauges:
                self._obs_campaign = campaign.id
                self._obs_gauges = gauges
        self._complete_point(
            campaign, index, "computed", seconds, result.summary(),
            journal_handle,
        )

    # -- lifecycle ----------------------------------------------------------

    async def stop(self) -> None:
        """Cancel running campaigns and drain the backend."""
        tasks = list(self._tasks.values())
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self.backend.shutdown(cancel_pending=True)

    def describe(self) -> Dict:
        """``GET /`` payload."""
        return {
            "service": "repro-campaigns",
            "version": SERVICE_VERSION,
            "backend": self.backend.describe(),
            "cache_dir": str(self.cache_dir),
            "cache_enabled": self.config.cache_enabled,
            "trace_cache_enabled": self.config.trace_cache_enabled,
            "max_points": self.config.max_points,
            "campaigns": len(self.campaigns),
        }


# ---------------------------------------------------------------- HTTP layer

_STATUS_TEXT = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Reject request bodies above this size (a manifest is small).
MAX_BODY_BYTES = 4 * 1024 * 1024


def _response_bytes(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: Dict) -> bytes:
    return _response_bytes(
        status, (json.dumps(payload) + "\n").encode("utf-8")
    )


class HttpFrontend:
    """Minimal HTTP/1.1 request handling over asyncio streams."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        method = "-"
        code: Optional[int] = None
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            code = await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except ManifestError as exc:
            code = 413
            try:
                writer.write(_json_response(413, {"error": str(exc)}))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except Exception as exc:
            code = 500
            try:
                writer.write(
                    _json_response(500, {"error": f"{type(exc).__name__}: {exc}"})
                )
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            if code is not None:
                self.service.m_http.inc(method=method, code=str(code))
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if not line.strip():
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if content_length > MAX_BODY_BYTES:
            raise ManifestError("request body too large")
        body = (
            await reader.readexactly(content_length) if content_length else b""
        )
        return method, path, body

    async def _route(
        self, method: str, path: str, body: bytes,
        writer: asyncio.StreamWriter,
    ) -> int:
        service = self.service
        path = path.split("?", 1)[0].rstrip("/") or "/"

        async def send(status: int, payload: Dict) -> int:
            writer.write(_json_response(status, payload))
            await writer.drain()
            return status

        if path == "/" and method == "GET":
            return await send(200, service.describe())
        if path == "/healthz" and method == "GET":
            return await send(200, {"ok": True})
        if path == "/metrics" and method == "GET":
            writer.write(
                _response_bytes(
                    200,
                    service.metrics_text().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            )
            await writer.drain()
            return 200
        if path == "/campaigns":
            if method == "POST":
                try:
                    manifest = parse_manifest(body)
                    campaign, created = await service.submit(manifest)
                except ManifestError as exc:
                    return await send(400, {"error": str(exc)})
                payload = campaign.summary_dict()
                payload["created_new"] = created
                return await send(201 if created else 200, payload)
            if method == "GET":
                return await send(
                    200,
                    {
                        "campaigns": [
                            c.summary_dict()
                            for c in service.campaigns.values()
                        ]
                    },
                )
            return await send(405, {"error": f"{method} not allowed"})
        if path.startswith("/campaigns/"):
            rest = path[len("/campaigns/"):]
            campaign_id, _, tail = rest.partition("/")
            campaign = service.campaigns.get(campaign_id)
            if campaign is None:
                return await send(404, {"error": f"unknown campaign {campaign_id!r}"})
            if method != "GET":
                return await send(405, {"error": f"{method} not allowed"})
            if tail == "":
                return await send(200, campaign.status_dict())
            if tail == "stream":
                return await self._stream(campaign, writer)
            return await send(404, {"error": f"unknown endpoint {path!r}"})
        return await send(404, {"error": f"unknown endpoint {path!r}"})

    async def _stream(
        self, campaign: Campaign, writer: asyncio.StreamWriter
    ) -> int:
        """NDJSON: every completion event, then live until the campaign ends."""
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("ascii")
        )
        sent = 0
        while True:
            while sent < len(campaign.events):
                line = json.dumps(
                    campaign.events[sent], separators=(",", ":")
                ) + "\n"
                writer.write(line.encode("utf-8"))
                sent += 1
            await writer.drain()
            if campaign.done() and sent >= len(campaign.events):
                return 200
            async with campaign.cond:
                try:
                    await asyncio.wait_for(campaign.cond.wait(), timeout=5.0)
                except asyncio.TimeoutError:
                    pass


# ------------------------------------------------------------------- runners

async def start_server(
    service: CampaignService, host: str, port: int
) -> asyncio.AbstractServer:
    """Bind the HTTP frontend; ``port=0`` picks an ephemeral port."""
    frontend = HttpFrontend(service)
    return await asyncio.start_server(frontend.handle, host, port)


def bound_port(server: asyncio.AbstractServer) -> int:
    """The concrete port a (possibly ephemeral) server listens on."""
    for sock in server.sockets:
        if sock.family in (socket.AF_INET, socket.AF_INET6):
            return sock.getsockname()[1]
    raise RuntimeError("server has no bound INET socket")


async def serve_forever(
    config: ServiceConfig,
    ready: Optional[Callable] = None,
) -> int:
    """Run the service until SIGINT/SIGTERM; returns an exit code.

    ``ready(port, service)`` fires once the socket is bound (tests and the
    CLI use it to report the final port).
    """
    service = CampaignService(config)
    server = await start_server(service, config.host, config.port)
    port = bound_port(server)
    if ready is not None:
        ready(port, service)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    import signal as _signal

    for signum in (_signal.SIGINT, _signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        await service.stop()
    return 0


class ServiceHandle:
    """A service running on a daemon thread (benchmarks, smoke tests).

    Owns its event loop; :meth:`start` blocks until the socket is bound
    and exposes :attr:`port` / :attr:`service`; :meth:`stop` cancels the
    campaigns, drains the backend and joins the thread.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.port: Optional[int] = None
        self.service: Optional[CampaignService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )

    def start(self, timeout: float = 30.0) -> "ServiceHandle":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("campaign service failed to start in time")
        return self

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            loop.close()

    async def _serve(self) -> None:
        self.service = CampaignService(self.config)
        server = await start_server(
            self.service, self.config.host, self.config.port
        )
        self.port = bound_port(server)
        self._stop = asyncio.Event()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self.service.stop()

    def stop(self, timeout: float = 30.0) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout)
