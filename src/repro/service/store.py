"""Journaled campaign store: crash-safe resume under ``.repro_cache/campaigns/``.

One directory per campaign id::

    <cache-dir>/campaigns/<id>/manifest.json    # the submitted manifest
    <cache-dir>/campaigns/<id>/journal.ndjson   # one line per finished point

The journal is **append-only NDJSON**: each completed point appends one
record ``{"v": 1, "i": <point index>, "src": "computed"|"cache"|"journal",
"key": <result cache key>, "seconds": s, "summary": {...}}`` and flushes.
A server killed mid-campaign loses at most the line it was writing; on
reload, malformed or truncated trailing lines are counted and skipped —
the matching point simply re-runs.  Combined with the content-addressed
result cache (each point's full result is stored atomically as it
completes) this makes campaigns resumable: re-submitting the same
manifest re-executes only points with no journal record.

The store is intentionally dumb — no locking, no index.  Writers are the
single service process; readers tolerate anything.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Union

from .manifest import CampaignManifest, ManifestError

#: Journal record layout version.
JOURNAL_VERSION = 1

MANIFEST_FILE = "manifest.json"
JOURNAL_FILE = "journal.ndjson"


class CampaignStore:
    """The on-disk campaign journal layer (see module docstring)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- layout -------------------------------------------------------------

    def dir_for(self, campaign_id: str) -> Path:
        """The campaign's directory (exists only after :meth:`create`)."""
        return self.root / campaign_id

    def manifest_path(self, campaign_id: str) -> Path:
        return self.dir_for(campaign_id) / MANIFEST_FILE

    def journal_path(self, campaign_id: str) -> Path:
        return self.dir_for(campaign_id) / JOURNAL_FILE

    # -- manifests ----------------------------------------------------------

    def create(self, manifest: CampaignManifest) -> bool:
        """Persist a manifest; returns True when newly created.

        An existing directory with a *matching* manifest means resume
        (returns False); a mismatched manifest under the same id can only
        be a hash collision or tampering and is rejected.
        """
        campaign_id = manifest.campaign_id
        path = self.manifest_path(campaign_id)
        existing = self.load_manifest(campaign_id)
        if existing is not None:
            if existing.canonical_json() != manifest.canonical_json():
                raise ManifestError(
                    f"campaign {campaign_id} exists with a different manifest"
                )
            return False
        self.dir_for(campaign_id).mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as handle:
            json.dump(
                {"id": campaign_id, "manifest": manifest.to_dict()},
                handle,
                indent=1,
            )
        os.replace(tmp, path)
        return True

    def load_manifest(self, campaign_id: str) -> Optional[CampaignManifest]:
        """The stored manifest, or None when absent/unreadable."""
        try:
            with open(self.manifest_path(campaign_id)) as handle:
                data = json.load(handle)
            return CampaignManifest.from_dict(data["manifest"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError, ManifestError):
            return None

    # -- journal ------------------------------------------------------------

    def open_journal(self, campaign_id: str) -> TextIO:
        """An append handle for the campaign's journal (caller closes)."""
        self.dir_for(campaign_id).mkdir(parents=True, exist_ok=True)
        return open(self.journal_path(campaign_id), "a")

    def append(
        self,
        campaign_id: str,
        index: int,
        source: str,
        key: str = "",
        seconds: float = 0.0,
        summary: Optional[Dict[str, float]] = None,
        handle: Optional[TextIO] = None,
    ) -> Dict[str, object]:
        """Append one completed-point record and flush; returns the record."""
        record: Dict[str, object] = {
            "v": JOURNAL_VERSION,
            "i": int(index),
            "src": source,
            "key": key,
            "seconds": round(float(seconds), 6),
            "summary": summary or {},
        }
        line = json.dumps(record, separators=(",", ":")) + "\n"
        if handle is not None:
            handle.write(line)
            handle.flush()
        else:
            with self.open_journal(campaign_id) as out:
                out.write(line)
                out.flush()
        return record

    def load_journal(self, campaign_id: str) -> Dict[int, Dict[str, object]]:
        """Completed-point records by index; corrupt lines are skipped.

        A truncated final line (the crash case), garbage, wrong-version or
        structurally invalid records never raise — the affected points
        just re-run.  The skip count is returned via :meth:`last_skipped`
        (stored on the instance for the caller that wants it).
        """
        records: Dict[int, Dict[str, object]] = {}
        skipped = 0
        try:
            with open(self.journal_path(campaign_id)) as handle:
                raw = handle.read()
        except (FileNotFoundError, OSError):
            self._last_skipped = 0
            return records
        for line in raw.split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if (
                    not isinstance(record, dict)
                    or record.get("v") != JOURNAL_VERSION
                    or not isinstance(record.get("i"), int)
                    or record["i"] < 0
                    or not isinstance(record.get("summary"), dict)
                ):
                    raise ValueError("malformed journal record")
            except ValueError:
                skipped += 1
                continue
            records[record["i"]] = record
        self._last_skipped = skipped
        return records

    def last_skipped(self) -> int:
        """Corrupt lines skipped by the most recent :meth:`load_journal`."""
        return getattr(self, "_last_skipped", 0)

    # -- maintenance --------------------------------------------------------

    def list_ids(self) -> List[str]:
        """Every campaign id with a stored manifest (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and (entry / MANIFEST_FILE).is_file()
        )

    def stats(self) -> Dict[str, int]:
        """Store footprint: ``{"campaigns": N, "files": F, "bytes": B}``."""
        campaigns = files = total = 0
        if self.root.is_dir():
            for entry in self.root.iterdir():
                if not entry.is_dir():
                    continue
                campaigns += 1
                for path in entry.iterdir():
                    try:
                        total += path.stat().st_size
                        files += 1
                    except OSError:
                        pass
        return {"campaigns": campaigns, "files": files, "bytes": total}

    def clear(self) -> int:
        """Delete every campaign directory; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.iterdir():
            if entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)
                removed += 1
            else:
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
