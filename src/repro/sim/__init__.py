"""Trace-driven simulation: traces, system builder, simulator, results."""

from .results import SimulationResult
from .simulator import Simulator, run_trace
from .system import build_system
from .trace import PackedTrace, Trace, TraceRecord

__all__ = [
    "PackedTrace",
    "SimulationResult",
    "Simulator",
    "Trace",
    "TraceRecord",
    "build_system",
    "run_trace",
]
