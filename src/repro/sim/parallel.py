"""Bank-parallel scaling engine: run-length batched execution to 1024 cores.

The third execution engine for the same simulated machine, built for the
regime the paper actually argues about — hundreds to a thousand cores —
where the serial engines' per-operation Python dispatch is the wall.  It
layers five mechanisms over the flat state of :mod:`repro.sim.vector`:

1. **Numpy-native streams and snapshots.**  Each core's packed stream is
   held as numpy block/write arrays end to end (decoded once by
   :meth:`~repro.sim.trace.PackedTrace.numpy_streams`), and each core's
   L1 residency is snapshotted into sorted block/state arrays so a whole
   window of future operations is classified in one vectorized pass.

2. **Run-length classification with bulk commits.**  Between two protocol
   events a core's stream is a *hit run*: no operation moves a line into
   or out of the private cache, and states change only E→M under the
   core's own writes.  An operation ends the run iff its block is not
   resident or it writes a SHARED/OWNED line — a predicate over a state
   snapshot, evaluated with ``searchsorted`` over thousands of ops at
   once.  The interleave loop then *commits whole runs in bulk* ("warps"):
   clocks, LRU stamps, data versions and effective-tracking samples are
   computed arithmetically — exactly — instead of op by op, and only the
   rare run-enders and short runs take the scalar inline path of
   :class:`~repro.sim.vector._FlatMachine`.

3. **Parallel scan workers over shared memory.**  With ``workers >= 2``
   the classification scans are dispatched to worker processes that read
   the streams from ``multiprocessing.shared_memory`` segments, one
   epoch-sized window ahead of the interleave loop.  A scan is a pure
   function of (stream slice, residency snapshot), and every snapshot is
   taken at a deterministic point of the serial commit loop, so results
   are **bit-identical for any worker count** — workers move scan work off
   the critical path, they never change what is computed.

4. **Optimistic warp + replay (``speculate=True``).**  The conservative
   warp only commits hits provably ordered before every other core's
   next-event lower bound, so one cold corner core clamps the whole
   machine during staggered warmup.  The speculation layer warps a
   core's entire classified hit run *past* that horizon instead: clocks,
   the op counter's LRU stamps and the tick/version clocks advance
   immediately, while the ops' *visible* effects — L1 state changes,
   minted data versions, the processed-op count that drives
   effective-tracking samples — are deferred into a compact per-run undo
   log (prior LRU stamps + the run's write positions).  At every real
   protocol event the log is *flushed* exactly up to the event's serial
   position (so the event observes precisely the serially-earlier
   deferred writes), and the event's touched-block set is *validated*
   against every core's still-unflushed run suffix: a conflict squashes
   the run at the first conflicting op — prior LRU stamps are restored,
   the cursor and clock rewind, and the squashed ops replay through the
   exact serial path.  Unflushed speculative ops are always the
   program-order suffix of their core (the global serial front is
   non-decreasing, and everything ordered before an event is flushed
   first), which is what makes chunk-granular undo sound.  Results stay
   bit-identical to the interpreter for every organization, worker
   count, and window size — speculation moves *when* work is applied,
   never *what* is computed.

5. **Per-bank clock decoupling.**  Parked cores publish not just a
   next-event lower bound but the *home bank* of the predicted
   run-ending block, into per-bank lazy-deletion heaps.  A speculative
   chunk consults only the heaps of the banks its own blocks map to and
   caps itself at the first occurrence of a pending remote ender's
   block — so a cold corner core only throttles cores that actually
   share its banks, instead of clamping every warp through the single
   global horizon.  The bank heaps are a squash-avoidance *policy*;
   correctness never depends on them (flush + validate + replay is
   always the safety net).

Snapshots go stale: another core's miss can invalidate or demote lines
under a scanned window.  Every such slow-path event feeds the machine's
``touched`` hook, and the commit loop revalidates a window against the
touched blocks before trusting it — a conflicting operation is demoted to
an authoritative scalar step (stale classification can only turn predicted
hits into run-enders, never the reverse, so the fallback is exact, not
approximate).  Directory and LLC home-bank state stays partitioned by the
address-interleaved bank id (``block & (num_cores - 1)``) exactly as in
the flat machine; all home-bank mutations happen in the deterministic
commit loop.

The contract is the golden one: results — per-core cycles, the flattened
stats tree, effective-tracking samples — are bit-identical to the serial
interpreter and vector engines for every supported configuration
(:func:`parallel_supports` delegates to
:func:`repro.sim.vector.vector_supports`).
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..coherence.tables import L1Tables
from ..common.addr import log2_exact
from ..common.config import SystemConfig
from ..common.errors import ProtocolError, TraceError
from .results import SimulationResult
from .trace import PackedTrace
from .vector import (
    DEFAULT_EPOCH_OPS,
    _FlatMachine,
    _ST_MODIFIED,
    _ST_OWNED,
    _ST_SHARED,
    vector_supports,
)

#: Smallest hit run worth a vectorised bulk commit — numpy's per-call
#: overhead beats its throughput below a few dozen elements, so shorter
#: runs execute through the serial inline path instead.
_WARP_MIN = 24

#: Serial ops between warp re-checks.  While a core runs inline it only
#: re-evaluates the horizon every this many hits (every event forces an
#: immediate re-check), keeping the check cost off the per-op path.
_WARP_CHECK = 16

#: Serial hits since a core's last own slow event before a clamping
#: run-ender prediction is double-checked against the live residency.
#: While events are frequent (cold-start, heavy sharing) the serial path
#: is already optimal and rescans would be wasted; a long hit streak says
#: the scan is stale and is throttling everyone's warps.
_RESCAN_HITS = 48


#: A practically-infinite op budget (no run is longer than a stream).
_NO_YIELD = 1 << 62

#: Workers a ``"auto"`` engine_workers setting targets when the host has
#: spare CPUs for them.
_AUTO_WORKERS = 2


def resolve_engine_workers(value: Union[int, str, None]) -> int:
    """Resolve an ``engine_workers`` setting to a concrete worker count.

    ``"auto"`` resolves to :data:`_AUTO_WORKERS` scan workers when the
    host has that many CPUs left over for them (``cpu_count() - 1 >=
    workers``) and to 0 otherwise — on a 1-CPU host the scan pool only
    adds scheduling pressure to the commit loop it is trying to feed, and
    BENCH_scaling.json showed ``workers=2`` losing to ``workers=0``
    there.  Explicit integers (and integer strings) are honored
    unchanged; results are bit-identical for any worker count, so this
    only ever changes speed.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        raise TraceError("engine_workers must be an integer or 'auto'")
    if isinstance(value, int):
        if value < 0:
            raise TraceError("workers must be non-negative")
        return value
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            spare = (os.cpu_count() or 1) - 1
            return _AUTO_WORKERS if spare >= _AUTO_WORKERS else 0
        try:
            count = int(text)
        except ValueError:
            raise TraceError(
                f"engine_workers must be an integer or 'auto', got {value!r}"
            ) from None
        if count < 0:
            raise TraceError("workers must be non-negative")
        return count
    raise TraceError(
        f"engine_workers must be an integer or 'auto', got {value!r}"
    )


class _TouchList(list):
    """A touched-blocks list that also flags its core in a shared set.

    The flat machine's slow paths append every block they invalidate or
    demote; the commit loop needs to know *which cores* a just-executed
    event interfered with so it can drop their next-event bounds before
    any other core commits hits past the interference — and, with
    speculation on, validate their unflushed run suffixes against the
    interference.
    """

    __slots__ = ("core", "dirty")

    def __init__(self, core: int, dirty: set) -> None:
        super().__init__()
        self.core = core
        self.dirty = dirty

    def append(self, blk: int) -> None:
        list.append(self, blk)
        self.dirty.add(self.core)


def parallel_supports(config: SystemConfig) -> Optional[str]:
    """``None`` when the bank-parallel engine models ``config`` exactly.

    The engine executes slow paths through the flat machine, so its
    envelope is exactly the vector engine's.
    """
    return vector_supports(config)


def _classify(
    blks: np.ndarray,
    wr: np.ndarray,
    res_sorted: np.ndarray,
    st_sorted: np.ndarray,
) -> np.ndarray:
    """Positions (relative to the window) of the run-ending operations.

    An op ends a hit run iff its block is not in the residency snapshot or
    it writes a line the snapshot holds SHARED/OWNED.  Pure function —
    callable from the parent or a scan worker.
    """
    if res_sorted.size == 0:
        return np.arange(blks.size, dtype=np.int64)
    pos = np.searchsorted(res_sorted, blks)
    posc = np.minimum(pos, res_sorted.size - 1)
    resident = res_sorted[posc] == blks
    st = st_sorted[posc]
    ender = ~resident | (
        (wr != 0) & ((st == _ST_SHARED) | (st == _ST_OWNED))
    )
    return np.flatnonzero(ender).astype(np.int64)


def _scan_worker(
    shm_blk_name: str,
    shm_wr_name: str,
    offsets: List[Tuple[int, int]],
    req_q,
    rep_q,
) -> None:
    """Worker loop: classify windows of the shared streams on request.

    Requests are ``(core, gen, start, stop, res_bytes, st_bytes)``; replies
    are ``(core, gen, ender_positions_bytes)`` — ``gen`` is a parent-side
    sequence number so a reply can never be mistaken for a different
    request that happens to share its window start.  ``None`` shuts the
    worker down.  Streams live in the named shared-memory segments; only
    the tiny residency snapshot rides in each request.
    """
    from multiprocessing import shared_memory

    shm_b = shared_memory.SharedMemory(name=shm_blk_name)
    shm_w = shared_memory.SharedMemory(name=shm_wr_name)
    try:
        views: List[Tuple[np.ndarray, np.ndarray]] = []
        for off, ln in offsets:
            views.append(
                (
                    np.ndarray(
                        (ln,), dtype=np.int64, buffer=shm_b.buf, offset=off * 8
                    ),
                    np.ndarray(
                        (ln,), dtype=np.uint8, buffer=shm_w.buf, offset=off
                    ),
                )
            )
        while True:
            req = req_q.get()
            if req is None:
                break
            core, gen, start, stop, res_bytes, st_bytes = req
            blks, wr = views[core]
            rel = _classify(
                blks[start:stop],
                wr[start:stop],
                np.frombuffer(res_bytes, dtype=np.int64),
                np.frombuffer(st_bytes, dtype=np.int8),
            )
            rep_q.put((core, gen, rel.tobytes()))
    finally:
        shm_b.close()
        shm_w.close()


class _ScanPool:
    """Scan workers over shared-memory copies of the per-core streams."""

    def __init__(
        self,
        workers: int,
        blk_arrs: List[Optional[np.ndarray]],
        wr_arrs: List[Optional[np.ndarray]],
    ) -> None:
        import multiprocessing as mp
        from multiprocessing import shared_memory

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")
        total_words = sum(int(a.size) for a in blk_arrs if a is not None)
        self._shm_blk = shared_memory.SharedMemory(
            create=True, size=max(8, total_words * 8)
        )
        self._shm_wr = shared_memory.SharedMemory(
            create=True, size=max(1, total_words)
        )
        offsets: List[Tuple[int, int]] = []
        off = 0
        blk_all = np.ndarray(
            (total_words,), dtype=np.int64, buffer=self._shm_blk.buf
        )
        wr_all = np.ndarray(
            (total_words,), dtype=np.uint8, buffer=self._shm_wr.buf
        )
        for blks, wr in zip(blk_arrs, wr_arrs):
            if blks is None:
                offsets.append((0, 0))
                continue
            ln = int(blks.size)
            blk_all[off : off + ln] = blks
            wr_all[off : off + ln] = wr
            offsets.append((off, ln))
            off += ln
        # Full Queues, not SimpleQueues: their feeder thread makes parent
        # puts non-blocking, so a burst of prefetch requests can never
        # stall the commit loop behind a full pipe on a busy host.
        self.req_q = ctx.Queue()
        self.rep_q = ctx.Queue()
        self.procs = [
            ctx.Process(
                target=_scan_worker,
                args=(
                    self._shm_blk.name,
                    self._shm_wr.name,
                    offsets,
                    self.req_q,
                    self.rep_q,
                ),
                daemon=True,
            )
            for _ in range(workers)
        ]
        for p in self.procs:
            p.start()

    def close(self) -> None:
        for _ in self.procs:
            self.req_q.put(None)
        for p in self.procs:
            p.join(timeout=10)
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
                p.join(timeout=5)
        for q in (self.req_q, self.rep_q):
            q.cancel_join_thread()
            q.close()
        self._shm_blk.close()
        self._shm_wr.close()
        self._shm_blk.unlink()
        self._shm_wr.unlink()


class ParallelEngine:
    """Runs one PackedTrace with run-length batching and scan workers.

    ``workers=0`` (or 1) classifies inline in the parent — the bulk-commit
    fast path alone is the dominant win on few-CPU hosts; ``workers >= 2``
    adds the shared-memory scan pool; ``workers="auto"`` picks per
    :func:`resolve_engine_workers`.  ``epoch_ops`` is the scan-window
    size (results are identical for any value — pinned by tests).

    ``speculate=True`` turns on optimistic warp + replay (mechanism 4 of
    the module docstring) with per-bank horizon decoupling; ``spec_min``
    is the smallest classified run a speculative chunk will claim
    (defaults to the conservative warp threshold; the differential
    fuzzer lowers it so tiny adversarial programs still exercise the
    flush/squash machinery).  After :meth:`run` the engine exposes
    ``heap_stats`` (horizon-heap growth/compaction counters) and
    ``spec_stats`` (chunks, speculated ops, squashes, squashed ops).
    """

    def __init__(
        self,
        config: SystemConfig,
        tables: Optional[L1Tables] = None,
        epoch_ops: int = DEFAULT_EPOCH_OPS,
        sample_interval: int = 4096,
        workers: Union[int, str] = 0,
        speculate: bool = False,
        spec_min: Optional[int] = None,
    ) -> None:
        reason = parallel_supports(config)
        if reason is not None:
            raise TraceError(f"parallel engine cannot run this config: {reason}")
        if epoch_ops < 1:
            raise TraceError("epoch_ops must be >= 1")
        if sample_interval < 1:
            raise TraceError("sample_interval must be >= 1")
        if spec_min is not None and spec_min < 2:
            raise TraceError("spec_min must be >= 2")
        self.config = config
        self.tables = tables
        self.epoch_ops = epoch_ops
        self.sample_interval = sample_interval
        self.workers = resolve_engine_workers(workers)
        self.speculate = bool(speculate)
        self.spec_min = _WARP_MIN if spec_min is None else spec_min
        # Fault-injection hook for the undo-log differential: when set,
        # the first flushed deferred write applies a corrupted state.
        self._corrupt_flush = False
        self.heap_stats: Dict[str, int] = {}
        self.spec_stats: Dict[str, int] = {}

    def run(self, trace) -> SimulationResult:
        """Execute the whole trace; bit-identical to the serial engines."""
        config = self.config
        if not isinstance(trace, PackedTrace):
            trace = PackedTrace.from_trace(trace)
        if trace.num_cores > config.num_cores:
            raise TraceError(
                f"trace has {trace.num_cores} cores, system only {config.num_cores}"
            )
        m = _FlatMachine(config, self.tables)
        ncores = trace.num_cores
        dirty: set = set()
        touched: List[List[int]] = [_TouchList(c, dirty) for c in range(ncores)]
        m.touched = touched
        packshift = log2_exact(config.block_bytes) + 1

        # Streams as numpy block/write arrays, end to end.
        blk_arrs, wr_arrs, writes_total = trace.numpy_streams(packshift)

        pool: Optional[_ScanPool] = None
        if self.workers >= 2:
            pool = _ScanPool(self.workers, blk_arrs, wr_arrs)
        try:
            return self._run_loop(
                m, trace, blk_arrs, wr_arrs, writes_total, pool, dirty
            )
        finally:
            if pool is not None:
                pool.close()

    # -- scan management ---------------------------------------------------

    @staticmethod
    def _snapshot(lmap: Dict[int, list]) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted (blocks, states) arrays of one core's L1 residency."""
        n_res = len(lmap)
        res = np.fromiter(lmap.keys(), dtype=np.int64, count=n_res)
        sts = np.fromiter(
            (rec[0] for rec in lmap.values()), dtype=np.int8, count=n_res
        )
        order = np.argsort(res)
        return res[order], sts[order]

    def _run_loop(
        self,
        m: _FlatMachine,
        trace: PackedTrace,
        blk_arrs: List[Optional[np.ndarray]],
        wr_arrs: List[Optional[np.ndarray]],
        writes_total: int,
        pool: Optional[_ScanPool],
        dirty: set,
    ) -> SimulationResult:
        ncores = trace.num_cores
        totals = [
            0 if blk_arrs[core] is None else int(blk_arrs[core].size)
            for core in range(ncores)
        ]
        clocks = [0] * ncores
        cursors = [0] * ncores
        samples: List[int] = []
        sample_interval = self.sample_interval
        next_sample = sample_interval
        processed = 0
        epoch = self.epoch_ops
        touched = m.touched

        # Per-core scan state: a window [base, limit) classified against a
        # snapshot, its ender positions (a sorted Python list consumed
        # front-to-back through ``scan_eptr`` — cursors only move forward,
        # so a pointer beats a binary search in the hot loop), and the
        # touched-list length at snapshot time.
        scan_limit = [0] * ncores
        scan_enders: List[list] = [[] for _ in range(ncores)]
        scan_eptr = [0] * ncores
        scan_tpos = [0] * ncores
        # Prefetch bookkeeping (workers only).  At most one request is in
        # flight per core — ``inflight[core]`` holds its generation number
        # until the reply lands, ``expected[core]`` the (gen, start, stop,
        # tpos) of the window the core still wants (None once obsolete),
        # and ``pending`` buffers matched replies until consumed.  The
        # scan choice (prefetched vs inline) can vary with reply timing,
        # but every scan is exact-after-revalidation, so results do not.
        inflight: List[Optional[int]] = [None] * ncores
        expected: List[Optional[Tuple[int, int, int, int]]] = [None] * ncores
        pending: Dict[Tuple[int, int], bytes] = {}
        gen_counter = 0

        act = m.act
        fixed = m.fixed
        hit_step = m.t_l1 + fixed
        latest_version = m.latest_version
        miss = m._miss
        upgrade = m._upgrade

        def take_reply(item: Tuple[int, int, bytes]) -> None:
            rcore, rgen, rbytes = item
            if inflight[rcore] == rgen:
                inflight[rcore] = None
            rexp = expected[rcore]
            if rexp is not None and rexp[0] == rgen:
                pending[(rcore, rgen)] = rbytes
            # else: the window was truncated or re-scanned inline — drop.

        def drain_replies() -> None:
            import queue as _queue

            while True:
                try:
                    item = pool.rep_q.get_nowait()
                except _queue.Empty:
                    return
                take_reply(item)

        def issue_prefetch(core: int, start: int) -> None:
            nonlocal gen_counter
            if pool is None or start >= totals[core]:
                expected[core] = None
                return
            if inflight[core] is not None:
                # Previous request still unconsumed: orphan it (its reply
                # clears the slot on arrival) instead of flooding the
                # queue with requests for every truncated window.
                expected[core] = None
                return
            stop = min(start + epoch, totals[core])
            res_sorted, st_sorted = self._snapshot(m.l1maps[core])
            gen_counter += 1
            pool.req_q.put(
                (
                    core,
                    gen_counter,
                    start,
                    stop,
                    res_sorted.tobytes(),
                    st_sorted.tobytes(),
                )
            )
            inflight[core] = gen_counter
            expected[core] = (gen_counter, start, stop, len(touched[core]))

        def install_scan(core: int, cur: int) -> None:
            total = totals[core]
            stop = min(cur + epoch, total)
            rel = None
            if pool is not None:
                drain_replies()
                exp = expected[core]
                if exp is not None and exp[1] == cur:
                    rbytes = pending.pop((core, exp[0]), None)
                    if rbytes is not None:
                        rel = np.frombuffer(rbytes, dtype=np.int64)
                        stop = exp[2]
                        scan_tpos[core] = exp[3]
                    # Consumed, or orphaned: never block on a worker — on
                    # a loaded host the reply can be arbitrarily late and
                    # the inline scan is cheap.  A late reply is dropped
                    # by take_reply once ``expected`` is cleared.
                    expected[core] = None
            if rel is None:
                # Inline scan (no pool, or prefetch not ready).
                scan_tpos[core] = len(touched[core])
                res_sorted, st_sorted = self._snapshot(m.l1maps[core])
                rel = _classify(
                    blk_arrs[core][cur:stop],
                    wr_arrs[core][cur:stop],
                    res_sorted,
                    st_sorted,
                )
            scan_enders[core] = (rel + cur).tolist()
            scan_eptr[core] = 0
            scan_limit[core] = stop
            issue_prefetch(core, stop)

        def revalidate(core: int, cur: int) -> None:
            """Fold slow-path interference since the snapshot into the scan.

            Interference only removes or demotes lines, so a conflicting
            op is forced onto the authoritative scalar path by inserting
            it as a run-ender and truncating the window behind it.
            """
            tl = touched[core]
            tpos = scan_tpos[core]
            if len(tl) > tpos:
                limit = scan_limit[core]
                fresh = np.array(tl[tpos:], dtype=np.int64)
                conf = np.isin(blk_arrs[core][cur:limit], fresh)
                if conf.any():
                    first = cur + int(np.argmax(conf))
                    e = scan_enders[core]
                    kept = [x for x in e[scan_eptr[core] :] if x < first]
                    kept.append(first)
                    scan_enders[core] = kept
                    scan_eptr[core] = 0
                    scan_limit[core] = first + 1
                scan_tpos[core] = len(tl)

        def rescan(core: int, cur: int) -> None:
            """Reclassify the window ahead against the live residency.

            Called when a predicted run-ender turns out to be a plain hit
            — the tell-tale that the snapshot predates this core's recent
            fills and the stale scan would otherwise clamp every warp.
            """
            stop = min(cur + epoch, totals[core])
            scan_tpos[core] = len(touched[core])
            res_sorted, st_sorted = self._snapshot(m.l1maps[core])
            rel = _classify(
                blk_arrs[core][cur:stop],
                wr_arrs[core][cur:stop],
                res_sorted,
                st_sorted,
            )
            scan_enders[core] = (rel + cur).tolist()
            scan_eptr[core] = 0
            scan_limit[core] = stop


        # ``ne[c]`` is each parked core's next-event bound.  A core may
        # bulk-commit hits only while they order strictly before every
        # other core's bound (serial tie rule included): hits commute with
        # other cores' hits, but never cross a slow event in either
        # direction.  Slow events themselves run one at a time, only when
        # their core pops as the heap minimum — i.e. at exactly their
        # serial (clock, core) position.
        #
        # The horizon (min over other cores) is queried once per bulk
        # commit; a lazy-deletion min-heap mirrors ``ne`` — every finite
        # assignment pushes, queries pop entries that no longer match —
        # so the query is O(log) amortised instead of an O(ncores) scan.
        # ``ne_live`` counts the finite bounds so the heap can be
        # compacted once stale entries dominate (event-dense runs would
        # otherwise grow it without bound).
        inf = float("inf")
        ne = [0 if totals[c] else inf for c in range(ncores)]
        neheap = [(0, c) for c in range(ncores) if totals[c]]
        heapq.heapify(neheap)
        ne_live = len(neheap)
        neheap_max = ne_live
        compactions = 0
        parked = [0] * ncores
        since_event = [0] * ncores

        heap = [(0, core) for core in range(ncores) if totals[core]]
        heapq.heapify(heap)
        heappush = heapq.heappush
        heappop = heapq.heappop

        def ne_push(b: int, c: int) -> None:
            nonlocal neheap, neheap_max, compactions
            heappush(neheap, (b, c))
            depth = len(neheap)
            if depth > neheap_max:
                neheap_max = depth
            if depth - ne_live > 2 * ne_live + 8:
                neheap = [
                    (ne[c2], c2) for c2 in range(ncores) if ne[c2] != inf
                ]
                heapq.heapify(neheap)
                compactions += 1

        # -- speculation state -------------------------------------------
        # A speculative chunk is one classified hit run (or a bank-capped
        # prefix of one) committed past the horizon.  Its record is
        #   [0 start_cur, 1 end_cur, 2 start_clock, 3 tick_base,
        #    4 version_base, 5 flushed_ops, 6 prior_lu, 7 w_rel, 8 wptr]
        # where ``prior_lu`` maps block -> pre-chunk LRU stamp (the undo
        # log), ``w_rel`` the chunk-relative write positions and ``wptr``
        # how many of them have been flushed.  Op j of a chunk has serial
        # pre-clock ``start_clock + j*hit_step`` — the key under which
        # flushes and squashes order deferred ops against real events.
        speculate = self.speculate and hit_step > 0
        spec_min = self.spec_min
        bank_mask = m.bank_mask
        spec_chunks: List[list] = [[] for _ in range(ncores)]
        spec_key: List[Optional[int]] = [None] * ncores
        spec_heap: list = []
        spec_tpos = [0] * ncores
        # Per-bank horizon heaps: parked cores with a *known* predicted
        # ender block publish (bound, core) under that block's home bank;
        # ``ne_bank``/``ne_blk`` make entries lazily checkable.  Bounds
        # without a known ender (cold park, window edge, dirty reset) stay
        # global-only: the capper cannot see them, the safety net covers
        # them.
        bank_heaps: Dict[int, list] = {}
        ne_bank = [-1] * ncores
        ne_blk = [-1] * ncores
        # Lazy main-heap validation: a squash rewinds a parked core's
        # clock, so heap entries carry no authority of their own —
        # ``core_clock`` holds each parked/finished core's real clock and
        # stale pops are skipped.
        core_clock = [0] * ncores
        corrupt_pending = [bool(self._corrupt_flush)]
        spec_chunks_ct = 0
        spec_ops = 0
        spec_squashes = 0
        spec_squashed_ops = 0
        spec_flushes = 0

        def apply_flush(c: int, ch: list, n_to: int) -> None:
            """Make ops [flushed, n_to) of one chunk visible (in order)."""
            nonlocal processed, next_sample
            n_new = n_to - ch[5]
            w_rel = ch[7]
            if w_rel is not None:
                hi = int(np.searchsorted(w_rel, n_to))
                wp = ch[8]
                if hi > wp:
                    lmap_c = m.l1maps[c]
                    w_blks = blk_arrs[c][ch[0] + w_rel[wp:hi]]
                    uniqw, widx_rev = np.unique(
                        w_blks[::-1], return_index=True
                    )
                    vb = ch[4]
                    for b, wo in zip(
                        uniqw.tolist(), (hi - widx_rev).tolist()
                    ):
                        wrec = lmap_c[b]
                        if corrupt_pending[0]:
                            # Injected undo-log corruption: the deferred
                            # write surfaces with the wrong state.
                            corrupt_pending[0] = False
                            wrec[0] = _ST_SHARED
                        else:
                            wrec[0] = _ST_MODIFIED
                        wrec[2] = 1
                        v = vb + wo
                        wrec[3] = v
                        latest_version[b] = v
                    ch[8] = hi
            ch[5] = n_to
            processed += n_new
            if processed >= next_sample:
                # Hits never move directory occupancy or stash bits, and
                # everything still deferred is ordered after the last
                # executed event: every crossing samples the live value.
                val = m.dir_occ_total + m.stash_bits
                while next_sample <= processed:
                    samples.append(val)
                    next_sample += sample_interval

        def flush_spec(B: int, bcore: int) -> None:
            """Flush every deferred op ordered before event (B, bcore)."""
            nonlocal spec_flushes
            spec_flushes += 1
            while spec_heap:
                kkey, c = spec_heap[0]
                if spec_key[c] != kkey:
                    heappop(spec_heap)
                    continue
                if not (kkey < B or (kkey == B and c < bcore)):
                    break
                heappop(spec_heap)
                chunks = spec_chunks[c]
                while chunks:
                    ch = chunks[0]
                    ln = ch[1] - ch[0]
                    delta = B - ch[2]
                    if delta < 0:
                        n_to = 0
                    else:
                        q, r = divmod(delta, hit_step)
                        if r or c < bcore:
                            n_to = q + 1
                        else:
                            n_to = q
                    if n_to > ln:
                        n_to = ln
                    if n_to <= ch[5]:
                        break
                    apply_flush(c, ch, n_to)
                    if n_to == ln:
                        chunks.pop(0)
                    else:
                        break
                if chunks:
                    ch0 = chunks[0]
                    nk = ch0[2] + ch0[5] * hit_step
                    spec_key[c] = nk
                    heappush(spec_heap, (nk, c))
                else:
                    spec_key[c] = None

        def flush_core_full(c: int) -> None:
            """Flush all of one core's own chunks (safe whenever the core
            is about to apply immediate effects: its deferred ops are
            program-order-earlier, and every other core's next event is
            bounded at or after this core's clock)."""
            chunks = spec_chunks[c]
            for ch in chunks:
                if ch[1] - ch[0] > ch[5]:
                    apply_flush(c, ch, ch[1] - ch[0])
            chunks.clear()
            spec_key[c] = None

        def squash_spec(c: int, fresh_blocks: list) -> None:
            """Validate core ``c``'s unflushed suffix against an event's
            touched blocks; on conflict, undo and rewind for replay."""
            nonlocal spec_squashes, spec_squashed_ops, ne_live
            chunks = spec_chunks[c]
            blk_c = blk_arrs[c]
            fresh = np.array(fresh_blocks, dtype=np.int64)
            hit_ci = -1
            p_rel = 0
            for ci, ch in enumerate(chunks):
                s0 = ch[0] + ch[5]
                if s0 >= ch[1]:
                    continue
                conf = np.isin(blk_c[s0 : ch[1]], fresh)
                if conf.any():
                    hit_ci = ci
                    p_rel = ch[5] + int(np.argmax(conf))
                    break
            if hit_ci < 0:
                return
            lmap_c = m.l1maps[c]
            lu_c = m.l1_lu[c]
            # Undo later chunks entirely, then the conflicting chunk, in
            # reverse commit order so nested LRU stamps unwind to the
            # exact pre-chunk values.  A block whose line was invalidated
            # by the interfering event has no slot to restore (its freed
            # slot is re-stamped on the next fill).
            for ch2 in reversed(chunks[hit_ci + 1 :]):
                for b, old in ch2[6].items():
                    rec2 = lmap_c.get(b)
                    if rec2 is not None:
                        lu_c[rec2[1]] = old
            ch = chunks[hit_ci]
            for b, old in ch[6].items():
                rec2 = lmap_c.get(b)
                if rec2 is not None:
                    lu_c[rec2[1]] = old
            del chunks[hit_ci + 1 :]
            new_cur = ch[0] + p_rel
            new_clock = ch[2] + p_rel * hit_step
            spec_squashes += 1
            spec_squashed_ops += cursors[c] - new_cur
            if p_rel > 0:
                # Keep the pre-conflict prefix: re-apply its LRU stamps
                # (the chunk's own tick numbering) and truncate the
                # write log at the conflict.
                seg = blk_c[ch[0] : new_cur]
                uniq, idx_rev = np.unique(seg[::-1], return_index=True)
                tb = ch[3]
                for b, li in zip(
                    uniq.tolist(), (p_rel - 1 - idx_rev).tolist()
                ):
                    rec2 = lmap_c.get(b)
                    if rec2 is not None:
                        lu_c[rec2[1]] = tb + li + 1
                ch[1] = new_cur
                w_rel = ch[7]
                if w_rel is not None:
                    hi = int(np.searchsorted(w_rel, p_rel))
                    ch[7] = w_rel[:hi] if hi else None
                if ch[5] >= p_rel:
                    # Nothing unflushed remains in the kept prefix.
                    chunks.pop()
            else:
                chunks.pop()
            # Rewind: the core replays from the conflict through the
            # exact serial path.  Its next op may itself be an event, so
            # the published bound is the rewound clock.
            cursors[c] = new_cur
            if ne[c] == inf:
                ne_live += 1
            ne[c] = new_clock
            ne_push(new_clock, c)
            ne_bank[c] = -1
            parked[c] = new_clock
            core_clock[c] = new_clock
            heappush(heap, (new_clock, c))
            scan_limit[c] = new_cur
            if chunks:
                ch0 = chunks[0]
                nk = ch0[2] + ch0[5] * hit_step
                if spec_key[c] != nk:
                    spec_key[c] = nk
                    heappush(spec_heap, (nk, c))
            else:
                spec_key[c] = None

        while heap:
            clock, core = heappop(heap)
            if speculate and (
                cursors[core] >= totals[core] or clock != core_clock[core]
            ):
                continue
            cur = cursors[core]
            total = totals[core]
            blkarr = blk_arrs[core]
            wrarr = wr_arrs[core]
            lmap = m.l1maps[core]
            lu = m.l1_lu[core]
            check_ctr = 0  # 0 => evaluate a warp before the next serial op
            while True:
                if check_ctr == 0:
                    # -- warp check: can a run of guaranteed hits commit
                    # past the other cores' parked clocks in one batch? ---
                    if cur >= scan_limit[core]:
                        install_scan(core, cur)
                    if len(touched[core]) > scan_tpos[core]:
                        revalidate(core, cur)
                    # Next run-ender at/after ``cur`` (inlined: cursors
                    # only move forward, so a pointer walk beats both a
                    # binary search and a function call on this path).
                    e = scan_enders[core]
                    i = scan_eptr[core]
                    n = len(e)
                    while i < n and e[i] < cur:
                        i += 1
                    scan_eptr[core] = i
                    next_ender = e[i] if i < n else scan_limit[core]
                    if ne[core] != inf:
                        ne_live -= 1
                        ne[core] = inf
                    while neheap:
                        h_val, h_core = neheap[0]
                        if ne[h_core] == h_val:
                            break
                        heappop(neheap)
                    else:
                        h_val, h_core = inf, -1
                    if h_val == inf:
                        k_yield = _NO_YIELD
                    elif hit_step == 0:
                        h_int = int(h_val)
                        at_front = clock < h_int or (
                            clock == h_int and core < h_core
                        )
                        k_yield = _NO_YIELD if at_front else 0
                    else:
                        h_int = int(h_val)
                        if core < h_core:
                            k_yield = (h_int - clock) // hit_step + 1
                        else:
                            k_yield = (h_int - clock - 1) // hit_step + 1
                    k = next_ender - cur
                    if k > k_yield:
                        k = k_yield
                    if (
                        k < _WARP_MIN
                        and next_ender < scan_limit[core]
                        and since_event[core] >= _RESCAN_HITS
                    ):
                        # A predicted ender clamps the run even though this
                        # core has been hitting for a long streak — the
                        # tell-tale of a scan that predates its own fills.
                        # Peek at the clamping op: if it is really a hit,
                        # reclassify instead of crawling through false
                        # enders (and publishing a clamped next-event
                        # bound that stalls every other core's warps).
                        prec = lmap.get(int(blkarr[next_ender]))
                        if (
                            prec is not None
                            and act[(prec[0] << 1) | int(wrarr[next_ender])]
                            < 3
                        ):
                            rescan(core, cur)
                            continue
                    if k >= _WARP_MIN:
                        # -- bulk-commit k guaranteed hits ----------------
                        # Immediate visibility: everything here is ordered
                        # before every other core's next event, so any
                        # still-deferred own ops (which are ordered
                        # earlier still) must surface first.
                        if spec_key[core] is not None:
                            flush_core_full(core)
                        clock += k * hit_step
                        tick = m.tick
                        chunk_blks = blkarr[cur : cur + k]
                        chunk_wr = wrarr[cur : cur + k]
                        # LRU: op j takes tick tick+j+1; a block's stamp
                        # is its last occurrence's tick — identical to the
                        # serial per-op assignment.
                        uniq, idx_rev = np.unique(
                            chunk_blks[::-1], return_index=True
                        )
                        last_idx = k - 1 - idx_rev
                        for b, li in zip(uniq.tolist(), last_idx.tolist()):
                            lu[lmap[b][1]] = tick + li + 1
                        m.tick = tick + k
                        # Writes: version = vclock + (1-based count of
                        # writes up to and including the block's last
                        # write) — the exact serial minting order.
                        n_writes = int(chunk_wr.sum())
                        if n_writes:
                            w_blks = chunk_blks[chunk_wr != 0]
                            uniqw, widx_rev = np.unique(
                                w_blks[::-1], return_index=True
                            )
                            w_ord = n_writes - widx_rev
                            vbase = m.vclock
                            for b, wo in zip(
                                uniqw.tolist(), w_ord.tolist()
                            ):
                                rec = lmap[b]
                                rec[0] = _ST_MODIFIED
                                rec[2] = 1
                                v = vbase + wo
                                rec[3] = v
                                latest_version[b] = v
                            m.vclock = vbase + n_writes
                        processed += k
                        if processed >= next_sample:
                            # Hits never move directory occupancy or stash
                            # bits: every crossing samples the same value.
                            val = m.dir_occ_total + m.stash_bits
                            while next_sample <= processed:
                                samples.append(val)
                                next_sample += sample_interval
                        cur += k
                        if cur == total:
                            cursors[core] = cur
                            clocks[core] = clock
                            core_clock[core] = clock
                            # ne[core] stays +inf: no more events here.
                            break
                        continue  # window edge or horizon: re-check
                    if speculate and next_ender - cur >= spec_min:
                        # -- optimistic warp: claim the whole classified
                        # hit run past the horizon, bank-capped ----------
                        k2 = next_ender - cur
                        seg = blkarr[cur:next_ender]
                        if bank_heaps:
                            end_clock = clock + k2 * hit_step
                            for beta in np.unique(seg & bank_mask).tolist():
                                bh = bank_heaps.get(beta)
                                if not bh:
                                    continue
                                while bh:
                                    v, c2 = bh[0]
                                    if ne[c2] == v and ne_bank[c2] == beta:
                                        break
                                    heappop(bh)
                                if not bh:
                                    continue
                                if len(bh) > 128:
                                    live = [
                                        ent
                                        for ent in bh
                                        if ne[ent[1]] == ent[0]
                                        and ne_bank[ent[1]] == beta
                                    ]
                                    if 2 * len(live) < len(bh):
                                        bh[:] = live
                                        heapq.heapify(bh)
                                v, c2 = bh[0]
                                if v >= end_clock:
                                    continue
                                # Cap at the first occurrence of the
                                # pending ender's block that this chunk
                                # could not prove itself ordered before.
                                eb = ne_blk[c2]
                                j0 = (
                                    0
                                    if v <= clock
                                    else int((v - clock) // hit_step)
                                )
                                if j0 >= k2:
                                    continue
                                hits = np.flatnonzero(seg[j0:k2] == eb)
                                if hits.size:
                                    k2 = j0 + int(hits[0])
                                    if k2 < spec_min:
                                        break
                        if k2 >= spec_min:
                            chunk_blks = seg[:k2]
                            chunk_wr = wrarr[cur : cur + k2]
                            tick = m.tick
                            uniq, idx_rev = np.unique(
                                chunk_blks[::-1], return_index=True
                            )
                            last_idx = k2 - 1 - idx_rev
                            prior_lu: Dict[int, int] = {}
                            for b, li in zip(
                                uniq.tolist(), last_idx.tolist()
                            ):
                                slot = lmap[b][1]
                                prior_lu[b] = lu[slot]
                                lu[slot] = tick + li + 1
                            m.tick = tick + k2
                            n_writes = int(chunk_wr.sum())
                            if n_writes:
                                w_rel = np.flatnonzero(chunk_wr).astype(
                                    np.int64
                                )
                            else:
                                w_rel = None
                            vbase = m.vclock
                            m.vclock = vbase + n_writes
                            spec_chunks[core].append(
                                [
                                    cur,
                                    cur + k2,
                                    clock,
                                    tick,
                                    vbase,
                                    0,
                                    prior_lu,
                                    w_rel,
                                    0,
                                ]
                            )
                            if spec_key[core] is None:
                                spec_key[core] = clock
                                heappush(spec_heap, (clock, core))
                            spec_chunks_ct += 1
                            spec_ops += k2
                            clock += k2 * hit_step
                            cur += k2
                            if cur == total:
                                cursors[core] = cur
                                clocks[core] = clock
                                core_clock[core] = clock
                                break
                            continue
                    check_ctr = _WARP_CHECK
                    if speculate and heap:
                        # A speculative commit can leave ``clock`` far past
                        # the parked-clock front (the conservative engine
                        # overruns it by at most one hit, which commutes).
                        # Serial work past the front would count ops — and
                        # surface deferred ones — ahead of remote events
                        # that serially precede them, skewing the sample
                        # counter; park instead and resume at the front.
                        head = heap[0]
                        if clock > head[0] or (
                            clock == head[0] and core > head[1]
                        ):
                            cursors[core] = cur
                            parked[core] = clock
                            core_clock[core] = clock
                            sl = scan_limit[core]
                            ender_blk = -1
                            if cur >= sl:
                                b = clock
                            else:
                                e = scan_enders[core]
                                i = scan_eptr[core]
                                n = len(e)
                                while i < n and e[i] < cur:
                                    i += 1
                                scan_eptr[core] = i
                                fe = e[i] if i < n else sl
                                b = clock + (fe - cur) * hit_step
                                if fe < sl:
                                    ender_blk = int(blkarr[fe])
                            if ne[core] == inf:
                                ne_live += 1
                            ne[core] = b
                            ne_push(b, core)
                            if ender_blk >= 0:
                                beta = ender_blk & bank_mask
                                bh = bank_heaps.get(beta)
                                if bh is None:
                                    bh = bank_heaps[beta] = []
                                heappush(bh, (b, core))
                                ne_bank[core] = beta
                                ne_blk[core] = ender_blk
                            else:
                                ne_bank[core] = -1
                            heappush(heap, (clock, core))
                            break
                    if spec_key[core] is not None:
                        # Entering the inline path: serial hits apply
                        # immediately, so earlier deferred ops surface
                        # now (the core runs at the global front here —
                        # nothing remote can order before them).
                        flush_core_full(core)
                # -- one serial op under the serial yield rule ------------
                # Popping as heap minimum and yielding whenever the rule
                # fires keeps (clock, core) at the global front, so any
                # slow event below executes at exactly its serial position
                # with every earlier hit already committed.
                blk = int(blkarr[cur])
                w = int(wrarr[cur])
                rec = lmap.get(blk)
                event = False
                if rec is None:
                    if spec_heap:
                        # The event is at its exact serial position:
                        # surface every deferred op ordered before it so
                        # it observes — and its interference validates
                        # against — precisely the serial past.
                        flush_spec(clock, core)
                    clock += miss(core, blk, w) + fixed
                    event = True
                else:
                    m.tick = t = m.tick + 1
                    lu[rec[1]] = t
                    a = act[(rec[0] << 1) | w]
                    if a == 1:
                        clock += hit_step
                    elif a == 2:
                        rec[0] = _ST_MODIFIED
                        rec[2] = 1
                        m.vclock = v = m.vclock + 1
                        latest_version[blk] = v
                        rec[3] = v
                        clock += hit_step
                    elif a == 3:
                        if spec_heap:
                            flush_spec(clock, core)
                        clock += upgrade(core, blk, rec) + fixed
                        event = True
                    else:
                        raise ProtocolError(
                            f"table dispatched resident line {blk:#x} to"
                            f" action {a}"
                        )
                processed += 1
                if processed == next_sample:
                    next_sample += sample_interval
                    samples.append(m.dir_occ_total + m.stash_bits)
                cur += 1
                if event:
                    # The event may have invalidated or demoted lines
                    # under other cores' scans: drop their bounds to the
                    # parked clock until their next revalidation, and
                    # validate their unflushed speculative suffixes
                    # against the interference.  Own residency may have
                    # changed too (fills, victim evictions) — force a
                    # warp re-check, which revalidates before trusting
                    # the classification.
                    if dirty:
                        for c in dirty:
                            if speculate:
                                tl = touched[c]
                                nt = len(tl)
                                tp = spec_tpos[c]
                                if nt > tp:
                                    if c != core and spec_chunks[c]:
                                        squash_spec(c, tl[tp:])
                                    spec_tpos[c] = nt
                            if c != core and cursors[c] < totals[c]:
                                b = parked[c]
                                ne[c] = b
                                ne_push(b, c)
                                ne_bank[c] = -1
                        dirty.clear()
                    since_event[core] = 0
                    check_ctr = 0
                else:
                    since_event[core] += 1
                    check_ctr -= 1
                if cur == total:
                    cursors[core] = cur
                    clocks[core] = clock
                    core_clock[core] = clock
                    if ne[core] != inf:
                        ne_live -= 1
                        ne[core] = inf
                    break
                if heap:
                    head = heap[0]
                    if clock > head[0] or (
                        clock == head[0] and core > head[1]
                    ):
                        cursors[core] = cur
                        parked[core] = clock
                        core_clock[core] = clock
                        # Inlined next-event bound: exact when an ender
                        # sits inside the scanned window, conservatively
                        # the window edge (nothing beyond is classified)
                        # or the parked clock (nothing scanned at all).
                        # Sound against cascades: any event that moves an
                        # ender earlier also dirties this core, resetting
                        # the bound to the parked clock.
                        sl = scan_limit[core]
                        ender_blk = -1
                        if cur >= sl:
                            b = clock
                        else:
                            e = scan_enders[core]
                            i = scan_eptr[core]
                            n = len(e)
                            while i < n and e[i] < cur:
                                i += 1
                            scan_eptr[core] = i
                            fe = e[i] if i < n else sl
                            b = clock + (fe - cur) * hit_step
                            if fe < sl:
                                ender_blk = int(blkarr[fe])
                        if ne[core] == inf:
                            ne_live += 1
                        ne[core] = b
                        ne_push(b, core)
                        if speculate:
                            if ender_blk >= 0:
                                beta = ender_blk & bank_mask
                                bh = bank_heaps.get(beta)
                                if bh is None:
                                    bh = bank_heaps[beta] = []
                                heappush(bh, (b, core))
                                ne_bank[core] = beta
                                ne_blk[core] = ender_blk
                            else:
                                ne_bank[core] = -1
                        heappush(heap, (clock, core))
                        break

        if speculate and spec_heap:
            # Everything still deferred is ordered after the last event:
            # surface it against the final machine state.
            flush_spec(_NO_YIELD, ncores)

        self.heap_stats = {
            "neheap_max": neheap_max,
            "neheap_compactions": compactions,
            "neheap_final": len(neheap),
            "neheap_live": ne_live,
        }
        self.spec_stats = {
            "chunks": spec_chunks_ct,
            "ops": spec_ops,
            "squashes": spec_squashes,
            "squashed_ops": spec_squashed_ops,
            "flushes": spec_flushes,
        }

        m.processed = processed
        m.writes_ct = writes_total
        m.latency_total = sum(clocks) - m.fixed * processed
        return SimulationResult(
            config=self.config,
            cycles_per_core=clocks,
            stats=m.flat_stats(),
            effective_tracking_samples=samples,
            engine="parallel",
        )
