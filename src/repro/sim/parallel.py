"""Bank-parallel scaling engine: run-length batched execution to 1024 cores.

The third execution engine for the same simulated machine, built for the
regime the paper actually argues about — hundreds to a thousand cores —
where the serial engines' per-operation Python dispatch is the wall.  It
layers three mechanisms over the flat state of :mod:`repro.sim.vector`:

1. **Numpy-native streams and snapshots.**  Each core's packed stream is
   held as numpy block/write arrays end to end (no per-epoch ``tolist()``
   round-trip), and each core's L1 residency is snapshotted into sorted
   block/state arrays so a whole window of future operations is classified
   in one vectorized pass.

2. **Run-length classification with bulk commits.**  Between two protocol
   events a core's stream is a *hit run*: no operation moves a line into
   or out of the private cache, and states change only E→M under the
   core's own writes.  An operation ends the run iff its block is not
   resident or it writes a SHARED/OWNED line — a predicate over a state
   snapshot, evaluated with ``searchsorted`` over thousands of ops at
   once.  The interleave loop then *commits whole runs in bulk* ("warps"):
   clocks, LRU stamps, data versions and effective-tracking samples are
   computed arithmetically — exactly — instead of op by op, and only the
   rare run-enders and short runs take the scalar inline path of
   :class:`~repro.sim.vector._FlatMachine`.

3. **Parallel scan workers over shared memory.**  With ``workers >= 2``
   the classification scans are dispatched to worker processes that read
   the streams from ``multiprocessing.shared_memory`` segments, one
   epoch-sized window ahead of the interleave loop.  A scan is a pure
   function of (stream slice, residency snapshot), and every snapshot is
   taken at a deterministic point of the serial commit loop, so results
   are **bit-identical for any worker count** — workers move scan work off
   the critical path, they never change what is computed.

Snapshots go stale: another core's miss can invalidate or demote lines
under a scanned window.  Every such slow-path event feeds the machine's
``touched`` hook, and the commit loop revalidates a window against the
touched blocks before trusting it — a conflicting operation is demoted to
an authoritative scalar step (stale classification can only turn predicted
hits into run-enders, never the reverse, so the fallback is exact, not
approximate).  Directory and LLC home-bank state stays partitioned by the
address-interleaved bank id (``block & (num_cores - 1)``) exactly as in
the flat machine; all home-bank mutations happen in the deterministic
commit loop.

The contract is the golden one: results — per-core cycles, the flattened
stats tree, effective-tracking samples — are bit-identical to the serial
interpreter and vector engines for every supported configuration
(:func:`parallel_supports` delegates to
:func:`repro.sim.vector.vector_supports`).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..coherence.tables import L1Tables
from ..common.addr import log2_exact
from ..common.config import SystemConfig
from ..common.errors import ProtocolError, TraceError
from .results import SimulationResult
from .trace import PackedTrace
from .vector import (
    DEFAULT_EPOCH_OPS,
    _FlatMachine,
    _ST_MODIFIED,
    _ST_OWNED,
    _ST_SHARED,
    vector_supports,
)

#: Smallest hit run worth a vectorised bulk commit — numpy's per-call
#: overhead beats its throughput below a few dozen elements, so shorter
#: runs execute through the serial inline path instead.
_WARP_MIN = 24

#: Serial ops between warp re-checks.  While a core runs inline it only
#: re-evaluates the horizon every this many hits (every event forces an
#: immediate re-check), keeping the check cost off the per-op path.
_WARP_CHECK = 16

#: Serial hits since a core's last own slow event before a clamping
#: run-ender prediction is double-checked against the live residency.
#: While events are frequent (cold-start, heavy sharing) the serial path
#: is already optimal and rescans would be wasted; a long hit streak says
#: the scan is stale and is throttling everyone's warps.
_RESCAN_HITS = 48

#: A practically-infinite op budget (no run is longer than a stream).
_NO_YIELD = 1 << 62


class _TouchList(list):
    """A touched-blocks list that also flags its core in a shared set.

    The flat machine's slow paths append every block they invalidate or
    demote; the commit loop needs to know *which cores* a just-executed
    event interfered with so it can drop their next-event bounds before
    any other core commits hits past the interference.
    """

    __slots__ = ("core", "dirty")

    def __init__(self, core: int, dirty: set) -> None:
        super().__init__()
        self.core = core
        self.dirty = dirty

    def append(self, blk: int) -> None:
        list.append(self, blk)
        self.dirty.add(self.core)


def parallel_supports(config: SystemConfig) -> Optional[str]:
    """``None`` when the bank-parallel engine models ``config`` exactly.

    The engine executes slow paths through the flat machine, so its
    envelope is exactly the vector engine's.
    """
    return vector_supports(config)


def _classify(
    blks: np.ndarray,
    wr: np.ndarray,
    res_sorted: np.ndarray,
    st_sorted: np.ndarray,
) -> np.ndarray:
    """Positions (relative to the window) of the run-ending operations.

    An op ends a hit run iff its block is not in the residency snapshot or
    it writes a line the snapshot holds SHARED/OWNED.  Pure function —
    callable from the parent or a scan worker.
    """
    if res_sorted.size == 0:
        return np.arange(blks.size, dtype=np.int64)
    pos = np.searchsorted(res_sorted, blks)
    posc = np.minimum(pos, res_sorted.size - 1)
    resident = res_sorted[posc] == blks
    st = st_sorted[posc]
    ender = ~resident | (
        (wr != 0) & ((st == _ST_SHARED) | (st == _ST_OWNED))
    )
    return np.flatnonzero(ender).astype(np.int64)


def _scan_worker(
    shm_blk_name: str,
    shm_wr_name: str,
    offsets: List[Tuple[int, int]],
    req_q,
    rep_q,
) -> None:
    """Worker loop: classify windows of the shared streams on request.

    Requests are ``(core, gen, start, stop, res_bytes, st_bytes)``; replies
    are ``(core, gen, ender_positions_bytes)`` — ``gen`` is a parent-side
    sequence number so a reply can never be mistaken for a different
    request that happens to share its window start.  ``None`` shuts the
    worker down.  Streams live in the named shared-memory segments; only
    the tiny residency snapshot rides in each request.
    """
    from multiprocessing import shared_memory

    shm_b = shared_memory.SharedMemory(name=shm_blk_name)
    shm_w = shared_memory.SharedMemory(name=shm_wr_name)
    try:
        views: List[Tuple[np.ndarray, np.ndarray]] = []
        for off, ln in offsets:
            views.append(
                (
                    np.ndarray(
                        (ln,), dtype=np.int64, buffer=shm_b.buf, offset=off * 8
                    ),
                    np.ndarray(
                        (ln,), dtype=np.uint8, buffer=shm_w.buf, offset=off
                    ),
                )
            )
        while True:
            req = req_q.get()
            if req is None:
                break
            core, gen, start, stop, res_bytes, st_bytes = req
            blks, wr = views[core]
            rel = _classify(
                blks[start:stop],
                wr[start:stop],
                np.frombuffer(res_bytes, dtype=np.int64),
                np.frombuffer(st_bytes, dtype=np.int8),
            )
            rep_q.put((core, gen, rel.tobytes()))
    finally:
        shm_b.close()
        shm_w.close()


class _ScanPool:
    """Scan workers over shared-memory copies of the per-core streams."""

    def __init__(
        self,
        workers: int,
        blk_arrs: List[Optional[np.ndarray]],
        wr_arrs: List[Optional[np.ndarray]],
    ) -> None:
        import multiprocessing as mp
        from multiprocessing import shared_memory

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")
        total_words = sum(int(a.size) for a in blk_arrs if a is not None)
        self._shm_blk = shared_memory.SharedMemory(
            create=True, size=max(8, total_words * 8)
        )
        self._shm_wr = shared_memory.SharedMemory(
            create=True, size=max(1, total_words)
        )
        offsets: List[Tuple[int, int]] = []
        off = 0
        blk_all = np.ndarray(
            (total_words,), dtype=np.int64, buffer=self._shm_blk.buf
        )
        wr_all = np.ndarray(
            (total_words,), dtype=np.uint8, buffer=self._shm_wr.buf
        )
        for blks, wr in zip(blk_arrs, wr_arrs):
            if blks is None:
                offsets.append((0, 0))
                continue
            ln = int(blks.size)
            blk_all[off : off + ln] = blks
            wr_all[off : off + ln] = wr
            offsets.append((off, ln))
            off += ln
        # Full Queues, not SimpleQueues: their feeder thread makes parent
        # puts non-blocking, so a burst of prefetch requests can never
        # stall the commit loop behind a full pipe on a busy host.
        self.req_q = ctx.Queue()
        self.rep_q = ctx.Queue()
        self.procs = [
            ctx.Process(
                target=_scan_worker,
                args=(
                    self._shm_blk.name,
                    self._shm_wr.name,
                    offsets,
                    self.req_q,
                    self.rep_q,
                ),
                daemon=True,
            )
            for _ in range(workers)
        ]
        for p in self.procs:
            p.start()

    def close(self) -> None:
        for _ in self.procs:
            self.req_q.put(None)
        for p in self.procs:
            p.join(timeout=10)
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
                p.join(timeout=5)
        for q in (self.req_q, self.rep_q):
            q.cancel_join_thread()
            q.close()
        self._shm_blk.close()
        self._shm_wr.close()
        self._shm_blk.unlink()
        self._shm_wr.unlink()


class ParallelEngine:
    """Runs one PackedTrace with run-length batching and scan workers.

    ``workers=0`` (or 1) classifies inline in the parent — the bulk-commit
    fast path alone is the dominant win on few-CPU hosts; ``workers >= 2``
    adds the shared-memory scan pool.  ``epoch_ops`` is the scan-window
    size (results are identical for any value — pinned by tests).
    """

    def __init__(
        self,
        config: SystemConfig,
        tables: Optional[L1Tables] = None,
        epoch_ops: int = DEFAULT_EPOCH_OPS,
        sample_interval: int = 4096,
        workers: int = 0,
    ) -> None:
        reason = parallel_supports(config)
        if reason is not None:
            raise TraceError(f"parallel engine cannot run this config: {reason}")
        if epoch_ops < 1:
            raise TraceError("epoch_ops must be >= 1")
        if sample_interval < 1:
            raise TraceError("sample_interval must be >= 1")
        if workers < 0:
            raise TraceError("workers must be non-negative")
        self.config = config
        self.tables = tables
        self.epoch_ops = epoch_ops
        self.sample_interval = sample_interval
        self.workers = workers

    def run(self, trace) -> SimulationResult:
        """Execute the whole trace; bit-identical to the serial engines."""
        config = self.config
        if not isinstance(trace, PackedTrace):
            trace = PackedTrace.from_trace(trace)
        if trace.num_cores > config.num_cores:
            raise TraceError(
                f"trace has {trace.num_cores} cores, system only {config.num_cores}"
            )
        m = _FlatMachine(config, self.tables)
        ncores = trace.num_cores
        dirty: set = set()
        touched: List[List[int]] = [_TouchList(c, dirty) for c in range(ncores)]
        m.touched = touched
        packshift = log2_exact(config.block_bytes) + 1

        # Streams as numpy block/write arrays, end to end.
        blk_arrs: List[Optional[np.ndarray]] = []
        wr_arrs: List[Optional[np.ndarray]] = []
        writes_total = 0
        for core in range(ncores):
            stream = trace.streams[core]
            if len(stream):
                words = np.frombuffer(stream, dtype=np.uint64)
                wr = (words & np.uint64(1)).astype(np.uint8)
                writes_total += int(wr.sum())
                blk_arrs.append((words >> np.uint64(packshift)).astype(np.int64))
                wr_arrs.append(wr)
            else:
                blk_arrs.append(None)
                wr_arrs.append(None)

        pool: Optional[_ScanPool] = None
        if self.workers >= 2:
            pool = _ScanPool(self.workers, blk_arrs, wr_arrs)
        try:
            return self._run_loop(
                m, trace, blk_arrs, wr_arrs, writes_total, pool, dirty
            )
        finally:
            if pool is not None:
                pool.close()

    # -- scan management ---------------------------------------------------

    @staticmethod
    def _snapshot(lmap: Dict[int, list]) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted (blocks, states) arrays of one core's L1 residency."""
        n_res = len(lmap)
        res = np.fromiter(lmap.keys(), dtype=np.int64, count=n_res)
        sts = np.fromiter(
            (rec[0] for rec in lmap.values()), dtype=np.int8, count=n_res
        )
        order = np.argsort(res)
        return res[order], sts[order]

    def _run_loop(
        self,
        m: _FlatMachine,
        trace: PackedTrace,
        blk_arrs: List[Optional[np.ndarray]],
        wr_arrs: List[Optional[np.ndarray]],
        writes_total: int,
        pool: Optional[_ScanPool],
        dirty: set,
    ) -> SimulationResult:
        ncores = trace.num_cores
        totals = [
            0 if blk_arrs[core] is None else int(blk_arrs[core].size)
            for core in range(ncores)
        ]
        clocks = [0] * ncores
        cursors = [0] * ncores
        samples: List[int] = []
        sample_interval = self.sample_interval
        next_sample = sample_interval
        processed = 0
        epoch = self.epoch_ops
        touched = m.touched

        # Per-core scan state: a window [base, limit) classified against a
        # snapshot, its ender positions (a sorted Python list consumed
        # front-to-back through ``scan_eptr`` — cursors only move forward,
        # so a pointer beats a binary search in the hot loop), and the
        # touched-list length at snapshot time.
        scan_limit = [0] * ncores
        scan_enders: List[list] = [[] for _ in range(ncores)]
        scan_eptr = [0] * ncores
        scan_tpos = [0] * ncores
        # Prefetch bookkeeping (workers only).  At most one request is in
        # flight per core — ``inflight[core]`` holds its generation number
        # until the reply lands, ``expected[core]`` the (gen, start, stop,
        # tpos) of the window the core still wants (None once obsolete),
        # and ``pending`` buffers matched replies until consumed.  The
        # scan choice (prefetched vs inline) can vary with reply timing,
        # but every scan is exact-after-revalidation, so results do not.
        inflight: List[Optional[int]] = [None] * ncores
        expected: List[Optional[Tuple[int, int, int, int]]] = [None] * ncores
        pending: Dict[Tuple[int, int], bytes] = {}
        gen_counter = 0

        act = m.act
        fixed = m.fixed
        hit_step = m.t_l1 + fixed
        latest_version = m.latest_version
        miss = m._miss
        upgrade = m._upgrade

        def take_reply(item: Tuple[int, int, bytes]) -> None:
            rcore, rgen, rbytes = item
            if inflight[rcore] == rgen:
                inflight[rcore] = None
            rexp = expected[rcore]
            if rexp is not None and rexp[0] == rgen:
                pending[(rcore, rgen)] = rbytes
            # else: the window was truncated or re-scanned inline — drop.

        def drain_replies() -> None:
            import queue as _queue

            while True:
                try:
                    item = pool.rep_q.get_nowait()
                except _queue.Empty:
                    return
                take_reply(item)

        def issue_prefetch(core: int, start: int) -> None:
            nonlocal gen_counter
            if pool is None or start >= totals[core]:
                expected[core] = None
                return
            if inflight[core] is not None:
                # Previous request still unconsumed: orphan it (its reply
                # clears the slot on arrival) instead of flooding the
                # queue with requests for every truncated window.
                expected[core] = None
                return
            stop = min(start + epoch, totals[core])
            res_sorted, st_sorted = self._snapshot(m.l1maps[core])
            gen_counter += 1
            pool.req_q.put(
                (
                    core,
                    gen_counter,
                    start,
                    stop,
                    res_sorted.tobytes(),
                    st_sorted.tobytes(),
                )
            )
            inflight[core] = gen_counter
            expected[core] = (gen_counter, start, stop, len(touched[core]))

        def install_scan(core: int, cur: int) -> None:
            total = totals[core]
            stop = min(cur + epoch, total)
            rel = None
            if pool is not None:
                drain_replies()
                exp = expected[core]
                if exp is not None and exp[1] == cur:
                    rbytes = pending.pop((core, exp[0]), None)
                    if rbytes is not None:
                        rel = np.frombuffer(rbytes, dtype=np.int64)
                        stop = exp[2]
                        scan_tpos[core] = exp[3]
                    # Consumed, or orphaned: never block on a worker — on
                    # a loaded host the reply can be arbitrarily late and
                    # the inline scan is cheap.  A late reply is dropped
                    # by take_reply once ``expected`` is cleared.
                    expected[core] = None
            if rel is None:
                # Inline scan (no pool, or prefetch not ready).
                scan_tpos[core] = len(touched[core])
                res_sorted, st_sorted = self._snapshot(m.l1maps[core])
                rel = _classify(
                    blk_arrs[core][cur:stop],
                    wr_arrs[core][cur:stop],
                    res_sorted,
                    st_sorted,
                )
            scan_enders[core] = (rel + cur).tolist()
            scan_eptr[core] = 0
            scan_limit[core] = stop
            issue_prefetch(core, stop)

        def revalidate(core: int, cur: int) -> None:
            """Fold slow-path interference since the snapshot into the scan.

            Interference only removes or demotes lines, so a conflicting
            op is forced onto the authoritative scalar path by inserting
            it as a run-ender and truncating the window behind it.
            """
            tl = touched[core]
            tpos = scan_tpos[core]
            if len(tl) > tpos:
                limit = scan_limit[core]
                fresh = np.array(tl[tpos:], dtype=np.int64)
                conf = np.isin(blk_arrs[core][cur:limit], fresh)
                if conf.any():
                    first = cur + int(np.argmax(conf))
                    e = scan_enders[core]
                    kept = [x for x in e[scan_eptr[core] :] if x < first]
                    kept.append(first)
                    scan_enders[core] = kept
                    scan_eptr[core] = 0
                    scan_limit[core] = first + 1
                scan_tpos[core] = len(tl)

        def rescan(core: int, cur: int) -> None:
            """Reclassify the window ahead against the live residency.

            Called when a predicted run-ender turns out to be a plain hit
            — the tell-tale that the snapshot predates this core's recent
            fills and the stale scan would otherwise clamp every warp.
            """
            stop = min(cur + epoch, totals[core])
            scan_tpos[core] = len(touched[core])
            res_sorted, st_sorted = self._snapshot(m.l1maps[core])
            rel = _classify(
                blk_arrs[core][cur:stop],
                wr_arrs[core][cur:stop],
                res_sorted,
                st_sorted,
            )
            scan_enders[core] = (rel + cur).tolist()
            scan_eptr[core] = 0
            scan_limit[core] = stop


        # ``ne[c]`` is each parked core's next-event bound.  A core may
        # bulk-commit hits only while they order strictly before every
        # other core's bound (serial tie rule included): hits commute with
        # other cores' hits, but never cross a slow event in either
        # direction.  Slow events themselves run one at a time, only when
        # their core pops as the heap minimum — i.e. at exactly their
        # serial (clock, core) position.
        #
        # The horizon (min over other cores) is queried once per bulk
        # commit; a lazy-deletion min-heap mirrors ``ne`` — every finite
        # assignment pushes, queries pop entries that no longer match —
        # so the query is O(log) amortised instead of an O(ncores) scan.
        inf = float("inf")
        ne = [0 if totals[c] else inf for c in range(ncores)]
        neheap = [(0, c) for c in range(ncores) if totals[c]]
        heapq.heapify(neheap)
        parked = [0] * ncores
        since_event = [0] * ncores

        heap = [(0, core) for core in range(ncores) if totals[core]]
        heapq.heapify(heap)
        heappush = heapq.heappush
        heappop = heapq.heappop

        while heap:
            clock, core = heappop(heap)
            cur = cursors[core]
            total = totals[core]
            blkarr = blk_arrs[core]
            wrarr = wr_arrs[core]
            lmap = m.l1maps[core]
            lu = m.l1_lu[core]
            check_ctr = 0  # 0 => evaluate a warp before the next serial op
            while True:
                if check_ctr == 0:
                    # -- warp check: can a run of guaranteed hits commit
                    # past the other cores' parked clocks in one batch? ---
                    if cur >= scan_limit[core]:
                        install_scan(core, cur)
                    if len(touched[core]) > scan_tpos[core]:
                        revalidate(core, cur)
                    # Next run-ender at/after ``cur`` (inlined: cursors
                    # only move forward, so a pointer walk beats both a
                    # binary search and a function call on this path).
                    e = scan_enders[core]
                    i = scan_eptr[core]
                    n = len(e)
                    while i < n and e[i] < cur:
                        i += 1
                    scan_eptr[core] = i
                    next_ender = e[i] if i < n else scan_limit[core]
                    ne[core] = inf
                    while neheap:
                        h_val, h_core = neheap[0]
                        if ne[h_core] == h_val:
                            break
                        heappop(neheap)
                    else:
                        h_val, h_core = inf, -1
                    if h_val == inf:
                        k_yield = _NO_YIELD
                    elif hit_step == 0:
                        h_int = int(h_val)
                        at_front = clock < h_int or (
                            clock == h_int and core < h_core
                        )
                        k_yield = _NO_YIELD if at_front else 0
                    else:
                        h_int = int(h_val)
                        if core < h_core:
                            k_yield = (h_int - clock) // hit_step + 1
                        else:
                            k_yield = (h_int - clock - 1) // hit_step + 1
                    k = next_ender - cur
                    if k > k_yield:
                        k = k_yield
                    if (
                        k < _WARP_MIN
                        and next_ender < scan_limit[core]
                        and since_event[core] >= _RESCAN_HITS
                    ):
                        # A predicted ender clamps the run even though this
                        # core has been hitting for a long streak — the
                        # tell-tale of a scan that predates its own fills.
                        # Peek at the clamping op: if it is really a hit,
                        # reclassify instead of crawling through false
                        # enders (and publishing a clamped next-event
                        # bound that stalls every other core's warps).
                        prec = lmap.get(int(blkarr[next_ender]))
                        if (
                            prec is not None
                            and act[(prec[0] << 1) | int(wrarr[next_ender])]
                            < 3
                        ):
                            rescan(core, cur)
                            continue
                    if k >= _WARP_MIN:
                        # -- bulk-commit k guaranteed hits ----------------
                        clock += k * hit_step
                        tick = m.tick
                        chunk_blks = blkarr[cur : cur + k]
                        chunk_wr = wrarr[cur : cur + k]
                        # LRU: op j takes tick tick+j+1; a block's stamp
                        # is its last occurrence's tick — identical to the
                        # serial per-op assignment.
                        uniq, idx_rev = np.unique(
                            chunk_blks[::-1], return_index=True
                        )
                        last_idx = k - 1 - idx_rev
                        for b, li in zip(uniq.tolist(), last_idx.tolist()):
                            lu[lmap[b][1]] = tick + li + 1
                        m.tick = tick + k
                        # Writes: version = vclock + (1-based count of
                        # writes up to and including the block's last
                        # write) — the exact serial minting order.
                        n_writes = int(chunk_wr.sum())
                        if n_writes:
                            w_blks = chunk_blks[chunk_wr != 0]
                            uniqw, widx_rev = np.unique(
                                w_blks[::-1], return_index=True
                            )
                            w_ord = n_writes - widx_rev
                            vbase = m.vclock
                            for b, wo in zip(
                                uniqw.tolist(), w_ord.tolist()
                            ):
                                rec = lmap[b]
                                rec[0] = _ST_MODIFIED
                                rec[2] = 1
                                v = vbase + wo
                                rec[3] = v
                                latest_version[b] = v
                            m.vclock = vbase + n_writes
                        processed += k
                        if processed >= next_sample:
                            # Hits never move directory occupancy or stash
                            # bits: every crossing samples the same value.
                            val = m.dir_occ_total + m.stash_bits
                            while next_sample <= processed:
                                samples.append(val)
                                next_sample += sample_interval
                        cur += k
                        if cur == total:
                            cursors[core] = cur
                            clocks[core] = clock
                            # ne[core] stays +inf: no more events here.
                            break
                        continue  # window edge or horizon: re-check
                    check_ctr = _WARP_CHECK
                # -- one serial op under the serial yield rule ------------
                # Popping as heap minimum and yielding whenever the rule
                # fires keeps (clock, core) at the global front, so any
                # slow event below executes at exactly its serial position
                # with every earlier hit already committed.
                blk = int(blkarr[cur])
                w = int(wrarr[cur])
                rec = lmap.get(blk)
                event = False
                if rec is None:
                    clock += miss(core, blk, w) + fixed
                    event = True
                else:
                    m.tick = t = m.tick + 1
                    lu[rec[1]] = t
                    a = act[(rec[0] << 1) | w]
                    if a == 1:
                        clock += hit_step
                    elif a == 2:
                        rec[0] = _ST_MODIFIED
                        rec[2] = 1
                        m.vclock = v = m.vclock + 1
                        latest_version[blk] = v
                        rec[3] = v
                        clock += hit_step
                    elif a == 3:
                        clock += upgrade(core, blk, rec) + fixed
                        event = True
                    else:
                        raise ProtocolError(
                            f"table dispatched resident line {blk:#x} to"
                            f" action {a}"
                        )
                processed += 1
                if processed == next_sample:
                    next_sample += sample_interval
                    samples.append(m.dir_occ_total + m.stash_bits)
                cur += 1
                if event:
                    # The event may have invalidated or demoted lines
                    # under other cores' scans: drop their bounds to the
                    # parked clock until their next revalidation.  Own
                    # residency may have changed too (fills, victim
                    # evictions) — force a warp re-check, which
                    # revalidates before trusting the classification.
                    if dirty:
                        for c in dirty:
                            if c != core and cursors[c] < totals[c]:
                                b = parked[c]
                                ne[c] = b
                                heappush(neheap, (b, c))
                        dirty.clear()
                    since_event[core] = 0
                    check_ctr = 0
                else:
                    since_event[core] += 1
                    check_ctr -= 1
                if cur == total:
                    cursors[core] = cur
                    clocks[core] = clock
                    ne[core] = inf
                    break
                if heap:
                    head = heap[0]
                    if clock > head[0] or (
                        clock == head[0] and core > head[1]
                    ):
                        cursors[core] = cur
                        parked[core] = clock
                        # Inlined next-event bound: exact when an ender
                        # sits inside the scanned window, conservatively
                        # the window edge (nothing beyond is classified)
                        # or the parked clock (nothing scanned at all).
                        # Sound against cascades: any event that moves an
                        # ender earlier also dirties this core, resetting
                        # the bound to the parked clock.
                        sl = scan_limit[core]
                        if cur >= sl:
                            b = clock
                        else:
                            e = scan_enders[core]
                            i = scan_eptr[core]
                            n = len(e)
                            while i < n and e[i] < cur:
                                i += 1
                            scan_eptr[core] = i
                            fe = e[i] if i < n else sl
                            b = clock + (fe - cur) * hit_step
                        ne[core] = b
                        heappush(neheap, (b, core))
                        heappush(heap, (clock, core))
                        break

        m.processed = processed
        m.writes_ct = writes_total
        m.latency_total = sum(clocks) - m.fixed * processed
        return SimulationResult(
            config=self.config,
            cycles_per_core=clocks,
            stats=m.flat_stats(),
            effective_tracking_samples=samples,
            engine="parallel",
        )
