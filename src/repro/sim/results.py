"""Simulation results: one container, plus the derived metrics the
experiments report.

A :class:`SimulationResult` snapshots the flattened statistics tree and the
per-core cycle counts at the end of a run.  The properties on it are the
vocabulary of EXPERIMENTS.md — execution time, average memory latency,
directory-induced invalidations per kilo-access, discovery rates, traffic —
so benches and examples never poke at raw counter names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..common.config import SystemConfig
from ..common.stats import per_kilo, ratio


@dataclass
class SimulationResult:
    """Everything a finished run exposes to analysis code."""

    config: SystemConfig
    cycles_per_core: List[int]
    stats: Dict[str, float] = field(default_factory=dict)
    effective_tracking_samples: List[int] = field(default_factory=list)
    #: Which engine produced the result ("interp" or "vector").  Excluded
    #: from equality: the engines' bit-identical-output contract is stated
    #: as ``interp_result == vector_result``.
    engine: str = field(default="interp", compare=False)

    # -- core performance metrics -------------------------------------------------

    @property
    def execution_time(self) -> int:
        """Cycles until the slowest core finished — the headline metric."""
        return max(self.cycles_per_core) if self.cycles_per_core else 0

    @property
    def total_accesses(self) -> float:
        """Memory operations processed."""
        return self.stats.get("system.protocol.accesses", 0.0)

    @property
    def avg_access_latency(self) -> float:
        """Mean cycles per memory operation."""
        return ratio(self.stats.get("system.protocol.latency_total", 0.0), self.total_accesses)

    # -- L1 / LLC ---------------------------------------------------------------------

    @property
    def l1_miss_rate(self) -> float:
        """L1 misses / accesses."""
        return ratio(self.stats.get("system.protocol.l1_misses", 0.0), self.total_accesses)

    @property
    def llc_misses(self) -> float:
        """LLC misses (memory fetches on the demand path)."""
        return self.stats.get("system.protocol.llc_misses", 0.0)

    # -- directory metrics ----------------------------------------------------------------

    @property
    def dir_evictions(self) -> float:
        """Directory entries displaced by conflicts (all actions)."""
        return self.stats.get("system.directory.evictions", 0.0)

    @property
    def stash_evictions(self) -> float:
        """Displacements resolved by stashing (no invalidation)."""
        return self.stats.get("system.directory.evictions_stash", 0.0)

    @property
    def invalidating_evictions(self) -> float:
        """Displacements that had to invalidate cached copies."""
        return self.stats.get("system.directory.evictions_invalidate", 0.0)

    @property
    def dir_induced_invalidations(self) -> float:
        """Cached copies actually destroyed by directory evictions."""
        return self.stats.get("system.protocol.dir_induced_invalidations", 0.0)

    @property
    def dir_induced_invals_per_kilo(self) -> float:
        """The paper's motivation metric: invalidations per 1k accesses."""
        return per_kilo(self.dir_induced_invalidations, self.total_accesses)

    @property
    def coverage_misses(self) -> float:
        """L1 misses attributable to a directory-eviction invalidation."""
        return self.stats.get("system.protocol.coverage_misses", 0.0)

    @property
    def coverage_misses_per_kilo(self) -> float:
        """Coverage misses per 1k accesses."""
        return per_kilo(self.coverage_misses, self.total_accesses)

    # -- discovery metrics -------------------------------------------------------------------

    @property
    def discovery_broadcasts(self) -> float:
        """Discovery broadcasts issued."""
        return self.stats.get("system.discovery.broadcasts", 0.0)

    @property
    def false_discoveries(self) -> float:
        """Broadcasts that found no hidden copy (stale stash bit)."""
        return self.stats.get("system.discovery.false_discoveries", 0.0)

    @property
    def discovery_per_kilo(self) -> float:
        """Discovery broadcasts per 1k accesses."""
        return per_kilo(self.discovery_broadcasts, self.total_accesses)

    @property
    def false_discovery_rate(self) -> float:
        """False broadcasts / all broadcasts."""
        return ratio(self.false_discoveries, self.discovery_broadcasts)

    # -- traffic / memory ------------------------------------------------------------------------

    @property
    def total_flit_hops(self) -> float:
        """Hop-weighted flits over the whole run (the traffic metric)."""
        return self.stats.get("system.noc.flit_hops.total", 0.0)

    @property
    def total_messages(self) -> float:
        """Raw message count."""
        return self.stats.get("system.noc.msgs.total", 0.0)

    def traffic_of(self, msg_class: str) -> float:
        """Hop-weighted flits of one message class (by class name)."""
        return self.stats.get(f"system.noc.flit_hops.{msg_class}", 0.0)

    @property
    def memory_reads(self) -> float:
        """Blocks fetched from main memory."""
        return self.stats.get("system.memory.reads", 0.0)

    # -- comparisons -------------------------------------------------------------------------------

    def normalized_time(self, baseline: "SimulationResult") -> float:
        """Execution time normalized to a baseline run (paper's y-axis)."""
        return ratio(float(self.execution_time), float(baseline.execution_time), default=1.0)

    def normalized_traffic(self, baseline: "SimulationResult") -> float:
        """Traffic normalized to a baseline run."""
        return ratio(self.total_flit_hops, baseline.total_flit_hops, default=1.0)

    def summary(self) -> Dict[str, float]:
        """Compact metric dictionary for printing."""
        return {
            "execution_time": float(self.execution_time),
            "avg_access_latency": self.avg_access_latency,
            "l1_miss_rate": self.l1_miss_rate,
            "dir_invals_per_kilo": self.dir_induced_invals_per_kilo,
            "coverage_misses_per_kilo": self.coverage_misses_per_kilo,
            "stash_evictions": self.stash_evictions,
            "discoveries_per_kilo": self.discovery_per_kilo,
            "false_discovery_rate": self.false_discovery_rate,
            "flit_hops": self.total_flit_hops,
            "memory_reads": self.memory_reads,
        }
