"""Trace-driven multicore simulator.

Cores execute their operation streams concurrently under a
**timestamp-ordered interleave**: at every step the core with the smallest
local clock issues its next operation, the coherence transaction resolves
atomically, and the core's clock advances by the observed latency plus the
fixed per-op cost.  This is the standard discipline for trace-driven
coherence studies: cross-core orderings emerge from the relative progress of
the cores, and every protocol-visible event (misses, evictions, discoveries,
invalidations) is modeled exactly.

Debug support: with ``config.check_invariants`` the full invariant suite
(:mod:`repro.coherence.invariants`) runs every ``invariant_interval``
operations and once at the end — slow, but it turns any protocol bug into a
pinpointed failure.  ``sample_interval`` controls periodic sampling of the
effective-tracking metric (experiment F7).
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from ..coherence.protocol import CoherentSystem
from ..common.addr import log2_exact
from ..common.errors import TraceError
from .results import SimulationResult
from .system import build_system
from .trace import Trace


class Simulator:
    """Runs one trace on one coherent system."""

    def __init__(
        self,
        system: CoherentSystem,
        invariant_interval: int = 1024,
        sample_interval: int = 4096,
        warmup_ops: int = 0,
    ) -> None:
        self.system = system
        self.invariant_interval = invariant_interval
        self.sample_interval = sample_interval
        if warmup_ops < 0:
            raise TraceError("warmup_ops must be non-negative")
        self.warmup_ops = warmup_ops

    def run(self, trace: Trace) -> SimulationResult:
        """Execute the whole trace; returns the result snapshot."""
        config = self.system.config
        if trace.num_cores > config.num_cores:
            raise TraceError(
                f"trace has {trace.num_cores} cores, system only {config.num_cores}"
            )
        shift = log2_exact(config.block_bytes)
        fixed = config.timing.core_fixed_cpi
        check = config.check_invariants

        clocks = [0.0] * trace.num_cores
        cursors = [0] * trace.num_cores
        # Min-heap of (clock, core) for the timestamp-ordered interleave.
        heap = [(0.0, core) for core in range(trace.num_cores) if trace.ops[core]]
        heapq.heapify(heap)

        samples: List[int] = []
        processed = 0
        warmup_clocks = [0.0] * trace.num_cores
        access = self.system.access
        while heap:
            clock, core = heapq.heappop(heap)
            ops = trace.ops[core]
            addr, is_write = ops[cursors[core]]
            cursors[core] += 1
            latency = access(core, addr >> shift, is_write, clock)
            clock += latency + fixed
            clocks[core] = clock
            if cursors[core] < len(ops):
                heapq.heappush(heap, (clock, core))
            processed += 1
            if processed == self.warmup_ops:
                # End of warmup: discard statistics, keep all cache and
                # directory state, and measure time from here (the standard
                # region-of-interest discipline).
                self.system.stats.reset()
                warmup_clocks = list(clocks)
            if check and processed % self.invariant_interval == 0:
                self.system.check_invariants()
            if processed % self.sample_interval == 0:
                samples.append(self.system.effective_tracking())

        if check:
            self.system.check_invariants()
        return SimulationResult(
            config=config,
            cycles_per_core=[
                int(c - w) for c, w in zip(clocks, warmup_clocks)
            ],
            stats=self.system.flat_stats(),
            effective_tracking_samples=samples,
        )


def run_trace(
    config,
    trace: Trace,
    system: Optional[CoherentSystem] = None,
) -> SimulationResult:
    """Convenience one-shot: build the system (unless given) and run.

    This is the function the examples, experiments and most tests call.
    """
    if system is None:
        system = build_system(config)
    return Simulator(system).run(trace)
