"""Trace-driven multicore simulator.

Cores execute their operation streams concurrently under a
**timestamp-ordered interleave**: at every step the core with the smallest
local clock issues its next operation, the coherence transaction resolves
atomically, and the core's clock advances by the observed latency plus the
fixed per-op cost.  This is the standard discipline for trace-driven
coherence studies: cross-core orderings emerge from the relative progress of
the cores, and every protocol-visible event (misses, evictions, discoveries,
invalidations) is modeled exactly.

Debug support: with ``config.check_invariants`` the full invariant suite
(:mod:`repro.coherence.invariants`) runs every ``invariant_interval``
operations and once at the end — slow, but it turns any protocol bug into a
pinpointed failure.  ``sample_interval`` controls periodic sampling of the
effective-tracking metric (experiment F7).

Observability (:mod:`repro.obs`): pass an attached
:class:`~repro.obs.Observer` and the run loop additionally fires the epoch
sampler every ``observer.epoch_interval`` operations (plus a final partial
epoch) and honors ``observer.invariant_interval`` as the invariant cadence
even when the config flag is off.  With no observer every probe stays a
``-1`` threshold that never fires — the null-probe contract.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Union

from ..coherence.protocol import CoherentSystem
from ..common.addr import log2_exact
from ..common.errors import TraceError
from .results import SimulationResult
from .system import build_system
from .trace import PackedTrace, Trace


class Simulator:
    """Runs one trace on one coherent system."""

    def __init__(
        self,
        system: CoherentSystem,
        invariant_interval: int = 1024,
        sample_interval: int = 4096,
        warmup_ops: int = 0,
        observer=None,
    ) -> None:
        self.system = system
        if invariant_interval < 1:
            raise TraceError("invariant_interval must be >= 1")
        if sample_interval < 1:
            raise TraceError("sample_interval must be >= 1")
        self.invariant_interval = invariant_interval
        self.sample_interval = sample_interval
        if warmup_ops < 0:
            raise TraceError("warmup_ops must be non-negative")
        self.warmup_ops = warmup_ops
        self.observer = observer

    def run(self, trace: Union[Trace, PackedTrace]) -> SimulationResult:
        """Execute the whole trace; returns the result snapshot.

        Accepts either representation: a :class:`Trace` (per-core tuple
        lists) or a :class:`PackedTrace` (per-core ``array('Q')`` streams,
        decoded inline: ``block = word >> (block_shift + 1)``, ``is_write
        = word & 1``).  Results are bit-identical across the two — the
        decode recovers exactly the packed ``(addr, is_write)`` pair.

        The interleave is identical to a pure pop/push min-heap loop (ties
        broken by core index), but the hot path avoids heap churn: after a
        core issues an op it keeps running inline while its ``(clock,
        core)`` pair is still the global minimum, so a heap transaction
        only happens when the lead actually changes hands.  Traces with a
        single active core skip the heap entirely.
        """
        config = self.system.config
        if trace.num_cores > config.num_cores:
            raise TraceError(
                f"trace has {trace.num_cores} cores, system only {config.num_cores}"
            )
        shift = log2_exact(config.block_bytes)
        fixed = config.timing.core_fixed_cpi
        check = config.check_invariants

        # One iteration discipline for both trace forms: ``streams[core]``
        # yields raw u64 words (packed) or ``(addr, is_write)`` tuples.
        is_packed = isinstance(trace, PackedTrace)
        streams = trace.streams if is_packed else trace.ops
        packshift = shift + 1  # block = word >> (shift + write bit)

        clocks = [0.0] * trace.num_cores
        cursors = [0] * trace.num_cores
        active = [core for core in range(trace.num_cores) if streams[core]]

        samples: List[int] = []
        processed = 0
        warmup_ops = self.warmup_ops
        invariant_interval = self.invariant_interval
        sample_interval = self.sample_interval
        observer = self.observer
        epoch_interval = 0
        sample_epoch = None
        if observer is not None:
            epoch_interval = observer.epoch_interval
            sample_epoch = observer.sample_epoch
            if observer.invariant_interval > 0:
                # The observer's cadence wins: it enables checking even when
                # the config flag is off, matching CLI --check-invariants N.
                check = True
                invariant_interval = observer.invariant_interval
        # Next-threshold counters replace per-op modulo checks; identical
        # firing pattern for any interval >= 1 (enforced at construction).
        next_invariant = invariant_interval if check else -1
        next_sample = sample_interval
        next_epoch = epoch_interval if epoch_interval else -1
        warmup_clocks = [0.0] * trace.num_cores
        system = self.system
        access = system.access
        check_invariants = system.check_invariants
        effective_tracking = system.effective_tracking
        # Inlined per-op accounting (equivalent to CoherentSystem.access):
        # the home clock, the per-core controller entry points and the
        # latency_total cell are hoisted out of the loop.  Only engaged when
        # ``access`` is the stock method — instance- or subclass-level
        # overrides (test spies, tracers) keep the call-through seam.
        home = getattr(system, "home", None)
        l1_access = getattr(system, "_l1_access", None)
        fast = (
            l1_access is not None
            and home is not None
            and type(system).access is CoherentSystem.access
            and "access" not in system.__dict__
        )
        lat_cell = None

        if len(active) == 1:
            # Single-core fast path: no interleaving decisions to make.
            core = active[0]
            core_access = l1_access[core] if fast else None
            clock = 0.0
            for op in streams[core]:
                if is_packed:
                    block = op >> packshift
                    is_write = op & 1
                else:
                    addr, is_write = op
                    block = addr >> shift
                if fast:
                    home.now = clock
                    latency = core_access(block, is_write)
                    if lat_cell is None:
                        lat_cell = system.latency_cell()
                    lat_cell.value += latency
                else:
                    latency = access(core, block, is_write, clock)
                clock += latency + fixed
                processed += 1
                if processed == warmup_ops:
                    self.system.stats.reset()
                    clocks[core] = clock
                    warmup_clocks = list(clocks)
                if processed == next_invariant:
                    next_invariant += invariant_interval
                    check_invariants()
                if processed == next_sample:
                    next_sample += sample_interval
                    samples.append(effective_tracking())
                if processed == next_epoch:
                    next_epoch += epoch_interval
                    sample_epoch(processed, clock)
            clocks[core] = clock
            cursors[core] = len(streams[core])
        else:
            # Min-heap of (clock, core) for the timestamp-ordered interleave.
            heap = [(0.0, core) for core in active]
            heapq.heapify(heap)
            heappush = heapq.heappush
            heappop = heapq.heappop
            while heap:
                clock, core = heappop(heap)
                ops = streams[core]
                cursor = cursors[core]
                remaining = len(ops)
                core_access = l1_access[core] if fast else None
                while True:
                    op = ops[cursor]
                    cursor += 1
                    if is_packed:
                        block = op >> packshift
                        is_write = op & 1
                    else:
                        addr, is_write = op
                        block = addr >> shift
                    if fast:
                        home.now = clock
                        latency = core_access(block, is_write)
                        if lat_cell is None:
                            lat_cell = system.latency_cell()
                        lat_cell.value += latency
                    else:
                        latency = access(core, block, is_write, clock)
                    clock += latency + fixed
                    processed += 1
                    if processed == warmup_ops:
                        # End of warmup: discard statistics, keep all cache
                        # and directory state, and measure time from here
                        # (the standard region-of-interest discipline).
                        self.system.stats.reset()
                        clocks[core] = clock
                        cursors[core] = cursor
                        warmup_clocks = list(clocks)
                    if processed == next_invariant:
                        next_invariant += invariant_interval
                        check_invariants()
                    if processed == next_sample:
                        next_sample += sample_interval
                        samples.append(effective_tracking())
                    if processed == next_epoch:
                        next_epoch += epoch_interval
                        sample_epoch(processed, clock)
                    if cursor == remaining:
                        break
                    if heap:
                        head = heap[0]
                        if clock > head[0] or (clock == head[0] and core > head[1]):
                            heappush(heap, (clock, core))
                            break
                clocks[core] = clock
                cursors[core] = cursor

        if check:
            check_invariants()
        if epoch_interval and processed != next_epoch - epoch_interval:
            # Final partial epoch so the series always covers the whole run.
            sample_epoch(processed, max(clocks))
        return SimulationResult(
            config=config,
            cycles_per_core=[
                int(c - w) for c, w in zip(clocks, warmup_clocks)
            ],
            stats=self.system.flat_stats(),
            effective_tracking_samples=samples,
        )


def run_trace(
    config,
    trace: Union[Trace, PackedTrace],
    system: Optional[CoherentSystem] = None,
    observer=None,
    engine: str = "interp",
    epoch_ops: int = 0,
    engine_workers: Union[int, str] = "auto",
    speculate: bool = False,
) -> SimulationResult:
    """Convenience one-shot: build the system (unless given) and run.

    This is the function the examples, experiments and most tests call;
    ``trace`` may be packed or unpacked (results are identical).
    ``observer`` is a pre-attached :class:`repro.obs.Observer` (it must wrap
    the same ``system`` when one is passed).

    ``engine`` selects the execution engine: ``"interp"`` (the controller
    interpreter above), ``"vector"`` (the flat table-driven engine of
    :mod:`repro.sim.vector`), or ``"parallel"`` (the run-length batching
    engine of :mod:`repro.sim.parallel`; ``engine_workers`` sets its scan
    worker count — an integer, or ``"auto"`` to use workers only when the
    host has spare CPUs for them (see
    :func:`repro.sim.parallel.resolve_engine_workers`) — and ``epoch_ops``
    its scan-window / decode-batch size for both fast engines;
    ``speculate`` turns on the parallel engine's optimistic warp + replay
    layer).  All three produce bit-identical results for any worker
    count, window size, and speculation setting; ``"vector"`` and
    ``"parallel"`` fall back to the interpreter transparently when the
    configuration is outside the flat model (see
    :func:`repro.sim.vector.vector_supports`), when a pre-built ``system``
    or ``observer`` needs the live objects, or when the trace cannot be
    packed.  ``result.engine`` records which engine actually ran.
    """
    if engine not in ("interp", "vector", "parallel"):
        raise TraceError(
            f"unknown engine {engine!r} (expected 'interp', 'vector' or 'parallel')"
        )
    if engine in ("vector", "parallel") and system is None and observer is None:
        from .vector import DEFAULT_EPOCH_OPS, VectorEngine, vector_supports

        if vector_supports(config) is None:
            packed: Optional[PackedTrace]
            if isinstance(trace, PackedTrace):
                packed = trace
            else:
                try:
                    packed = PackedTrace.from_trace(trace)
                except TraceError:
                    packed = None  # e.g. addresses beyond the packed range
            if packed is not None:
                batch = epoch_ops if epoch_ops else DEFAULT_EPOCH_OPS
                if engine == "parallel":
                    from .parallel import ParallelEngine

                    return ParallelEngine(
                        config,
                        epoch_ops=batch,
                        workers=engine_workers,
                        speculate=speculate,
                    ).run(packed)
                return VectorEngine(config, epoch_ops=batch).run(packed)
    if system is None:
        system = build_system(config)
    return Simulator(system, observer=observer).run(trace)
