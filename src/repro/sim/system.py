"""System builder: wire a :class:`~repro.coherence.protocol.CoherentSystem`.

The single place that knows how the pieces fit together: per-core L1s, one
shared LLC banked across the core tiles, the directory organization the
config requests (sized by its coverage ratio), the mesh network and the
memory model — all hanging off one statistics tree rooted at ``system``.
"""

from __future__ import annotations

from ..cache.hierarchy import PrivateHierarchy
from ..cache.l1 import L1Cache
from ..cache.llc import SharedLLC
from ..coherence.protocol import CoherentSystem
from ..common.config import SystemConfig
from ..common.rng import DeterministicRng
from ..common.stats import StatGroup
from ..directory import make_directory
from ..mem import make_memory
from ..noc.network import Network


def build_system(config: SystemConfig) -> CoherentSystem:
    """Construct a ready-to-run coherent memory system from its config."""
    stats = StatGroup("system")
    rng = DeterministicRng(config.seed)

    if config.l2 is not None:
        l1s = [
            PrivateHierarchy(
                core, config.l1, config.l2, rng.spawn(1000 + core),
                stats.child(f"private.{core}"),
            )
            for core in range(config.num_cores)
        ]
    else:
        l1s = [
            L1Cache(core, config.l1, rng.spawn(1000 + core), stats.child(f"l1.{core}"))
            for core in range(config.num_cores)
        ]
    llc = SharedLLC(
        config.llc,
        num_banks=config.num_cores,
        rng=rng.spawn(2000),
        stats=stats.child("llc"),
    )
    directory = make_directory(
        config.directory,
        config.num_cores,
        config.directory_entries,
        rng.spawn(3000),
        stats.child("directory"),
    )
    network = Network(config.noc, stats.child("noc"))
    memory = make_memory(config, stats.child("memory"))

    return CoherentSystem(config, l1s, llc, directory, network, memory, stats)
