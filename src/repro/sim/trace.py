"""Memory-access traces: the simulator's input format.

A trace is a per-core sequence of ``(byte_address, is_write)`` operations.
Traces come from the synthetic workload generators
(:mod:`repro.workloads`) or from files; the on-disk format is a plain CSV
of ``core,addr,rw`` lines (``rw`` is ``R`` or ``W``, ``addr`` hex or
decimal) so traces from external tools can be replayed too.

Two in-memory representations exist:

* :class:`Trace` — per-core lists of ``(addr, is_write)`` tuples; the
  construction-friendly format every generator builds.
* :class:`PackedTrace` — per-core flat ``array('Q')`` streams encoding
  ``(addr << 1) | is_write``; ~5x smaller, picklable as one buffer per
  core, and what the simulator loop iterates with inline decode.  The
  sweep engine's trace store (:mod:`repro.workloads.store`) materializes
  workloads in this form exactly once per (workload, size, seed).

Conversion between the two is lossless (``PackedTrace.from_trace`` /
``to_trace``); packing rejects addresses that do not fit the 63 usable
bits of the encoding (:data:`MAX_PACKED_ADDR`).
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

from ..common.errors import TraceError

#: One operation: (byte_address, is_write).
Op = Tuple[int, bool]

#: One globally-ordered operation: (core, block_address, is_write).
FlatOp = Tuple[int, int, bool]

#: Largest byte address a packed stream can encode: the write bit takes
#: the low bit of an unsigned 64-bit word, leaving 63 bits of address.
MAX_PACKED_ADDR = (1 << 63) - 1

#: Flat-program encoding (repro.verify): the issuing core rides in the
#: high bits of the address field, so a single packed stream preserves the
#: *global* operation order that per-core streams lose.
FLAT_CORE_SHIFT = 48

#: Largest block address / core id a flat-program word can carry.
MAX_FLAT_ADDR = (1 << FLAT_CORE_SHIFT) - 1
MAX_FLAT_CORE = (1 << (63 - FLAT_CORE_SHIFT)) - 1


def pack_flat_program(ops: "Iterable[FlatOp]") -> "PackedTrace":
    """Encode a globally-ordered ``(core, block, is_write)`` program.

    The result is a single-stream :class:`PackedTrace` whose words are
    ``(((core << FLAT_CORE_SHIFT) | block) << 1) | is_write`` — the exact
    on-disk spool format of per-core traces, reused so the differential
    fuzzer's failure corpus (:mod:`repro.verify.corpus`) needs no second
    serializer.  Raises :class:`~repro.common.errors.TraceError` when a
    core id or block address does not fit its field.
    """
    packed = PackedTrace(1)
    stream = packed.streams[0]
    for core, block, is_write in ops:
        if not 0 <= core <= MAX_FLAT_CORE:
            raise TraceError(f"flat-program core {core} outside [0, {MAX_FLAT_CORE}]")
        if not 0 <= block <= MAX_FLAT_ADDR:
            raise TraceError(
                f"flat-program block {block:#x} outside [0, {MAX_FLAT_ADDR:#x}]"
            )
        word = ((core << FLAT_CORE_SHIFT) | block) << 1
        stream.append(word | 1 if is_write else word)
    return packed


def unpack_flat_program(packed: "PackedTrace") -> "List[FlatOp]":
    """Decode :func:`pack_flat_program`'s single-stream encoding."""
    if packed.num_cores != 1:
        raise TraceError(
            f"flat programs are single-stream, got {packed.num_cores} streams"
        )
    ops: List[FlatOp] = []
    for word in packed.streams[0]:
        field = word >> 1
        ops.append((field >> FLAT_CORE_SHIFT, field & MAX_FLAT_ADDR, bool(word & 1)))
    return ops


@dataclass(frozen=True)
class TraceRecord:
    """One trace line in record form (API convenience; hot paths use tuples)."""

    core: int
    addr: int
    is_write: bool


class Trace:
    """Per-core operation streams."""

    def __init__(self, num_cores: int) -> None:
        if num_cores < 1:
            raise TraceError("trace needs at least one core")
        self.num_cores = num_cores
        self.ops: List[List[Op]] = [[] for _ in range(num_cores)]

    # -- construction ------------------------------------------------------------

    def append(self, core: int, addr: int, is_write: bool) -> None:
        """Append one operation to a core's stream."""
        if not 0 <= core < self.num_cores:
            raise TraceError(f"core {core} outside [0, {self.num_cores})")
        if addr < 0:
            raise TraceError(f"negative address {addr}")
        self.ops[core].append((addr, is_write))

    @classmethod
    def from_records(cls, num_cores: int, records: Iterable[TraceRecord]) -> "Trace":
        """Build a trace from :class:`TraceRecord` items."""
        trace = cls(num_cores)
        for record in records:
            trace.append(record.core, record.addr, record.is_write)
        return trace

    # -- file I/O ------------------------------------------------------------------

    @classmethod
    def from_file(cls, path: Union[str, Path], num_cores: int) -> "Trace":
        """Load a ``core,addr,rw`` CSV trace."""
        trace = cls(num_cores)
        with open(path) as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split(",")
                if len(parts) != 3:
                    raise TraceError(f"{path}:{lineno}: expected core,addr,rw")
                try:
                    core = int(parts[0])
                    addr = int(parts[1], 0)
                except ValueError as exc:
                    raise TraceError(f"{path}:{lineno}: {exc}") from None
                rw = parts[2].strip().upper()
                if rw not in ("R", "W"):
                    raise TraceError(f"{path}:{lineno}: rw must be R or W, got {rw!r}")
                trace.append(core, addr, rw == "W")
        return trace

    def to_file(self, path: Union[str, Path]) -> None:
        """Write the trace as a ``core,addr,rw`` CSV."""
        with open(path, "w") as handle:
            handle.write("# core,addr,rw\n")
            for core, ops in enumerate(self.ops):
                for addr, is_write in ops:
                    handle.write(f"{core},{addr:#x},{'W' if is_write else 'R'}\n")

    # -- inspection -------------------------------------------------------------------

    def total_ops(self) -> int:
        """Operations across all cores."""
        return sum(len(ops) for ops in self.ops)

    def core_ops(self, core: int) -> int:
        """Operations of one core."""
        return len(self.ops[core])

    def write_fraction(self) -> float:
        """Fraction of operations that are writes (single pass)."""
        total = 0
        writes = 0
        for ops in self.ops:
            total += len(ops)
            for _, is_write in ops:
                if is_write:
                    writes += 1
        if total == 0:
            return 0.0
        return writes / total

    def unique_blocks(self, block_bytes: int) -> int:
        """Distinct cache blocks the trace touches (single pass)."""
        shift = block_bytes.bit_length() - 1
        blocks: set = set()
        add = blocks.add
        for ops in self.ops:
            for addr, _ in ops:
                add(addr >> shift)
        return len(blocks)

    def iter_records(self) -> Iterator[TraceRecord]:
        """All operations as records, core-major order."""
        for core, ops in enumerate(self.ops):
            for addr, is_write in ops:
                yield TraceRecord(core, addr, is_write)

    def pack(self) -> "PackedTrace":
        """This trace in packed form (see :class:`PackedTrace`)."""
        return PackedTrace.from_trace(self)


class PackedTrace:
    """Per-core flat ``array('Q')`` streams of ``(addr << 1) | is_write``.

    The packed form is the simulator's native input: one unsigned 64-bit
    word per operation, decoded inline in the run loop (``block =
    word >> (block_shift + 1)``, ``is_write = word & 1``).  Compared to
    the tuple lists of :class:`Trace` it is ~5x smaller, hashable content
    (``streams[core].tobytes()``), and crosses process boundaries as flat
    buffers — which is what makes the sweep engine's shared trace store
    cheap.  Conversion to/from :class:`Trace` is lossless for any address
    up to :data:`MAX_PACKED_ADDR`; larger addresses raise
    :class:`~repro.common.errors.TraceError` (keep those in tuple form).
    """

    __slots__ = ("num_cores", "streams")

    def __init__(self, num_cores: int, streams: "List[array]" = None) -> None:
        if num_cores < 1:
            raise TraceError("trace needs at least one core")
        if streams is None:
            streams = [array("Q") for _ in range(num_cores)]
        elif len(streams) != num_cores:
            raise TraceError(
                f"{len(streams)} streams for {num_cores} cores"
            )
        self.num_cores = num_cores
        self.streams: List[array] = streams

    # -- construction ------------------------------------------------------------

    def append(self, core: int, addr: int, is_write: bool) -> None:
        """Append one operation to a core's packed stream."""
        if not 0 <= core < self.num_cores:
            raise TraceError(f"core {core} outside [0, {self.num_cores})")
        if not 0 <= addr <= MAX_PACKED_ADDR:
            raise TraceError(
                f"address {addr:#x} outside packable range [0, {MAX_PACKED_ADDR:#x}]"
            )
        self.streams[core].append((addr << 1) | (1 if is_write else 0))

    @classmethod
    def from_trace(cls, trace: Trace) -> "PackedTrace":
        """Pack an unpacked trace (lossless; validates the address range)."""
        packed = cls(trace.num_cores)
        for core, ops in enumerate(trace.ops):
            stream = packed.streams[core]
            try:
                stream.extend(
                    (addr << 1) | 1 if is_write else addr << 1
                    for addr, is_write in ops
                )
            except OverflowError:
                bad = max(addr for addr, _ in ops)
                raise TraceError(
                    f"core {core}: address {bad:#x} outside packable range "
                    f"[0, {MAX_PACKED_ADDR:#x}]"
                ) from None
        return packed

    @classmethod
    def from_file(cls, path: Union[str, Path], num_cores: int) -> "PackedTrace":
        """Load a ``core,addr,rw`` CSV trace directly into packed form."""
        return cls.from_trace(Trace.from_file(path, num_cores))

    def to_trace(self) -> Trace:
        """Unpack back to per-core tuple lists (exact inverse of packing)."""
        trace = Trace(self.num_cores)
        for core, stream in enumerate(self.streams):
            trace.ops[core] = [(word >> 1, bool(word & 1)) for word in stream]
        return trace

    def numpy_streams(self, packshift: int):
        """Decode the packed streams into per-core numpy block/write arrays.

        Returns ``(blk_arrs, wr_arrs, writes_total)`` where each core
        contributes an ``int64`` block array and a ``uint8`` write-flag
        array (``None`` for empty streams).  ``packshift`` is
        ``log2(block_bytes) + 1`` — the block id is the packed word with
        the write bit and the intra-block offset stripped.  This is the
        native input of the batch engines (:mod:`repro.sim.parallel`):
        run classification, warp commits and speculative undo logs all
        index these arrays directly, so the decode lives here with the
        packing format rather than in each engine.
        """
        import numpy as np

        blk_arrs: list = []
        wr_arrs: list = []
        writes_total = 0
        for stream in self.streams:
            if len(stream):
                words = np.frombuffer(stream, dtype=np.uint64)
                wr = (words & np.uint64(1)).astype(np.uint8)
                writes_total += int(wr.sum())
                blk_arrs.append(
                    (words >> np.uint64(packshift)).astype(np.int64)
                )
                wr_arrs.append(wr)
            else:
                blk_arrs.append(None)
                wr_arrs.append(None)
        return blk_arrs, wr_arrs, writes_total

    # -- inspection ---------------------------------------------------------------

    def total_ops(self) -> int:
        """Operations across all cores."""
        return sum(len(stream) for stream in self.streams)

    def core_ops(self, core: int) -> int:
        """Operations of one core."""
        return len(self.streams[core])

    def nbytes(self) -> int:
        """Payload size across all cores (8 bytes per operation)."""
        return 8 * self.total_ops()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedTrace):
            return NotImplemented
        return self.num_cores == other.num_cores and self.streams == other.streams

    # -- serialization (the trace store's payload format) -------------------------

    def stream_bytes(self) -> List[bytes]:
        """Each core's stream as little-endian 8-byte words."""
        out = []
        for stream in self.streams:
            if sys.byteorder == "big":  # pragma: no cover - exotic hosts
                stream = array("Q", stream)
                stream.byteswap()
            out.append(stream.tobytes())
        return out

    @classmethod
    def from_stream_bytes(cls, blobs: Iterable[bytes]) -> "PackedTrace":
        """Rebuild from :meth:`stream_bytes` payloads (one per core)."""
        streams = []
        for blob in blobs:
            if len(blob) % 8:
                raise TraceError(
                    f"packed stream payload of {len(blob)} bytes is not a "
                    "whole number of 8-byte words"
                )
            stream = array("Q")
            stream.frombytes(blob)
            if sys.byteorder == "big":  # pragma: no cover - exotic hosts
                stream.byteswap()
            streams.append(stream)
        if not streams:
            raise TraceError("packed trace needs at least one core stream")
        return cls(len(streams), streams)
