"""Memory-access traces: the simulator's input format.

A trace is a per-core sequence of ``(byte_address, is_write)`` operations.
Traces come from the synthetic workload generators
(:mod:`repro.workloads`) or from files; the on-disk format is a plain CSV
of ``core,addr,rw`` lines (``rw`` is ``R`` or ``W``, ``addr`` hex or
decimal) so traces from external tools can be replayed too.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

from ..common.errors import TraceError

#: One operation: (byte_address, is_write).
Op = Tuple[int, bool]


@dataclass(frozen=True)
class TraceRecord:
    """One trace line in record form (API convenience; hot paths use tuples)."""

    core: int
    addr: int
    is_write: bool


class Trace:
    """Per-core operation streams."""

    def __init__(self, num_cores: int) -> None:
        if num_cores < 1:
            raise TraceError("trace needs at least one core")
        self.num_cores = num_cores
        self.ops: List[List[Op]] = [[] for _ in range(num_cores)]

    # -- construction ------------------------------------------------------------

    def append(self, core: int, addr: int, is_write: bool) -> None:
        """Append one operation to a core's stream."""
        if not 0 <= core < self.num_cores:
            raise TraceError(f"core {core} outside [0, {self.num_cores})")
        if addr < 0:
            raise TraceError(f"negative address {addr}")
        self.ops[core].append((addr, is_write))

    @classmethod
    def from_records(cls, num_cores: int, records: Iterable[TraceRecord]) -> "Trace":
        """Build a trace from :class:`TraceRecord` items."""
        trace = cls(num_cores)
        for record in records:
            trace.append(record.core, record.addr, record.is_write)
        return trace

    # -- file I/O ------------------------------------------------------------------

    @classmethod
    def from_file(cls, path: Union[str, Path], num_cores: int) -> "Trace":
        """Load a ``core,addr,rw`` CSV trace."""
        trace = cls(num_cores)
        with open(path) as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split(",")
                if len(parts) != 3:
                    raise TraceError(f"{path}:{lineno}: expected core,addr,rw")
                try:
                    core = int(parts[0])
                    addr = int(parts[1], 0)
                except ValueError as exc:
                    raise TraceError(f"{path}:{lineno}: {exc}") from None
                rw = parts[2].strip().upper()
                if rw not in ("R", "W"):
                    raise TraceError(f"{path}:{lineno}: rw must be R or W, got {rw!r}")
                trace.append(core, addr, rw == "W")
        return trace

    def to_file(self, path: Union[str, Path]) -> None:
        """Write the trace as a ``core,addr,rw`` CSV."""
        with open(path, "w") as handle:
            handle.write("# core,addr,rw\n")
            for core, ops in enumerate(self.ops):
                for addr, is_write in ops:
                    handle.write(f"{core},{addr:#x},{'W' if is_write else 'R'}\n")

    # -- inspection -------------------------------------------------------------------

    def total_ops(self) -> int:
        """Operations across all cores."""
        return sum(len(ops) for ops in self.ops)

    def core_ops(self, core: int) -> int:
        """Operations of one core."""
        return len(self.ops[core])

    def write_fraction(self) -> float:
        """Fraction of operations that are writes (single pass)."""
        total = 0
        writes = 0
        for ops in self.ops:
            total += len(ops)
            for _, is_write in ops:
                if is_write:
                    writes += 1
        if total == 0:
            return 0.0
        return writes / total

    def unique_blocks(self, block_bytes: int) -> int:
        """Distinct cache blocks the trace touches (single pass)."""
        shift = block_bytes.bit_length() - 1
        blocks: set = set()
        add = blocks.add
        for ops in self.ops:
            for addr, _ in ops:
                add(addr >> shift)
        return len(blocks)

    def iter_records(self) -> Iterator[TraceRecord]:
        """All operations as records, core-major order."""
        for core, ops in enumerate(self.ops):
            for addr, is_write in ops:
                yield TraceRecord(core, addr, is_write)
