"""Vectorized table-driven simulation engine over PackedTrace batches.

A second execution engine for the same simulated machine: where the
interpreter (:mod:`repro.sim.simulator`) walks the live controller objects
for every operation, this engine runs the protocol over **flat state** —
per-core line dictionaries backed by flat last-use/occupancy arrays, LLC
and directory entries as small lists, sharer sets as integer bitmasks —
and dispatches each operation through the integer transition tables of
:mod:`repro.coherence.tables` (generated from, and validated against, the
real controllers).  Input is a :class:`~repro.sim.trace.PackedTrace`;
per-core streams are decoded **in epoch-sized batches** with one vectorized
numpy pass (shift/mask over the raw ``u64`` words) instead of per-op bit
fiddling, and the interleave loop touches only decoded Python ints.

The contract is the golden one: per-core cycle counts, the full flattened
statistics tree, observed data versions and effective-tracking samples are
**bit-identical** to the interpreter for every supported configuration.
Three structural tricks make the fast path cheap without breaking that
contract:

* **One global LRU tick.**  The interpreter keeps one monotone clock per
  cache/directory set; replacement only ever compares last-use values
  *within* one set, so a single engine-wide tick preserves every relative
  order (ties keep the interpreter's lowest-way preference because victim
  scans walk ways in ascending order).
* **Derived counters.**  The hit path maintains no statistics at all:
  ``accesses`` is the stream length, ``reads``/``writes`` come from one
  numpy popcount over the packed write bits, ``l1_hits`` is
  ``accesses - l1_misses - upgrade_misses``, and ``latency_total`` is
  recovered from the final core clocks (all latencies are integers when
  ``core_fixed_cpi`` is integral, so the arithmetic is exact).
* **Scalar slow path.**  Rare events — misses, upgrades, evictions, stash
  discovery, sharer-pointer overflow — run in ordinary Python over the
  same flat state, replicating the interpreter's exact decision order.

Configurations outside the flat model (see :func:`vector_supports`) are
the interpreter's: ``run_trace(..., engine="vector")`` falls back
transparently rather than approximating.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..coherence.tables import L1Tables, l1_tables
from ..common.addr import log2_exact
from ..directory.sharers import hier_auto_cluster
from ..common.config import (
    DirectoryKind,
    MemoryModel,
    SharerFormat,
    StashEligibility,
    SystemConfig,
)
from ..common.errors import ProtocolError, TraceError
from ..common.mesi import CoherenceProtocol
from ..noc.topology import Mesh2D
from ..noc.traffic import MessageClass, flits_of
from .results import SimulationResult
from .trace import PackedTrace

#: Operations decoded per core per batch.  One numpy slice + ``tolist()``
#: per epoch bounds the decoded-int working set while amortizing the
#: vectorized shift/mask over thousands of operations.
DEFAULT_EPOCH_OPS = 8192

#: Directory kinds with a flat view (the rest fall back to the interpreter).
_FLAT_KINDS = frozenset(
    {DirectoryKind.SPARSE, DirectoryKind.IDEAL, DirectoryKind.STASH}
)

# Message-class indices into the flat NoC counter blocks (enum order).
_MSG_CLASSES = list(MessageClass)
_MC_NAMES = [m.value for m in _MSG_CLASSES]
_FLITS = [flits_of(m) for m in _MSG_CLASSES]
_REQUEST = _MSG_CLASSES.index(MessageClass.REQUEST)
_DATA_RESPONSE = _MSG_CLASSES.index(MessageClass.DATA_RESPONSE)
_CONTROL_RESPONSE = _MSG_CLASSES.index(MessageClass.CONTROL_RESPONSE)
_FORWARD = _MSG_CLASSES.index(MessageClass.FORWARD)
_INVALIDATION = _MSG_CLASSES.index(MessageClass.INVALIDATION)
_INV_ACK = _MSG_CLASSES.index(MessageClass.INV_ACK)
_WRITEBACK = _MSG_CLASSES.index(MessageClass.WRITEBACK)
_WB_ACK = _MSG_CLASSES.index(MessageClass.WB_ACK)
_EVICTION_NOTICE = _MSG_CLASSES.index(MessageClass.EVICTION_NOTICE)
_DISCOVERY_PROBE = _MSG_CLASSES.index(MessageClass.DISCOVERY_PROBE)
_DISCOVERY_REPLY = _MSG_CLASSES.index(MessageClass.DISCOVERY_REPLY)
_MEMORY = _MSG_CLASSES.index(MessageClass.MEMORY)

# MesiState values as plain ints (the flat state never boxes enums).
_ST_SHARED = 1
_ST_EXCLUSIVE = 2
_ST_MODIFIED = 3
_ST_OWNED = 4

# L1 line record layout: [state, flat_position, dirty, version].
# LLC line record layout: [dirty, stash_bit, version, flat_position].
# Directory entry layout: [addr, owner, believed_mask, rep_a, rep_b, pos]
# (rep_a/rep_b encode the sharer representation per format: full/coarse use
# rep_a as the bitmask; limited uses rep_a as the pointer list and rep_b as
# the overflow flag).


def vector_supports(config: SystemConfig) -> Optional[str]:
    """``None`` when the flat engine models ``config`` exactly, else why not.

    The vector engine refuses rather than approximates: any feature whose
    interpreter semantics the flat state does not replicate bit-for-bit is
    a fallback reason, and :func:`repro.sim.simulator.run_trace` silently
    routes those configurations to the interpreter.
    """
    kind = config.directory.kind
    if kind not in _FLAT_KINDS:
        return f"directory kind {kind.value!r} has no flat view yet"
    if config.l2 is not None:
        return "private L2 hierarchies are interpreter-only"
    if config.memory_model is not MemoryModel.FLAT:
        return "the DRAM memory model keeps per-bank row state"
    if config.timing.home_occupancy:
        return "home-bank occupancy serialization is interpreter-only"
    if config.directory.discovery_filter_slots:
        return "discovery presence filters are interpreter-only"
    if config.check_invariants:
        return "invariant checking walks the live controller objects"
    if config.noc.track_links:
        return "per-link flit attribution is interpreter-only"
    if config.l1.replacement != "lru" or config.llc.replacement != "lru":
        return "only LRU replacement has a flat encoding"
    if not float(config.timing.core_fixed_cpi).is_integer():
        return "fractional core_fixed_cpi breaks exact integer clocks"
    return None


def flat_machine(config: SystemConfig, tables: Optional[L1Tables] = None):
    """Build the flat machine for op-by-op driving (engine differential).

    ``tables`` overrides the derived transition tables — the fuzz differ
    passes a deliberately corrupted table to prove engine-vs-engine
    comparison catches table-generation bugs.  Raises
    :class:`~repro.common.errors.TraceError` when :func:`vector_supports`
    rejects the configuration.
    """
    return _FlatMachine(config, tables)


class _FlatMachine:
    """The whole simulated machine as flat mutable state.

    Every protocol path is a method over plain ints, lists and dicts; the
    decision order inside each method mirrors the interpreter's controller
    code exactly (LRU touches, counter increments and message sends happen
    at the same points).  :meth:`access` executes one full operation — the
    engine-differential harness drives it op-by-op; :class:`VectorEngine`
    instead inlines the hit path and calls only the slow-path methods.
    """

    def __init__(self, config: SystemConfig, tables: Optional[L1Tables] = None) -> None:
        reason = vector_supports(config)
        if reason is not None:
            raise TraceError(f"vector engine cannot run this config: {reason}")
        self.config = config
        if tables is None:
            tables = l1_tables(config.protocol)
        self.tables = tables
        self.act = tables.flat_action()
        self.grant = [int(v) for v in tables.grant_state]

        n = config.num_cores
        self.n = n
        self.bank_mask = n - 1
        self.moesi = config.protocol is CoherenceProtocol.MOESI

        timing = config.timing
        self.t_l1 = timing.l1_hit
        self.t_dir = timing.directory_access
        self.t_llc = timing.llc_access
        self.t_mem = timing.memory_latency
        self.fixed = int(timing.core_fixed_cpi)

        mesh = Mesh2D(config.noc)
        self.hopt = mesh.hop_table()
        self.lat = mesh.latency_table()
        nclasses = len(_MSG_CLASSES)
        self.nm = [0] * nclasses  # messages per class
        self.nh = [0] * nclasses  # hops per class
        self.nf = [0] * nclasses  # flit-hops per class

        # One engine-wide LRU tick (see module docstring for why this is
        # order-equivalent to the interpreter's per-set clocks).
        self.tick = 0

        # L1s: per-core line map plus flat LRU/tag/occupancy arrays.
        self.l1_ways = config.l1.ways
        self.l1_mask = config.l1.sets - 1
        l1_slots = config.l1.sets * self.l1_ways
        self.l1maps: List[Dict[int, list]] = [dict() for _ in range(n)]
        self.l1_lu: List[List[int]] = [[0] * l1_slots for _ in range(n)]
        self.l1_blocks: List[List[int]] = [[-1] * l1_slots for _ in range(n)]
        self.l1_occ: List[List[int]] = [[0] * config.l1.sets for _ in range(n)]
        self.l1_fills = [0] * n
        self.l1_removals = [0] * n
        # Blocks whose copy a directory eviction destroyed (coverage misses).
        self.cov: List[Set[int]] = [set() for _ in range(n)]

        # LLC: one shared map plus flat arrays.
        self.llc_ways = config.llc.ways
        self.llc_mask = config.llc.sets - 1
        llc_slots = config.llc.sets * self.llc_ways
        self.llcmap: Dict[int, list] = {}
        self.llc_lu = [0] * llc_slots
        self.llc_blocks = [-1] * llc_slots
        self.llc_occ = [0] * config.llc.sets
        self.stash_bits = 0  # resident stash-marked lines (F7 metric input)

        # Directory.
        dcfg = config.directory
        self.ideal = dcfg.kind is DirectoryKind.IDEAL
        self.stash_capable = dcfg.kind is DirectoryKind.STASH
        self.excl_only = dcfg.stash_eligibility is StashEligibility.EXCLUSIVE_ONLY
        self.clean_notice = dcfg.clean_eviction_notification
        self.dmap: Dict[int, list] = {}
        if self.ideal:
            self.dways = 0
            self.dir_mask = 0
            self.dentries: List[Optional[list]] = []
            self.dir_lu: List[int] = []
            self.dir_occ: List[int] = []
        else:
            entries = config.directory_entries
            self.dways = dcfg.ways
            dsets = entries // dcfg.ways
            log2_exact(dsets)
            self.dir_mask = dsets - 1
            self.dentries = [None] * entries
            self.dir_lu = [0] * entries
            self.dir_occ = [0] * dsets
        self.dir_occ_total = 0

        # Sharer representation: 0 = full bitvector, 1 = coarse, 2 = limited,
        # 3 = hierarchical (SCD-style two-level, see directory.sharers).
        fmt = dcfg.sharer_format
        self.smode = (
            0
            if fmt is SharerFormat.FULL_BIT_VECTOR
            else 1
            if fmt is SharerFormat.COARSE_VECTOR
            else 2 if fmt is SharerFormat.LIMITED_POINTER else 3
        )
        self.group = dcfg.coarse_group
        self.pointers = dcfg.limited_pointers
        self.cluster = dcfg.hier_cluster or hier_auto_cluster(n)
        self.hier_pointers = dcfg.hier_pointers

        # Data-version bookkeeping (mirrors HomeController.mint_version).
        self.vclock = 0
        self.latest_version: Dict[int, int] = {}
        self.memory_version: Dict[int, int] = {}

        # Flat counters.  Names mirror the interpreter's statistic cells;
        # counters the interpreter binds lazily fold to keys only when > 0.
        self.c_l1_misses = 0
        self.c_upgrades = 0
        self.c_coverage = 0
        self.c_llc_hits = 0
        self.c_llc_misses = 0
        self.c_forwards = 0
        self.c_forward_nacks = 0
        self.c_self_regrants = 0
        self.c_owned_transitions = 0
        self.c_upgrade_requests = 0
        self.c_l1_writebacks = 0
        self.c_silent_clean = 0
        self.c_clean_notices = 0
        self.c_write_inval_msgs = 0
        self.c_dir_ev_inval_msgs = 0
        self.c_dir_induced = 0
        self.c_dir_ev_private = 0
        self.c_dir_ev_shared = 0
        self.c_llc_evictions = 0
        self.c_stash_evictions = 0
        self.c_empty_deallocs = 0
        self.c_hider_upgrades = 0
        self.c_llc_back_invals = 0
        self.c_owned_dropped = 0
        self.c_llc_fills = 0
        self.c_llc_removals = 0
        self.c_llc_wb_absorbed = 0
        self.c_stash_set = 0
        self.c_stash_cleared = 0
        self.c_dir_hits = 0
        self.c_dir_misses = 0
        self.c_dir_allocs = 0
        self.c_dir_deallocs = 0
        self.c_dir_evictions = 0
        self.c_dir_ev_act_inval = 0
        self.c_dir_ev_act_stash = 0
        self.c_dir_forced = 0
        self.c_mem_reads = 0
        self.c_mem_writes = 0
        self.c_disc_broadcasts = 0
        self.c_disc_probes = 0
        self.c_disc_false = 0
        self.c_disc_success = 0

        # Run-level aggregates (set by the engine, accumulated by access()).
        self.processed = 0
        self.writes_ct = 0
        self.latency_total = 0

        # Optional scan-invalidation feed for the bank-parallel engine
        # (repro.sim.parallel): when set to per-core lists, every slow-path
        # event that removes or demotes a core's L1 line appends the block
        # to that core's list.  A core's *own* fills and upgrades are not
        # recorded — they can only turn predicted hits conservative (false
        # run-enders), never unsafe.  ``None`` (the default) keeps the
        # serial engines entirely hook-free.
        self.touched: Optional[List[List[int]]] = None

    # -- NoC -------------------------------------------------------------------

    def _send(self, src: int, dst: int, ci: int) -> int:
        """Account one message; returns its latency."""
        h = self.hopt[src][dst]
        self.nm[ci] += 1
        self.nh[ci] += h
        self.nf[ci] += h * _FLITS[ci]
        return self.lat[src][dst]

    # -- sharer representation -------------------------------------------------

    def _rep_add(self, e: list, core: int) -> None:
        m = self.smode
        if m == 0:
            e[3] |= 1 << core
        elif m == 1:
            e[3] |= 1 << (core // self.group)
        elif m == 2:
            ids = e[3]
            if e[4] or core in ids:
                return
            if len(ids) < self.pointers:
                ids.append(core)
            else:
                e[4] = 1
                ids.clear()
        else:
            # Hierarchical: mirrors HierarchicalRep.add exactly (e[3] is
            # the cluster->ids dict, e[4] the overflowed-cluster mask).
            c = core // self.cluster
            if e[4] & (1 << c):
                return
            clusters = e[3]
            ids = clusters.get(c)
            if ids is None:
                clusters[c] = [core]
            elif core not in ids:
                if len(ids) < self.hier_pointers:
                    ids.append(core)
                else:
                    e[4] |= 1 << c
                    del clusters[c]

    def _rep_remove(self, e: list, core: int) -> None:
        m = self.smode
        if m == 0:
            e[3] &= ~(1 << core)
        elif m == 2:
            ids = e[3]
            if not e[4] and core in ids:
                ids.remove(core)
        elif m == 3:
            c = core // self.cluster
            if not e[4] & (1 << c):
                ids = e[3].get(c)
                if ids is not None and core in ids:
                    ids.remove(core)
                    if not ids:
                        del e[3][c]
        # Coarse: one departure cannot prove the group empty.

    def _targets(self, e: list) -> List[int]:
        m = self.smode
        if m == 0:
            result = []
            mask = e[3]
            core = 0
            while mask:
                if mask & 1:
                    result.append(core)
                mask >>= 1
                core += 1
            return result
        if m == 1:
            result = []
            n = self.n
            group = self.group
            mask = e[3]
            num_groups = (n + group - 1) // group
            for g in range(num_groups):
                if mask & (1 << g):
                    start = g * group
                    result.extend(range(start, min(start + group, n)))
            return result
        if m == 2:
            if e[4]:
                return list(range(self.n))
            return list(e[3])
        # Hierarchical: ascending cluster order, insertion order within a
        # precise cluster, clamped tail (HierarchicalRep.targets).
        result = []
        n = self.n
        cluster = self.cluster
        clusters = e[3]
        ovf = e[4]
        num_clusters = (n + cluster - 1) // cluster
        for c in range(num_clusters):
            if ovf & (1 << c):
                start = c * cluster
                result.extend(range(start, min(start + cluster, n)))
            else:
                got = clusters.get(c)
                if got:
                    result.extend(got)
        return result

    # -- directory entry operations --------------------------------------------

    def _rep_new(self):
        m = self.smode
        if m == 2:
            return []
        if m == 3:
            return {}
        return 0

    def _new_entry(self, blk: int, pos: int) -> list:
        return [blk, None, 0, self._rep_new(), 0, pos]

    def _grant_exclusive(self, e: list, core: int) -> None:
        e[2] = 1 << core
        if self.smode >= 2:
            e[3].clear()
            e[4] = 0
        else:
            e[3] = 0
        self._rep_add(e, core)
        e[1] = core

    def _add_sharer(self, e: list, core: int) -> None:
        e[2] |= 1 << core
        self._rep_add(e, core)

    def _remove_core(self, e: list, core: int) -> None:
        e[2] &= ~(1 << core)
        self._rep_remove(e, core)
        if e[1] == core:
            e[1] = None

    # -- directory structure ----------------------------------------------------

    def _dir_lookup_touch(self, blk: int) -> Optional[list]:
        e = self.dmap.get(blk)
        if e is None:
            self.c_dir_misses += 1
            return None
        self.c_dir_hits += 1
        if not self.ideal:
            self.tick = t = self.tick + 1
            self.dir_lu[e[5]] = t
        return e

    def _dir_deallocate(self, blk: int) -> None:
        e = self.dmap.pop(blk, None)
        if e is None:
            return
        self.c_dir_deallocs += 1
        self.dir_occ_total -= 1
        if not self.ideal:
            pos = e[5]
            self.dentries[pos] = None
            self.dir_occ[pos // self.dways] -= 1

    def _dir_allocate(self, blk: int, home: int) -> int:
        """Track ``blk``; returns the latency of any eviction it forced."""
        if self.ideal:
            self.dmap[blk] = self._new_entry(blk, -1)
            self.c_dir_allocs += 1
            self.dir_occ_total += 1
            return 0
        dways = self.dways
        s = blk & self.dir_mask
        base = s * dways
        dentries = self.dentries
        victim = None
        stash_action = False
        if self.dir_occ[s] == dways:
            lu = self.dir_lu
            vpos = -1
            if self.stash_capable:
                # Prefer the LRU stash-eligible entry (ascending-way scan
                # keeps the interpreter's lowest-way tie preference).
                excl_only = self.excl_only
                best_lu = 0
                for pos in range(base, base + dways):
                    e = dentries[pos]
                    if e[2].bit_count() == 1 and (not excl_only or e[1] is not None):
                        l = lu[pos]
                        if vpos < 0 or l < best_lu:
                            vpos = pos
                            best_lu = l
                if vpos >= 0:
                    stash_action = True
                else:
                    self.c_dir_forced += 1
            if vpos < 0:
                vpos = base
                best_lu = lu[base]
                for pos in range(base + 1, base + dways):
                    l = lu[pos]
                    if l < best_lu:
                        vpos = pos
                        best_lu = l
            victim = dentries[vpos]
            del self.dmap[victim[0]]
            self.c_dir_evictions += 1
            if stash_action:
                self.c_dir_ev_act_stash += 1
            else:
                self.c_dir_ev_act_inval += 1
        else:
            vpos = base
            while dentries[vpos] is not None:
                vpos += 1
        e = self._new_entry(blk, vpos)
        dentries[vpos] = e
        self.dmap[blk] = e
        self.tick = t = self.tick + 1
        self.dir_lu[vpos] = t
        self.c_dir_allocs += 1
        if victim is None:
            self.dir_occ[s] += 1
            self.dir_occ_total += 1
            return 0
        return self._execute_eviction(victim, stash_action, home)

    def _execute_eviction(self, victim: list, stash_action: bool, home: int) -> int:
        vaddr = victim[0]
        if stash_action:
            rec = self.llcmap.get(vaddr)
            if rec is None:
                raise ProtocolError(
                    f"stash bit for block {vaddr:#x} not resident in the LLC"
                )
            if not rec[1]:
                rec[1] = 1
                self.stash_bits += 1
                self.c_stash_set += 1
            self.c_stash_evictions += 1
            return 0
        if victim[2].bit_count() == 1:
            self.c_dir_ev_private += 1
        else:
            self.c_dir_ev_shared += 1
        return self._invalidate_victim_entry(victim, vaddr, home)

    def _invalidate_victim_entry(self, victim: list, vaddr: int, home: int) -> int:
        worst = 0
        nm = self.nm
        nh = self.nh
        nf = self.nf
        hopt = self.hopt
        lat = self.lat
        hopt_home = hopt[home]
        lat_home = lat[home]
        if self.smode == 0:
            l1maps = self.l1maps
            l1_blocks = self.l1_blocks
            l1_occ = self.l1_occ
            l1_removals = self.l1_removals
            lways = self.l1_ways
            mask = victim[3]
            while mask:
                lsb = mask & -mask
                mask -= lsb
                target = lsb.bit_length() - 1
                self.c_dir_ev_inval_msgs += 1
                h = hopt_home[target]
                nm[_INVALIDATION] += 1
                nh[_INVALIDATION] += h
                nf[_INVALIDATION] += h
                h = hopt[target][home]
                nm[_INV_ACK] += 1
                nh[_INV_ACK] += h
                nf[_INV_ACK] += h
                rt = lat_home[target] + lat[target][home]
                if rt > worst:
                    worst = rt
                removed = l1maps[target].pop(vaddr, None)
                if removed is not None:
                    if self.touched is not None:
                        self.touched[target].append(vaddr)
                    p = removed[1]
                    l1_blocks[target][p] = -1
                    l1_occ[target][p // lways] -= 1
                    l1_removals[target] += 1
                    self.c_dir_induced += 1
                    self.cov[target].add(vaddr)
                    if removed[2]:
                        h = hopt[target][home]
                        nm[_WRITEBACK] += 1
                        nh[_WRITEBACK] += h
                        nf[_WRITEBACK] += h * 5
                        self._llc_write_back(vaddr, removed[3])
            return worst
        for target in self._targets(victim):
            self.c_dir_ev_inval_msgs += 1
            rt = self._send(home, target, _INVALIDATION) + self._send(
                target, home, _INV_ACK
            )
            if rt > worst:
                worst = rt
            removed = self._l1_invalidate(target, vaddr)
            if removed is not None:
                self.c_dir_induced += 1
                self.cov[target].add(vaddr)
                if removed[2]:
                    self._send(target, home, _WRITEBACK)
                    self._llc_write_back(vaddr, removed[3])
        return worst

    # -- caches ----------------------------------------------------------------

    def _l1_invalidate(self, core: int, blk: int) -> Optional[list]:
        rec = self.l1maps[core].pop(blk, None)
        if rec is None:
            return None
        if self.touched is not None:
            self.touched[core].append(blk)
        pos = rec[1]
        self.l1_blocks[core][pos] = -1
        self.l1_occ[core][pos // self.l1_ways] -= 1
        self.l1_removals[core] += 1
        return rec

    def _llc_write_back(self, blk: int, version: int) -> None:
        rec = self.llcmap.get(blk)
        if rec is None:
            raise ProtocolError(f"writeback to LLC-absent block {blk:#x}")
        rec[0] = 1
        if version > rec[2]:
            rec[2] = version
        self.c_llc_wb_absorbed += 1

    def _serve_from_llc(self, core: int, home: int) -> int:
        self.c_llc_hits += 1
        return self.t_llc + self._send(home, core, _DATA_RESPONSE)

    # -- L1 request pipeline ----------------------------------------------------

    def access(self, core: int, blk: int, w: int) -> int:
        """One full memory operation; returns its latency.

        The differential harness's entry point (and the reference for the
        hit path :class:`VectorEngine` inlines).
        """
        rec = self.l1maps[core].get(blk)
        if rec is None:
            latency = self._miss(core, blk, w)
        else:
            self.tick = t = self.tick + 1
            self.l1_lu[core][rec[1]] = t
            a = self.act[(rec[0] << 1) | w]
            if a == 1:  # read hit
                latency = self.t_l1
            elif a == 2:  # silent write upgrade (E/M)
                rec[0] = _ST_MODIFIED
                rec[2] = 1
                self.vclock = v = self.vclock + 1
                self.latest_version[blk] = v
                rec[3] = v
                latency = self.t_l1
            elif a == 3:  # home-serialized upgrade (S/O)
                latency = self._upgrade(core, blk, rec)
            else:
                raise ProtocolError(
                    f"table dispatched resident line {blk:#x} to action {a}"
                )
        self.processed += 1
        if w:
            self.writes_ct += 1
        self.latency_total += latency
        return latency

    def _upgrade(self, core: int, blk: int, rec: list) -> int:
        self.c_upgrades += 1
        home = blk & self.bank_mask
        nm = self.nm
        nh = self.nh
        nf = self.nf
        hopt = self.hopt
        lat = self.lat
        h = hopt[core][home]
        nm[_REQUEST] += 1
        nh[_REQUEST] += h
        nf[_REQUEST] += h
        latency = self.t_l1 + lat[core][home] + self.t_dir
        self.c_upgrade_requests += 1
        e = self.dmap.get(blk)
        if e is not None:
            self.c_dir_hits += 1
            if not self.ideal:
                self.tick = t = self.tick + 1
                self.dir_lu[e[5]] = t
            latency += self._invalidate_targets(e, blk, home, core, None)
            if self.smode == 0:
                bit = 1 << core
                e[2] = bit
                e[3] = bit
                e[1] = core
            else:
                self._grant_exclusive(e, core)
        else:
            self.c_dir_misses += 1
            lrec = self.llcmap.get(blk)
            if not (self.stash_capable and lrec is not None and lrec[1]):
                raise ProtocolError(
                    f"upgrade for untracked, unstashed block {blk:#x}"
                )
            self.c_hider_upgrades += 1
            lrec[1] = 0
            self.stash_bits -= 1
            self.c_stash_cleared += 1
            latency += self._dir_allocate(blk, home)
            e = self.dmap[blk]
            if self.smode == 0:
                bit = 1 << core
                e[2] = bit
                e[3] = bit
                e[1] = core
            else:
                self._grant_exclusive(e, core)
        h = hopt[home][core]
        nm[_CONTROL_RESPONSE] += 1
        nh[_CONTROL_RESPONSE] += h
        nf[_CONTROL_RESPONSE] += h
        latency += lat[home][core]
        rec[0] = _ST_MODIFIED
        rec[2] = 1
        self.vclock = v = self.vclock + 1
        self.latest_version[blk] = v
        rec[3] = v
        return latency

    def _miss(self, core: int, blk: int, w: int) -> int:
        self.c_l1_misses += 1
        cov = self.cov[core]
        if blk in cov:
            cov.discard(blk)
            self.c_coverage += 1
        lmap = self.l1maps[core]
        lways = self.l1_ways
        s = blk & self.l1_mask
        occ = self.l1_occ[core]
        lu = self.l1_lu[core]
        blocks = self.l1_blocks[core]
        nm = self.nm
        nh = self.nh
        nf = self.nf
        hopt = self.hopt
        lat = self.lat
        dmap = self.dmap
        llcmap = self.llcmap
        bank_mask = self.bank_mask
        smode0 = self.smode == 0
        if occ[s] == lways:
            base = s * lways
            vpos = base
            best = lu[base]
            for pos in range(base + 1, base + lways):
                l = lu[pos]
                if l < best:
                    best = l
                    vpos = pos
            vblk = blocks[vpos]
            vrec = lmap.pop(vblk)
            if self.touched is not None:
                self.touched[core].append(vblk)
            blocks[vpos] = -1
            occ[s] -= 1
            self.l1_removals[core] += 1
            # Inlined _handle_put: dirty victims write back (uncharged
            # messages), clean ones optionally notify, else leave silently.
            if vrec[2]:
                vhome = vblk & bank_mask
                h = hopt[core][vhome]
                nm[_WRITEBACK] += 1
                nh[_WRITEBACK] += h
                nf[_WRITEBACK] += h * 5
                h = hopt[vhome][core]
                nm[_WB_ACK] += 1
                nh[_WB_ACK] += h
                nf[_WB_ACK] += h
                wrec = llcmap.get(vblk)
                if wrec is None:
                    raise ProtocolError(
                        f"writeback to LLC-absent block {vblk:#x}"
                    )
                wrec[0] = 1
                if vrec[3] > wrec[2]:
                    wrec[2] = vrec[3]
                self.c_llc_wb_absorbed += 1
                self.c_l1_writebacks += 1
                # Inlined _retire_holder.
                e = dmap.get(vblk)
                if e is not None:
                    if smode0:
                        nbit = ~(1 << core)
                        e[2] &= nbit
                        e[3] &= nbit
                        if e[1] == core:
                            e[1] = None
                    else:
                        self._rep_remove(e, core)
                        e[2] &= ~(1 << core)
                        if e[1] == core:
                            e[1] = None
                    if e[2] == 0:
                        del dmap[vblk]
                        self.c_dir_deallocs += 1
                        self.dir_occ_total -= 1
                        if not self.ideal:
                            pos = e[5]
                            self.dentries[pos] = None
                            self.dir_occ[pos // self.dways] -= 1
                        self.c_empty_deallocs += 1
                elif self.stash_capable and wrec[1]:
                    wrec[1] = 0
                    self.stash_bits -= 1
                    self.c_stash_cleared += 1
            elif self.clean_notice:
                vhome = vblk & bank_mask
                h = hopt[core][vhome]
                nm[_EVICTION_NOTICE] += 1
                nh[_EVICTION_NOTICE] += h
                nf[_EVICTION_NOTICE] += h
                self.c_clean_notices += 1
                self._retire_holder(core, vblk)
            else:
                self.c_silent_clean += 1
        home = blk & bank_mask
        hopt_home = hopt[home]
        lat_home = lat[home]
        h = hopt[core][home]
        nm[_REQUEST] += 1
        nh[_REQUEST] += h
        nf[_REQUEST] += h
        latency = self.t_l1 + lat[core][home] + self.t_dir
        # Inlined _serve_miss / _dir_lookup_touch.
        e = dmap.get(blk)
        if e is not None:
            self.c_dir_hits += 1
            if not self.ideal:
                self.tick = t = self.tick + 1
                self.dir_lu[e[5]] = t
            owner = e[1]
            if not w:
                # -- directory hit, read -------------------------------
                if owner is not None and owner != core:
                    # Inlined _forward_read.
                    self.c_forwards += 1
                    h = hopt_home[owner]
                    nm[_FORWARD] += 1
                    nh[_FORWARD] += h
                    nf[_FORWARD] += h
                    latency += lat_home[owner]
                    orec = self.l1maps[owner].get(blk)
                    if orec is None:
                        self.c_forward_nacks += 1
                        h = hopt[owner][home]
                        nm[_CONTROL_RESPONSE] += 1
                        nh[_CONTROL_RESPONSE] += h
                        nf[_CONTROL_RESPONSE] += h
                        latency += lat[owner][home]
                        if smode0:
                            nbit = ~(1 << owner)
                            e[2] &= nbit
                            e[3] &= nbit
                        else:
                            self._rep_remove(e, owner)
                            e[2] &= ~(1 << owner)
                        if e[1] == owner:
                            e[1] = None
                        self.c_llc_hits += 1
                        h = hopt_home[core]
                        nm[_DATA_RESPONSE] += 1
                        nh[_DATA_RESPONSE] += h
                        nf[_DATA_RESPONSE] += h * 5
                        latency += self.t_llc + lat_home[core]
                        bit = 1 << core
                        e[2] |= bit
                        if smode0:
                            e[3] |= bit
                        else:
                            self._rep_add(e, core)
                        state = _ST_SHARED
                        version = llcmap[blk][2]
                    else:
                        was_dirty = orec[2]
                        version = orec[3]
                        if self.touched is not None:
                            self.touched[owner].append(blk)
                        if self.moesi and was_dirty:
                            if orec[0] == _ST_MODIFIED:
                                orec[0] = _ST_OWNED
                            self.c_owned_transitions += 1
                            h = hopt[owner][core]
                            nm[_DATA_RESPONSE] += 1
                            nh[_DATA_RESPONSE] += h
                            nf[_DATA_RESPONSE] += h * 5
                            latency += lat[owner][core] + self.t_l1
                            bit = 1 << core
                            e[2] |= bit
                            if smode0:
                                e[3] |= bit
                            else:
                                self._rep_add(e, core)
                            state = _ST_SHARED
                        else:
                            orec[0] = _ST_SHARED
                            orec[2] = 0
                            if was_dirty:
                                h = hopt[owner][home]
                                nm[_WRITEBACK] += 1
                                nh[_WRITEBACK] += h
                                nf[_WRITEBACK] += h * 5
                                self._llc_write_back(blk, version)
                            h = hopt[owner][core]
                            nm[_DATA_RESPONSE] += 1
                            nh[_DATA_RESPONSE] += h
                            nf[_DATA_RESPONSE] += h * 5
                            latency += lat[owner][core] + self.t_l1
                            e[1] = None  # demote owner
                            bit = 1 << core
                            e[2] |= bit
                            if smode0:
                                e[3] |= bit
                            else:
                                self._rep_add(e, core)
                            state = _ST_SHARED
                            if not was_dirty:
                                version = llcmap[blk][2]
                else:
                    if owner == core:
                        self.c_self_regrants += 1
                    self.c_llc_hits += 1
                    h = hopt_home[core]
                    nm[_DATA_RESPONSE] += 1
                    nh[_DATA_RESPONSE] += h
                    nf[_DATA_RESPONSE] += h * 5
                    latency += self.t_llc + lat_home[core]
                    bit = 1 << core
                    if owner == core:
                        if smode0:
                            e[2] = bit
                            e[3] = bit
                            e[1] = core
                        else:
                            self._grant_exclusive(e, core)
                        state = _ST_EXCLUSIVE
                    else:
                        e[2] |= bit
                        if smode0:
                            e[3] |= bit
                        else:
                            self._rep_add(e, core)
                        state = _ST_SHARED
                    version = llcmap[blk][2]
            else:
                # -- directory hit, write ------------------------------
                if owner is not None and owner != core:
                    if self.moesi and e[2].bit_count() > 1:
                        # MOESI: readers may share with the owner; flush
                        # them first.
                        latency += self._invalidate_targets(
                            e, blk, home, core, owner
                        )
                    # Inlined _forward_write.
                    self.c_forwards += 1
                    h = hopt_home[owner]
                    nm[_FORWARD] += 1
                    nh[_FORWARD] += h
                    nf[_FORWARD] += h
                    latency += lat_home[owner]
                    removed = self.l1maps[owner].pop(blk, None)
                    if removed is not None:
                        if self.touched is not None:
                            self.touched[owner].append(blk)
                        p = removed[1]
                        self.l1_blocks[owner][p] = -1
                        self.l1_occ[owner][p // lways] -= 1
                        self.l1_removals[owner] += 1
                    if removed is None:
                        self.c_forward_nacks += 1
                        h = hopt[owner][home]
                        nm[_CONTROL_RESPONSE] += 1
                        nh[_CONTROL_RESPONSE] += h
                        nf[_CONTROL_RESPONSE] += h
                        latency += lat[owner][home]
                        if smode0:
                            nbit = ~(1 << owner)
                            e[2] &= nbit
                            e[3] &= nbit
                        else:
                            self._rep_remove(e, owner)
                            e[2] &= ~(1 << owner)
                        if e[1] == owner:
                            e[1] = None
                        self.c_llc_hits += 1
                        h = hopt_home[core]
                        nm[_DATA_RESPONSE] += 1
                        nh[_DATA_RESPONSE] += h
                        nf[_DATA_RESPONSE] += h * 5
                        latency += self.t_llc + lat_home[core]
                        version = llcmap[blk][2]
                    else:
                        version = removed[3] if removed[2] else llcmap[blk][2]
                        h = hopt[owner][core]
                        nm[_DATA_RESPONSE] += 1
                        nh[_DATA_RESPONSE] += h
                        nf[_DATA_RESPONSE] += h * 5
                        latency += lat[owner][core] + self.t_l1
                    if smode0:
                        bit = 1 << core
                        e[2] = bit
                        e[3] = bit
                        e[1] = core
                    else:
                        self._grant_exclusive(e, core)
                    state = _ST_MODIFIED
                else:
                    if owner == core:
                        self.c_self_regrants += 1
                    else:
                        latency += self._invalidate_targets(
                            e, blk, home, core, None
                        )
                    self.c_llc_hits += 1
                    h = hopt_home[core]
                    nm[_DATA_RESPONSE] += 1
                    nh[_DATA_RESPONSE] += h
                    nf[_DATA_RESPONSE] += h * 5
                    latency += self.t_llc + lat_home[core]
                    if smode0:
                        bit = 1 << core
                        e[2] = bit
                        e[3] = bit
                        e[1] = core
                    else:
                        self._grant_exclusive(e, core)
                    state = _ST_MODIFIED
                    version = llcmap[blk][2]
        else:
            # -- directory miss ----------------------------------------
            self.c_dir_misses += 1
            lrec = llcmap.get(blk)
            if lrec is not None:
                # Demand probe: touches LLC LRU exactly like the
                # interpreter's.
                self.tick = t = self.tick + 1
                self.llc_lu[lrec[3]] = t
                if self.stash_capable and lrec[1]:
                    latency, state, version = self._discover_and_serve(
                        core, blk, w, home, latency
                    )
                else:
                    # Inlined _dir_allocate (free-way fast path; full
                    # sets go through the generic eviction logic).
                    if self.ideal:
                        e = [blk, None, 0, self._rep_new(), 0, -1]
                        dmap[blk] = e
                        self.c_dir_allocs += 1
                        self.dir_occ_total += 1
                    else:
                        dways = self.dways
                        ds = blk & self.dir_mask
                        dentries = self.dentries
                        if self.dir_occ[ds] == dways:
                            # Inlined _dir_allocate full-set path: evict
                            # the set's LRU entry (stash-eligible entries
                            # first on stash directories, ascending-way
                            # ties like the interpreter).
                            dlu = self.dir_lu
                            base = ds * dways
                            vpos = -1
                            stash_action = False
                            if self.stash_capable:
                                excl_only = self.excl_only
                                best_lu = 0
                                for pos in range(base, base + dways):
                                    ev = dentries[pos]
                                    if ev[2].bit_count() == 1 and (
                                        not excl_only or ev[1] is not None
                                    ):
                                        l = dlu[pos]
                                        if vpos < 0 or l < best_lu:
                                            vpos = pos
                                            best_lu = l
                                if vpos >= 0:
                                    stash_action = True
                                else:
                                    self.c_dir_forced += 1
                            if vpos < 0:
                                vpos = base
                                best_lu = dlu[base]
                                for pos in range(base + 1, base + dways):
                                    l = dlu[pos]
                                    if l < best_lu:
                                        vpos = pos
                                        best_lu = l
                            victim = dentries[vpos]
                            vaddr = victim[0]
                            del dmap[vaddr]
                            self.c_dir_evictions += 1
                            if stash_action:
                                self.c_dir_ev_act_stash += 1
                            else:
                                self.c_dir_ev_act_inval += 1
                            e = [
                                blk,
                                None,
                                0,
                                self._rep_new(),
                                0,
                                vpos,
                            ]
                            dentries[vpos] = e
                            dmap[blk] = e
                            self.tick = t = self.tick + 1
                            dlu[vpos] = t
                            self.c_dir_allocs += 1
                            # Inlined _execute_eviction.
                            if stash_action:
                                vrec = llcmap.get(vaddr)
                                if vrec is None:
                                    raise ProtocolError(
                                        f"stash bit for block {vaddr:#x}"
                                        " not resident in the LLC"
                                    )
                                if not vrec[1]:
                                    vrec[1] = 1
                                    self.stash_bits += 1
                                    self.c_stash_set += 1
                                self.c_stash_evictions += 1
                            else:
                                if victim[2].bit_count() == 1:
                                    self.c_dir_ev_private += 1
                                else:
                                    self.c_dir_ev_shared += 1
                                latency += self._invalidate_victim_entry(
                                    victim, vaddr, home
                                )
                        else:
                            vpos = ds * dways
                            while dentries[vpos] is not None:
                                vpos += 1
                            e = [
                                blk,
                                None,
                                0,
                                self._rep_new(),
                                0,
                                vpos,
                            ]
                            dentries[vpos] = e
                            dmap[blk] = e
                            self.tick = t = self.tick + 1
                            self.dir_lu[vpos] = t
                            self.c_dir_allocs += 1
                            self.dir_occ[ds] += 1
                            self.dir_occ_total += 1
                    if smode0:
                        bit = 1 << core
                        e[2] = bit
                        e[3] = bit
                        e[1] = core
                    else:
                        self._grant_exclusive(e, core)
                    self.c_llc_hits += 1
                    h = hopt_home[core]
                    nm[_DATA_RESPONSE] += 1
                    nh[_DATA_RESPONSE] += h
                    nf[_DATA_RESPONSE] += h * 5
                    latency += self.t_llc + lat_home[core]
                    state = self.grant[w]
                    version = lrec[2]
            else:
                latency, state, version = self._llc_miss(
                    core, blk, w, home, latency
                )
        # -- L1 fill (a back-invalidation mid-miss can free a second
        # way; the lowest free way wins, like the interpreter).
        pos = s * lways
        while blocks[pos] != -1:
            pos += 1
        self.tick = t = self.tick + 1
        lu[pos] = t
        blocks[pos] = blk
        occ[s] += 1
        self.l1_fills[core] += 1
        rec = [state, pos, 1 if state == _ST_MODIFIED else 0, version]
        lmap[blk] = rec
        if w:
            self.vclock = v = self.vclock + 1
            self.latest_version[blk] = v
            rec[3] = v
        return latency

    # -- home controller ---------------------------------------------------------

    def _invalidate_targets(
        self, e: list, blk: int, home: int, skip: int, also_skip: Optional[int]
    ) -> int:
        worst = 0
        nm = self.nm
        nh = self.nh
        nf = self.nf
        hopt = self.hopt
        lat = self.lat
        hopt_home = hopt[home]
        lat_home = lat[home]
        if self.smode == 0:
            l1maps = self.l1maps
            l1_blocks = self.l1_blocks
            l1_occ = self.l1_occ
            l1_removals = self.l1_removals
            lways = self.l1_ways
            mask = e[3]
            while mask:
                lsb = mask & -mask
                mask -= lsb
                target = lsb.bit_length() - 1
                if target == skip or target == also_skip:
                    continue
                self.c_write_inval_msgs += 1
                h = hopt_home[target]
                nm[_INVALIDATION] += 1
                nh[_INVALIDATION] += h
                nf[_INVALIDATION] += h
                h = hopt[target][home]
                nm[_INV_ACK] += 1
                nh[_INV_ACK] += h
                nf[_INV_ACK] += h
                rt = lat_home[target] + lat[target][home]
                if rt > worst:
                    worst = rt
                removed = l1maps[target].pop(blk, None)
                if removed is not None:
                    if self.touched is not None:
                        self.touched[target].append(blk)
                    p = removed[1]
                    l1_blocks[target][p] = -1
                    l1_occ[target][p // lways] -= 1
                    l1_removals[target] += 1
                    if removed[2]:
                        if not self.moesi:
                            raise ProtocolError(
                                f"dirty copy of {blk:#x} at non-owner core"
                                f" {target}"
                            )
                        self.c_owned_dropped += 1
            return worst
        for target in self._targets(e):
            if target == skip or target == also_skip:
                continue
            self.c_write_inval_msgs += 1
            rt = self._send(home, target, _INVALIDATION) + self._send(
                target, home, _INV_ACK
            )
            if rt > worst:
                worst = rt
            removed = self._l1_invalidate(target, blk)
            if removed is not None and removed[2]:
                if not self.moesi:
                    raise ProtocolError(
                        f"dirty copy of {blk:#x} at non-owner core {target}"
                    )
                self.c_owned_dropped += 1
        return worst

    def _llc_miss(
        self, core: int, blk: int, w: int, home: int, latency: int
    ) -> Tuple[int, int, int]:
        self.c_llc_misses += 1
        latency += self.t_llc
        s = blk & self.llc_mask
        lways = self.llc_ways
        if self.llc_occ[s] == lways:
            base = s * lways
            lu = self.llc_lu
            vpos = base
            best = lu[base]
            for pos in range(base + 1, base + lways):
                l = lu[pos]
                if l < best:
                    best = l
                    vpos = pos
            self._handle_llc_eviction(self.llc_blocks[vpos], home)
        # Two uncharged MEMORY self-sends bracket the charged t_mem (the
        # interpreter's request/response pair; self-sends have zero hops).
        self.nm[_MEMORY] += 2
        latency += self.t_mem
        self.c_mem_reads += 1
        blocks = self.llc_blocks
        pos = s * lways
        while blocks[pos] != -1:
            pos += 1
        self.tick = t = self.tick + 1
        self.llc_lu[pos] = t
        blocks[pos] = blk
        self.llc_occ[s] += 1
        self.c_llc_fills += 1
        rec = [0, 0, self.memory_version.get(blk, 0), pos]
        self.llcmap[blk] = rec
        latency += self._dir_allocate(blk, home)
        e = self.dmap[blk]
        if self.smode == 0:
            bit = 1 << core
            e[2] = bit
            e[3] = bit
            e[1] = core
        else:
            self._grant_exclusive(e, core)
        h = self.hopt[home][core]
        nm = self.nm
        nm[_DATA_RESPONSE] += 1
        self.nh[_DATA_RESPONSE] += h
        self.nf[_DATA_RESPONSE] += h * 5
        latency += self.lat[home][core]
        return latency, self.grant[w], rec[2]

    def _handle_llc_eviction(self, vblk: int, home: int) -> None:
        self.c_llc_evictions += 1
        rec = self.llcmap[vblk]
        version = rec[2]
        dirty = rec[0]
        e = self.dmap.get(vblk)
        if e is not None:
            nm = self.nm
            nh = self.nh
            nf = self.nf
            hopt = self.hopt
            hopt_home = hopt[home]
            if self.smode == 0:
                l1maps = self.l1maps
                l1_blocks = self.l1_blocks
                l1_occ = self.l1_occ
                l1_removals = self.l1_removals
                lways = self.l1_ways
                mask = e[3]
                while mask:
                    lsb = mask & -mask
                    mask -= lsb
                    target = lsb.bit_length() - 1
                    h = hopt_home[target]
                    nm[_INVALIDATION] += 1
                    nh[_INVALIDATION] += h
                    nf[_INVALIDATION] += h
                    h = hopt[target][home]
                    nm[_INV_ACK] += 1
                    nh[_INV_ACK] += h
                    nf[_INV_ACK] += h
                    removed = l1maps[target].pop(vblk, None)
                    if removed is not None:
                        if self.touched is not None:
                            self.touched[target].append(vblk)
                        p = removed[1]
                        l1_blocks[target][p] = -1
                        l1_occ[target][p // lways] -= 1
                        l1_removals[target] += 1
                        self.c_llc_back_invals += 1
                        if removed[2]:
                            nm[_WRITEBACK] += 1
                            nh[_WRITEBACK] += h
                            nf[_WRITEBACK] += h * 5
                            dirty = 1
                            if removed[3] > version:
                                version = removed[3]
            else:
                for target in self._targets(e):
                    self._send(home, target, _INVALIDATION)
                    self._send(target, home, _INV_ACK)
                    removed = self._l1_invalidate(target, vblk)
                    if removed is not None:
                        self.c_llc_back_invals += 1
                        if removed[2]:
                            self._send(target, home, _WRITEBACK)
                            dirty = 1
                            if removed[3] > version:
                                version = removed[3]
            self._dir_deallocate(vblk)
        elif self.stash_capable and rec[1]:
            hider, dirty_version, _ = self._discover(home, vblk, 2, None)
            if hider is not None:
                self.c_llc_back_invals += 1
            if dirty_version is not None:
                dirty = 1
                if dirty_version > version:
                    version = dirty_version
        # Remove the line.
        del self.llcmap[vblk]
        pos = rec[3]
        self.llc_blocks[pos] = -1
        self.llc_occ[pos // self.llc_ways] -= 1
        self.c_llc_removals += 1
        if rec[1]:
            self.stash_bits -= 1
        if dirty:
            self._send(home, home, _MEMORY)
            self.c_mem_writes += 1
            self.memory_version[vblk] = version

    # -- stash discovery ----------------------------------------------------------

    def _discover(
        self, home: int, blk: int, demand: int, exclude: Optional[int]
    ) -> Tuple[Optional[int], Optional[int], int]:
        """Broadcast probe; ``demand``: 0 = read, 1 = write, 2 = evict.

        Returns ``(hider, dirty_version, round_trip_latency)``.
        """
        n = self.n
        hopt = self.hopt
        lat = self.lat
        nm = self.nm
        nh = self.nh
        nf = self.nf
        worst = 0
        fanout = 0
        hop_row = hopt[home]
        lat_row = lat[home]
        for dst in range(n):
            if dst == exclude:
                continue
            fanout += 1
            out_hops = hop_row[dst]
            back_hops = hopt[dst][home]
            nm[_DISCOVERY_PROBE] += 1
            nh[_DISCOVERY_PROBE] += out_hops
            nf[_DISCOVERY_PROBE] += out_hops
            nm[_DISCOVERY_REPLY] += 1
            nh[_DISCOVERY_REPLY] += back_hops
            nf[_DISCOVERY_REPLY] += back_hops
            rt = lat_row[dst] + lat[dst][home]
            if rt > worst:
                worst = rt
        self.c_disc_broadcasts += 1
        self.c_disc_probes += fanout
        hider: Optional[int] = None
        dirty_version: Optional[int] = None
        for dst in range(n):
            if dst == exclude:
                continue
            orec = self.l1maps[dst].get(blk)
            if orec is None:
                continue
            if hider is not None:
                raise ProtocolError(f"two hidden copies of block {blk:#x}")
            hider = dst
            was_dirty = orec[2]
            version = orec[3]
            if demand == 0:
                if self.touched is not None:
                    self.touched[dst].append(blk)
                orec[0] = _ST_SHARED
                orec[2] = 0
            else:
                self._l1_invalidate(dst, blk)
            if was_dirty:
                dirty_version = version
                self._send(dst, home, _WRITEBACK)
        if hider is None:
            self.c_disc_false += 1
        else:
            self.c_disc_success += 1
        return hider, dirty_version, worst

    def _discover_and_serve(
        self, core: int, blk: int, w: int, home: int, latency: int
    ) -> Tuple[int, int, int]:
        hider, dirty_version, disc_latency = self._discover(
            home, blk, 1 if w else 0, core
        )
        latency += disc_latency
        rec = self.llcmap[blk]
        if rec[1]:
            rec[1] = 0
            self.stash_bits -= 1
            self.c_stash_cleared += 1
        if dirty_version is not None:
            self._llc_write_back(blk, dirty_version)
        latency += self._dir_allocate(blk, home)
        e = self.dmap[blk]
        if hider is not None and not w:
            self._add_sharer(e, hider)
            self._add_sharer(e, core)
            latency += self._serve_from_llc(core, home)
            return latency, _ST_SHARED, rec[2]
        self._grant_exclusive(e, core)
        latency += self._serve_from_llc(core, home)
        return latency, self.grant[w], rec[2]

    # -- upgrades and put-backs ----------------------------------------------------

    def _retire_holder(self, core: int, blk: int) -> None:
        e = self.dmap.get(blk)
        if e is not None:
            self._remove_core(e, core)
            if e[2] == 0:
                self._dir_deallocate(blk)
                self.c_empty_deallocs += 1
            return
        if self.stash_capable:
            rec = self.llcmap.get(blk)
            if rec is not None and rec[1]:
                rec[1] = 0
                self.stash_bits -= 1
                self.c_stash_cleared += 1

    # -- inspection (differential harness hooks) -----------------------------------

    def held_version(self, core: int, blk: int) -> int:
        """Version of ``core``'s copy of ``blk``, or -1 when not held."""
        rec = self.l1maps[core].get(blk)
        return rec[3] if rec is not None else -1

    def effective_tracking(self) -> int:
        """Directory occupancy + resident stash bits (the F7 metric)."""
        return self.dir_occ_total + self.stash_bits

    # -- statistics folding ---------------------------------------------------------

    def flat_stats(self) -> Dict[str, float]:
        """The statistics tree, flattened exactly as the interpreter's.

        The interpreter creates counters lazily on their first event, so a
        key exists iff its count is nonzero — with two exceptions replicated
        here: per-class NoC ``hops`` can sit at 0.0 (self-sends) once the
        class has messages, and ``discovery.probes_sent`` exists at 0.0 once
        any broadcast was issued (an empty probe set still records it).
        """
        s: Dict[str, float] = {}
        processed = self.processed
        p = "system.protocol."
        if processed:
            s[p + "accesses"] = float(processed)
            s[p + "latency_total"] = float(self.latency_total)
        writes = self.writes_ct
        reads = processed - writes
        if reads:
            s[p + "reads"] = float(reads)
        if writes:
            s[p + "writes"] = float(writes)
        l1_hits = processed - self.c_l1_misses - self.c_upgrades
        for name, value in (
            ("l1_hits", l1_hits),
            ("l1_misses", self.c_l1_misses),
            ("upgrade_misses", self.c_upgrades),
            ("coverage_misses", self.c_coverage),
            ("llc_hits", self.c_llc_hits),
            ("llc_misses", self.c_llc_misses),
            ("forwards", self.c_forwards),
            ("forward_nacks", self.c_forward_nacks),
            ("self_regrants", self.c_self_regrants),
            ("owned_transitions", self.c_owned_transitions),
            ("upgrade_requests", self.c_upgrade_requests),
            ("l1_writebacks", self.c_l1_writebacks),
            ("silent_clean_evictions", self.c_silent_clean),
            ("clean_eviction_notices", self.c_clean_notices),
            ("write_inval_msgs", self.c_write_inval_msgs),
            ("dir_eviction_inval_msgs", self.c_dir_ev_inval_msgs),
            ("dir_induced_invalidations", self.c_dir_induced),
            ("dir_evictions_private", self.c_dir_ev_private),
            ("dir_evictions_shared", self.c_dir_ev_shared),
            ("llc_evictions", self.c_llc_evictions),
            ("stash_evictions", self.c_stash_evictions),
            ("empty_entry_deallocations", self.c_empty_deallocs),
            ("hider_upgrades", self.c_hider_upgrades),
            ("llc_back_invalidations", self.c_llc_back_invals),
            ("owned_copies_dropped", self.c_owned_dropped),
        ):
            if value:
                s[p + name] = float(value)
        for core in range(self.n):
            fills = self.l1_fills[core]
            if fills:
                s[f"system.l1.{core}.array.fills"] = float(fills)
            removals = self.l1_removals[core]
            if removals:
                s[f"system.l1.{core}.array.removals"] = float(removals)
        for name, value in (
            ("array.fills", self.c_llc_fills),
            ("array.removals", self.c_llc_removals),
            ("writebacks_absorbed", self.c_llc_wb_absorbed),
            ("stash_bits_set", self.c_stash_set),
            ("stash_bits_cleared", self.c_stash_cleared),
        ):
            if value:
                s["system.llc." + name] = float(value)
        for name, value in (
            ("hits", self.c_dir_hits),
            ("misses", self.c_dir_misses),
            ("allocations", self.c_dir_allocs),
            ("deallocations", self.c_dir_deallocs),
            ("evictions", self.c_dir_evictions),
            ("evictions_invalidate", self.c_dir_ev_act_inval),
            ("evictions_stash", self.c_dir_ev_act_stash),
            ("forced_invalidations", self.c_dir_forced),
        ):
            if value:
                s["system.directory." + name] = float(value)
        nm = self.nm
        any_class = False
        for i, name in enumerate(_MC_NAMES):
            if nm[i]:
                any_class = True
                s[f"system.noc.msgs.{name}"] = float(nm[i])
                s[f"system.noc.hops.{name}"] = float(self.nh[i])
                s[f"system.noc.flit_hops.{name}"] = float(self.nf[i])
        if any_class:
            s["system.noc.msgs.total"] = float(sum(nm))
            s["system.noc.flit_hops.total"] = float(sum(self.nf))
        if self.c_mem_reads:
            s["system.memory.reads"] = float(self.c_mem_reads)
        if self.c_mem_writes:
            s["system.memory.writes"] = float(self.c_mem_writes)
        if self.c_disc_broadcasts:
            s["system.discovery.broadcasts"] = float(self.c_disc_broadcasts)
            s["system.discovery.probes_sent"] = float(self.c_disc_probes)
        if self.c_disc_false:
            s["system.discovery.false_discoveries"] = float(self.c_disc_false)
        if self.c_disc_success:
            s["system.discovery.successful_discoveries"] = float(self.c_disc_success)
        return s


class VectorEngine:
    """Runs one PackedTrace on flat state with table dispatch.

    ``tables`` injects alternative transition tables (the fuzz differ's
    fault hook); ``epoch_ops`` bounds the per-batch decode (results are
    identical for any epoch size — the property tests pin this).
    """

    def __init__(
        self,
        config: SystemConfig,
        tables: Optional[L1Tables] = None,
        epoch_ops: int = DEFAULT_EPOCH_OPS,
        sample_interval: int = 4096,
    ) -> None:
        reason = vector_supports(config)
        if reason is not None:
            raise TraceError(f"vector engine cannot run this config: {reason}")
        if epoch_ops < 1:
            raise TraceError("epoch_ops must be >= 1")
        if sample_interval < 1:
            raise TraceError("sample_interval must be >= 1")
        self.config = config
        self.tables = tables
        self.epoch_ops = epoch_ops
        self.sample_interval = sample_interval

    def run(self, trace) -> SimulationResult:
        """Execute the whole trace; bit-identical to the interpreter."""
        config = self.config
        if not isinstance(trace, PackedTrace):
            trace = PackedTrace.from_trace(trace)
        if trace.num_cores > config.num_cores:
            raise TraceError(
                f"trace has {trace.num_cores} cores, system only {config.num_cores}"
            )
        m = _FlatMachine(config, self.tables)
        packshift = log2_exact(config.block_bytes) + 1
        ncores = trace.num_cores
        epoch = self.epoch_ops

        # Per-stream raw word views plus one popcount pass for the derived
        # read/write split.  The shift/mask transform happens lazily per
        # epoch slice in ``decode`` below — the full-stream transformed
        # copy the engine used to pre-build doubled the numpy footprint
        # and paid a second whole-trace pass before the first op ran.
        arrs: List[Optional[np.ndarray]] = []
        writes_total = 0
        for core in range(ncores):
            stream = trace.streams[core]
            if len(stream):
                words = np.frombuffer(stream, dtype=np.uint64)
                writes_total += int((words & np.uint64(1)).sum())
                arrs.append(words)
            else:
                arrs.append(None)

        shift = np.uint64(packshift)
        one = np.uint64(1)

        def decode(words: np.ndarray) -> List[int]:
            """One epoch slice as ``(block << 1) | is_write`` Python ints."""
            wbits = words & one
            return (((words >> shift) << one) | wbits).tolist()

        totals = [len(trace.streams[core]) for core in range(ncores)]
        clocks = [0] * ncores
        cursors = [0] * ncores
        chunk_lists: List[List[int]] = [[] for _ in range(ncores)]
        chunk_base = [0] * ncores
        samples: List[int] = []
        sample_interval = self.sample_interval
        next_sample = sample_interval
        processed = 0

        # Hot-loop hoists; the engine-wide tick and version clock live in
        # locals and are synced around every slow-path call.
        act = m.act
        fixed = m.fixed
        hit_step = m.t_l1 + fixed
        l1maps = m.l1maps
        l1_lus = m.l1_lu
        latest_version = m.latest_version
        miss = m._miss
        upgrade = m._upgrade
        tick = m.tick
        vclock = m.vclock

        heap = [(0, core) for core in range(ncores) if totals[core]]
        heapq.heapify(heap)
        heappush = heapq.heappush
        heappop = heapq.heappop
        while heap:
            clock, core = heappop(heap)
            cur = cursors[core]
            total = totals[core]
            ops = chunk_lists[core]
            bas = chunk_base[core]
            n = len(ops)
            i = cur - bas
            if i == n:
                ops = decode(arrs[core][cur : cur + epoch])
                chunk_lists[core] = ops
                chunk_base[core] = bas = cur
                n = len(ops)
                i = 0
            lines_get = l1maps[core].get
            lu = l1_lus[core]
            while True:
                word = ops[i]
                i += 1
                blk = word >> 1
                rec = lines_get(blk)
                if rec is not None:
                    tick += 1
                    lu[rec[1]] = tick
                    a = act[(rec[0] << 1) | (word & 1)]
                    if a == 1:
                        clock += hit_step
                    elif a == 2:
                        rec[0] = _ST_MODIFIED
                        rec[2] = 1
                        vclock += 1
                        latest_version[blk] = vclock
                        rec[3] = vclock
                        clock += hit_step
                    elif a == 3:
                        m.tick = tick
                        m.vclock = vclock
                        clock += upgrade(core, blk, rec) + fixed
                        tick = m.tick
                        vclock = m.vclock
                    else:
                        raise ProtocolError(
                            f"table dispatched resident line {blk:#x} to action {a}"
                        )
                else:
                    m.tick = tick
                    m.vclock = vclock
                    clock += miss(core, blk, word & 1) + fixed
                    tick = m.tick
                    vclock = m.vclock
                processed += 1
                if processed == next_sample:
                    next_sample += sample_interval
                    samples.append(m.dir_occ_total + m.stash_bits)
                if i == n:
                    if bas + n == total:
                        cur = total
                        break
                    cur = bas + n
                    ops = decode(arrs[core][cur : cur + epoch])
                    chunk_lists[core] = ops
                    chunk_base[core] = bas = cur
                    n = len(ops)
                    i = 0
                if heap:
                    head = heap[0]
                    head_clock = head[0]
                    if clock > head_clock or (
                        clock == head_clock and core > head[1]
                    ):
                        cur = bas + i
                        heappush(heap, (clock, core))
                        break
            clocks[core] = clock
            cursors[core] = cur
        m.tick = tick
        m.vclock = vclock
        m.processed = processed
        m.writes_ct = writes_total
        m.latency_total = sum(clocks) - fixed * processed
        return SimulationResult(
            config=config,
            cycles_per_core=clocks,
            stats=m.flat_stats(),
            effective_tracking_samples=samples,
            engine="vector",
        )
