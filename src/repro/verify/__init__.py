"""Differential verification: adversarial fuzzing against the IDEAL reference.

The stash directory's whole claim is that silently dropping entries is
architecturally invisible; this package *hunts* for counterexamples.  It
generates adversarial flat programs (:mod:`.generator`), runs every
directory organization against the infinite-capacity IDEAL reference on
the identical global operation order (:mod:`.differ`), shrinks any failure
with a delta-debugging minimizer (:mod:`.minimizer`) and serializes the
result as a replayable repro case (:mod:`.corpus`).

Entry point: ``repro fuzz`` (see :mod:`repro.cli`) or the library calls::

    from repro.verify import generate_program, run_differential, RunOptions
    program = generate_program("eviction_storm", 4, 400, DeterministicRng(1))
    divergences = run_differential(program, options=RunOptions())
"""

from .differ import (
    DEFAULT_FUZZ_KINDS,
    ENGINE_FAULTS,
    ENGINE_KINDS,
    FAULTS,
    Divergence,
    ExecutionResult,
    RunOptions,
    check_stat_sanity,
    diff_engine_results,
    diff_results,
    diff_tardis_results,
    execute_program,
    execute_program_vector,
    make_fuzz_config,
    run_differential,
    run_engine_differential,
    run_parallel_differential,
)
from .corpus import (
    FailureCase,
    case_key,
    default_failure_root,
    load_case,
    repro_command,
    save_case,
    seed_corpus,
)
from .generator import PROFILES, generate_program
from .minimizer import minimize

__all__ = [
    "DEFAULT_FUZZ_KINDS",
    "Divergence",
    "ENGINE_FAULTS",
    "ENGINE_KINDS",
    "ExecutionResult",
    "FAULTS",
    "FailureCase",
    "PROFILES",
    "RunOptions",
    "case_key",
    "check_stat_sanity",
    "default_failure_root",
    "diff_engine_results",
    "diff_results",
    "diff_tardis_results",
    "execute_program",
    "execute_program_vector",
    "generate_program",
    "load_case",
    "make_fuzz_config",
    "minimize",
    "repro_command",
    "run_differential",
    "run_engine_differential",
    "run_parallel_differential",
    "save_case",
    "seed_corpus",
]
