"""Failure corpus: replayable repro cases in the trace-spool format.

Every confirmed divergence is serialized under
``<cache-dir>/failures/`` (default ``.repro_cache/failures/``) as one
``<sha256>.trace`` file in the exact on-disk format of the workload
trace spool (:mod:`repro.workloads.store`): magic, JSON header, packed
u64 payload.  The program itself rides as a single-stream *flat program*
(:func:`repro.sim.trace.pack_flat_program`), so the global operation
order survives the round trip; everything else — organization, sharer
format, protocol, fault name, divergence category — rides in the header
under the ``fuzz`` key.

``repro fuzz --replay <file>`` rebuilds the configuration from the
header and re-runs the differential check; a failure case must reproduce
its recorded ``(kind, category)`` signature, while *seed* cases (regress
ion programs distilled from past audits, planted by :func:`seed_corpus`)
must replay clean.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..common.errors import TraceError
from ..sim.trace import FlatOp, pack_flat_program, unpack_flat_program
from ..workloads.store import TraceStore
from .differ import RunOptions

#: Header key every fuzz case stores its metadata under.
FUZZ_META_KEY = "fuzz"

#: Category used for planted regression programs (replay must be clean).
SEED_CATEGORY = "seed"


def default_failure_root() -> Path:
    """The failure-corpus directory under the configured cache root."""
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or ".repro_cache"
    return Path(cache_dir) / "failures"


@dataclass
class FailureCase:
    """One replayable fuzz case: the program plus how to run it."""

    program: List[FlatOp]
    kind: str                      # DirectoryKind value under test
    category: str                  # divergence category, or "seed"
    detail: str                    # human-readable divergence description
    options: RunOptions = field(default_factory=RunOptions)
    profile: str = "mixed"
    fault: Optional[str] = None    # injected FAULTS name, when any

    def meta(self) -> Dict[str, object]:
        """The ``fuzz`` header block (everything but the program)."""
        return {
            "kind": self.kind,
            "category": self.category,
            "detail": self.detail,
            "profile": self.profile,
            "fault": self.fault,
            "options": self.options.to_meta(),
        }


def case_key(case: FailureCase) -> str:
    """Content-addressed corpus key: SHA-256 of metadata + program."""
    canonical = json.dumps(case.meta(), sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8"))
    digest.update(pack_flat_program(case.program).stream_bytes()[0])
    return digest.hexdigest()


def save_case(case: FailureCase, root: Optional[Union[str, Path]] = None) -> Path:
    """Serialize one case into the corpus; returns its file path."""
    store = TraceStore(root if root is not None else default_failure_root())
    key = case_key(case)
    store.store(key, {FUZZ_META_KEY: case.meta()}, pack_flat_program(case.program))
    return store.path_for(key)


def load_case(path: Union[str, Path]) -> FailureCase:
    """Deserialize a corpus file back into a :class:`FailureCase`.

    Raises :class:`~repro.common.errors.TraceError` when the file is
    missing, corrupt, or not a fuzz case (corrupt files are also deleted,
    matching the spool's regeneration discipline).
    """
    path = Path(path)
    store = TraceStore(path.parent)
    entry = store.load_entry(path.stem)
    if entry is None:
        raise TraceError(f"fuzz case {path} is missing or corrupt")
    header, packed = entry
    meta = header.get(FUZZ_META_KEY)
    if not isinstance(meta, dict):
        raise TraceError(f"{path} is a trace spool entry, not a fuzz case")
    try:
        return FailureCase(
            program=unpack_flat_program(packed),
            kind=str(meta["kind"]),
            category=str(meta["category"]),
            detail=str(meta.get("detail", "")),
            options=RunOptions.from_meta(meta["options"]),
            profile=str(meta.get("profile", "mixed")),
            fault=meta.get("fault"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"{path} has a malformed fuzz header: {exc}") from None


def repro_command(path: Union[str, Path]) -> str:
    """The one-command reproduction line printed next to a saved case."""
    return f"PYTHONPATH=src python -m repro fuzz --replay {path}"


def seed_corpus(root: Optional[Union[str, Path]] = None) -> List[Path]:
    """Plant the distilled regression programs; returns their paths.

    Currently one case: the MOESI owner/sharer distinguishing trace from
    the ``check_swmr`` audit — a write creates an M copy, a remote read
    downgrades it to OWNED (dirty, still servicing), a second reader
    joins, and the owner upgrades back to M, which must invalidate both
    SHARED copies.  A directory that mishandles the OWNED owner pointer
    (or an invariant checker that bans legal OWNED+SHARED) fails here.
    """
    from ..common.mesi import CoherenceProtocol  # local: avoid cycle at import

    program: List[FlatOp] = [
        (0, 0x10, True),    # core 0: M copy of block 0x10
        (1, 0x10, False),   # core 1 reads: owner downgrades M -> O, O+S
        (2, 0x10, False),   # core 2 joins: O+S+S must satisfy check_swmr
        (0, 0x10, True),    # owner upgrades O -> M: both S copies invalidated
        (1, 0x10, False),   # reader returns: must observe the new version
    ]
    case = FailureCase(
        program=program,
        kind="stash",
        category=SEED_CATEGORY,
        detail="MOESI OWNED+SHARED distinguishing trace (check_swmr audit)",
        options=RunOptions(
            num_cores=4,
            protocol=CoherenceProtocol.MOESI,
            check_every=1,
        ),
        profile="seed",
    )
    return [save_case(case, root)]
