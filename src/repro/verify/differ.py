"""Differential execution: every organization vs. the IDEAL reference.

The IDEAL directory (infinite duplicate-tag, no conflicts) defines the
architectural contract; every other organization may differ in *latency*
and *traffic* but never in the values a program observes.  This module
replays one flat program (identical global operation order) on each
organization and compares three things against the reference:

1. **Observed values** — after every operation, the data version the
   issuing core's private cache holds.  Writes mint one version each and
   program order is shared, so the per-op version sequence of a correct
   organization is identical to IDEAL's.
2. **Invariants** — the full suite from
   :mod:`repro.coherence.invariants`, run every ``check_every`` ops and
   at the end.
3. **Final architectural state** — the committed-version map
   (``latest_version``) after the program drains.

On top of the differential comparison, :func:`check_stat_sanity` asserts
per-organization accounting identities (reads + writes = accesses, hit +
upgrade + miss = accesses, ...) that hold for *any* correct run.

A :class:`Divergence` names the organization, a category (``crash``,
``invariant``, ``value``, ``final-state``, ``stats``) and the first
offending operation where applicable.  The minimizer keys on the
``(kind, category)`` signature.

The Tardis backend gets its own differ
(:func:`diff_tardis_results`, categories ``tardis-value``,
``tardis-stale``, ``tardis-write``): its leases make some stale reads
*architecturally legal*, so instead of exact version equality it checks
the bounded-staleness contract — reads observe committed versions,
monotonically per core, never more than ``tardis_lease`` ops after the
superseding write; writes and final state must still match exactly.

Fault injection: :data:`FAULTS` maps names to test-only mutations of a
built system (a lost invalidation message, a dropped stash bit, a sharer
representation that violates its encoding contract).  They exist to prove
the harness *can* catch bugs — ``repro fuzz --inject-fault`` wires them
into every non-ideal system while the reference stays clean.

A second axis, :func:`run_engine_differential`, diffs *engines* instead
of organizations: the same program replays on the interpreter and on the
vector engine (:mod:`repro.sim.vector`) over the identical configuration,
and the two captures must agree bit-for-bit — including the complete
statistics tree, which the organization differ deliberately does not
compare.  :data:`ENGINE_FAULTS` corrupts the vector engine's derived
transition tables to prove this axis catches table-generation bugs.

A third axis, :func:`run_parallel_differential`, regroups the flat
program into per-core streams and runs the full timestamp-ordered
interleave end-to-end on the serial interpreter and on the run-length
batching engine (:mod:`repro.sim.parallel`) at several scan-worker
counts; the complete simulation results must match bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..common.config import (
    CacheConfig,
    DirectoryKind,
    NoCConfig,
    SharerFormat,
    SystemConfig,
)
from ..common.errors import ReproError, InvariantViolation
from ..common.mesi import CoherenceProtocol
from ..coherence.protocol import CoherentSystem
from ..coherence.tables import L1Tables, corrupt_l1_tables, l1_tables
from ..directory.sharers import CoarseVector, LimitedPointer
from ..sim.system import build_system
from ..sim.trace import FlatOp
from ..sim.vector import flat_machine, vector_supports

#: Organizations the fuzzer exercises by default: everything but the
#: reference itself.
DEFAULT_FUZZ_KINDS = tuple(
    kind for kind in DirectoryKind if kind is not DirectoryKind.IDEAL
)

#: Organizations the engine differential exercises: the flat engine's
#: supported kinds, *including* IDEAL (here the interpreter — not the
#: ideal directory — is the reference, so IDEAL is a real candidate).
ENGINE_KINDS = (DirectoryKind.SPARSE, DirectoryKind.IDEAL, DirectoryKind.STASH)


@dataclass(frozen=True)
class RunOptions:
    """One fuzz parameterization (everything but the program and kind).

    The geometry is deliberately tiny — two-set L1s, an eight-set LLC and
    a directory of ``entries`` tracking slots — so a few hundred ops
    generate the displacement, overflow and conflict pressure a realistic
    configuration would need millions for.
    """

    num_cores: int = 4
    sharer_format: SharerFormat = SharerFormat.FULL_BIT_VECTOR
    coarse_group: int = 4
    limited_pointers: int = 2
    protocol: CoherenceProtocol = CoherenceProtocol.MESI
    entries: int = 8
    check_every: int = 8
    clean_eviction_notification: bool = False
    discovery_filter_slots: int = 0
    tardis_lease: int = 16
    seed: int = 1

    def to_meta(self) -> Dict[str, object]:
        """JSON-serializable form (corpus headers)."""
        return {
            "num_cores": self.num_cores,
            "sharer_format": self.sharer_format.value,
            "coarse_group": self.coarse_group,
            "limited_pointers": self.limited_pointers,
            "protocol": self.protocol.value,
            "entries": self.entries,
            "check_every": self.check_every,
            "clean_eviction_notification": self.clean_eviction_notification,
            "discovery_filter_slots": self.discovery_filter_slots,
            "tardis_lease": self.tardis_lease,
            "seed": self.seed,
        }

    @classmethod
    def from_meta(cls, meta: Dict[str, object]) -> "RunOptions":
        """Inverse of :meth:`to_meta` (replay path)."""
        return cls(
            num_cores=int(meta["num_cores"]),
            sharer_format=SharerFormat(meta["sharer_format"]),
            coarse_group=int(meta["coarse_group"]),
            limited_pointers=int(meta["limited_pointers"]),
            protocol=CoherenceProtocol(meta["protocol"]),
            entries=int(meta["entries"]),
            check_every=int(meta["check_every"]),
            clean_eviction_notification=bool(
                meta.get("clean_eviction_notification", False)
            ),
            discovery_filter_slots=int(meta.get("discovery_filter_slots", 0)),
            tardis_lease=int(meta.get("tardis_lease", 16)),
            seed=int(meta.get("seed", 1)),
        )


def make_fuzz_config(kind: DirectoryKind, options: RunOptions) -> SystemConfig:
    """The tiny differential-fuzz system for one organization."""
    mesh_height = (options.num_cores + 1) // 2
    return SystemConfig(
        num_cores=options.num_cores,
        l1=CacheConfig(sets=2, ways=2),
        llc=CacheConfig(sets=8, ways=2),
        noc=NoCConfig(mesh_width=2, mesh_height=max(mesh_height, 2)),
        protocol=options.protocol,
        seed=options.seed,
    ).with_directory(
        kind=kind,
        entries_override=options.entries,
        ways=2,
        sharer_format=options.sharer_format,
        coarse_group=options.coarse_group,
        limited_pointers=options.limited_pointers,
        clean_eviction_notification=options.clean_eviction_notification,
        discovery_filter_slots=options.discovery_filter_slots,
        tardis_lease=options.tardis_lease,
    )


# -- fault injection --------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """A named, test-only mutation applied to a built system."""

    name: str
    description: str
    inject: Callable[[CoherentSystem], None]


class _ResurrectingLimitedPointer(LimitedPointer):
    """Buggy rep: remove() after overflow restores (false) precision."""

    def remove(self, core: int) -> None:
        if self.overflowed:
            self.overflowed = False  # forgets the unnamed sharers
            return
        if core in self.ids:
            self.ids.remove(core)

    def fresh(self) -> "_ResurrectingLimitedPointer":
        rep = _ResurrectingLimitedPointer.__new__(_ResurrectingLimitedPointer)
        rep.num_cores = self.num_cores
        rep.pointers = self.pointers
        rep.ids = []
        rep.overflowed = False
        return rep


class _UnclampedCoarseVector(CoarseVector):
    """Buggy rep: targets() names every group slot, existent or not."""

    def targets(self) -> List[int]:
        result: List[int] = []
        num_groups = (self.num_cores + self.group - 1) // self.group
        for g in range(num_groups):
            if self.mask & (1 << g):
                start = g * self.group
                result.extend(range(start, start + self.group))
        return result

    def fresh(self) -> "_UnclampedCoarseVector":
        rep = _UnclampedCoarseVector.__new__(_UnclampedCoarseVector)
        rep.num_cores = self.num_cores
        rep.group = self.group
        rep.mask = 0
        return rep


def _inject_drop_invalidation(system: CoherentSystem) -> None:
    # Core 1 stops acting on invalidation messages from the home: its
    # copy survives while the directory believes it is gone.
    system.home._l1_invalidate[1] = lambda addr: None


def _inject_stash_bit_lost(system: CoherentSystem) -> None:
    # The LLC forgets to record stashed entries, so discovery never runs
    # and hidden (possibly dirty) copies are simply lost.
    system.llc.set_stash_bit = lambda addr: None


def _swap_rep_template(system: CoherentSystem, cls, **params) -> None:
    directory = system.directory
    template = getattr(directory, "_rep_template", None)
    if template is None:
        return
    directory._rep_template = cls(system.config.num_cores, **params)


def _inject_pointer_resurrect(system: CoherentSystem) -> None:
    _swap_rep_template(
        system,
        _ResurrectingLimitedPointer,
        pointers=system.config.directory.limited_pointers,
    )


def _inject_coarse_unclamped(system: CoherentSystem) -> None:
    _swap_rep_template(
        system, _UnclampedCoarseVector, group=system.config.directory.coarse_group
    )


def _inject_ts_rollover(system: CoherentSystem) -> None:
    # Tardis timestamps stored in 6 bits without rollover handling: once
    # the op clock passes 63, the L1 lease comparison sees the wrapped
    # clock and expired leases look live forever — stale reads escape the
    # bounded-staleness window.  No-op on non-timestamp backends.
    home = system.home
    if hasattr(home, "ts_wrap_mask"):
        home.ts_wrap_mask = 63


#: Registry of injectable faults (``repro fuzz --inject-fault <name>``).
FAULTS: Dict[str, FaultSpec] = {
    spec.name: spec
    for spec in (
        FaultSpec(
            "drop-invalidation",
            "core 1 ignores home-initiated invalidations (lost message)",
            _inject_drop_invalidation,
        ),
        FaultSpec(
            "stash-bit-lost",
            "LLC drops set_stash_bit writes; stashed copies become unreachable",
            _inject_stash_bit_lost,
        ),
        FaultSpec(
            "pointer-resurrect",
            "LimitedPointer.remove() clears the overflow flag (forgets sharers)",
            _inject_pointer_resurrect,
        ),
        FaultSpec(
            "coarse-unclamped",
            "CoarseVector.targets() names nonexistent tail-group cores",
            _inject_coarse_unclamped,
        ),
        FaultSpec(
            "ts-rollover",
            "tardis timestamps wrap at 6 bits; expired leases look live again",
            _inject_ts_rollover,
        ),
    )
}


def _corrupt_e_write_cell(tables: L1Tables) -> L1Tables:
    # Cell 5 = (EXCLUSIVE, write): the silent E->M upgrade becomes a plain
    # read hit, so the vector run loses a version mint the interpreter
    # performs — the signature of a mis-generated table.
    return corrupt_l1_tables(tables, cell=5)


def _undo_log_fault(tables: L1Tables) -> L1Tables:
    # The tables stay clean: this fault lives inside the parallel engine's
    # speculation layer (the first deferred write surfaced from an undo
    # log downgrades to SHARED), so :func:`run_parallel_differential`
    # recognizes it by name and arms ``ParallelEngine._corrupt_flush``
    # on the speculative runs instead of corrupting the table copy.
    return tables


#: Engine-mode faults (``repro fuzz --engine --inject-fault <name>``).
#: Unlike :data:`FAULTS` these do not mutate a built system: ``inject``
#: maps the derived :class:`L1Tables` to a corrupted copy handed to the
#: vector side only, while the interpreter reference stays clean.
ENGINE_FAULTS: Dict[str, FaultSpec] = {
    spec.name: spec
    for spec in (
        FaultSpec(
            "table-corrupt",
            "flip the (EXCLUSIVE, write) cell of the derived L1 action table",
            _corrupt_e_write_cell,
        ),
        FaultSpec(
            "undo-corrupt",
            "corrupt the first deferred write the speculation layer"
            " surfaces from an undo log (parallel engine only)",
            _undo_log_fault,
        ),
    )
}


# -- execution --------------------------------------------------------------------


@dataclass
class ExecutionResult:
    """Everything one replay exposes for comparison."""

    kind: DirectoryKind
    versions: List[int] = field(default_factory=list)
    final_versions: Dict[int, int] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)
    error_category: Optional[str] = None
    error_detail: Optional[str] = None
    error_op: Optional[int] = None

    @property
    def ok(self) -> bool:
        """Did the replay complete without raising?"""
        return self.error_category is None


def execute_program(
    program: Sequence[FlatOp],
    config: SystemConfig,
    *,
    check_every: int = 8,
    fault: Optional[FaultSpec] = None,
) -> ExecutionResult:
    """Replay one flat program on a fresh system built from ``config``.

    Captures, per operation, the data version the issuing core's private
    cache holds immediately afterwards (the "observed value"), runs the
    invariant suite every ``check_every`` ops (0 disables the cadence;
    the final check always runs), and snapshots the committed-version map
    and flat statistics at the end.  Exceptions never escape: they are
    folded into the result as a ``crash`` or ``invariant`` record.
    """
    result = ExecutionResult(kind=config.directory.kind)
    index = -1
    try:
        system = build_system(config)
        if fault is not None:
            fault.inject(system)
        versions = result.versions
        access = system.access
        l1s = system.l1s
        for index, (core, block, is_write) in enumerate(program):
            access(core, block, is_write)
            held = l1s[core].probe(block, touch=False)
            versions.append(-1 if held is None else held.version)
            if check_every and (index + 1) % check_every == 0:
                system.check_invariants()
        system.check_invariants()
        result.final_versions = dict(system.home.latest_version)
        result.stats = system.flat_stats()
    except InvariantViolation as exc:
        result.error_category = "invariant"
        result.error_detail = str(exc)
        result.error_op = index
    except (ReproError, IndexError, KeyError, AssertionError) as exc:
        result.error_category = "crash"
        result.error_detail = f"{type(exc).__name__}: {exc}"
        result.error_op = index
    return result


# -- comparison -------------------------------------------------------------------


@dataclass(frozen=True)
class Divergence:
    """One confirmed disagreement between an organization and IDEAL."""

    kind: str
    category: str  # crash | invariant | value | final-state | stats
    detail: str
    op_index: Optional[int] = None

    @property
    def signature(self) -> tuple:
        """What the minimizer must preserve while shrinking."""
        return (self.kind, self.category)

    def __str__(self) -> str:
        where = "" if self.op_index is None else f" at op {self.op_index}"
        return f"[{self.kind}/{self.category}]{where}: {self.detail}"


def check_stat_sanity(result: ExecutionResult, num_ops: int) -> Optional[str]:
    """Accounting identities that hold for any correct replay.

    Returns a description of the first broken identity, or None.
    """
    stats = result.stats
    proto = {
        name.rsplit(".", 1)[1]: value
        for name, value in stats.items()
        if name.startswith("system.protocol.")
    }
    accesses = proto.get("accesses", 0)
    checks = [
        ("accesses == ops", accesses == num_ops),
        (
            "reads + writes == accesses",
            proto.get("reads", 0) + proto.get("writes", 0) == accesses,
        ),
        (
            "l1_hits + l2_hits + upgrade_misses + l1_misses == accesses",
            proto.get("l1_hits", 0)
            + proto.get("l2_hits", 0)
            + proto.get("upgrade_misses", 0)
            + proto.get("l1_misses", 0)
            == accesses,
        ),
        (
            "coverage_misses <= l1_misses",
            proto.get("coverage_misses", 0) <= proto.get("l1_misses", 0),
        ),
    ]
    for label, ok in checks:
        if not ok:
            return f"stat identity broken: {label} ({proto})"
    for name, value in stats.items():
        if value < 0:
            return f"negative counter {name} = {value}"
    return None


def diff_results(
    reference: ExecutionResult, candidate: ExecutionResult, num_ops: int
) -> Optional[Divergence]:
    """First divergence of ``candidate`` from the IDEAL ``reference``."""
    kind = candidate.kind.value
    if not candidate.ok:
        return Divergence(
            kind,
            candidate.error_category or "crash",
            candidate.error_detail or "unknown failure",
            candidate.error_op,
        )
    for index, (want, got) in enumerate(
        zip(reference.versions, candidate.versions)
    ):
        if want != got:
            return Divergence(
                kind,
                "value",
                f"observed version {got}, ideal observed {want}",
                index,
            )
    if candidate.final_versions != reference.final_versions:
        keys = set(reference.final_versions) | set(candidate.final_versions)
        diffs = [
            f"{addr:#x}: ideal={reference.final_versions.get(addr)} "
            f"got={candidate.final_versions.get(addr)}"
            for addr in sorted(keys)
            if reference.final_versions.get(addr)
            != candidate.final_versions.get(addr)
        ]
        return Divergence(
            kind, "final-state", "committed versions differ: " + "; ".join(diffs[:4])
        )
    broken = check_stat_sanity(candidate, num_ops)
    if broken is not None:
        return Divergence(kind, "stats", broken)
    return None


def diff_tardis_results(
    program: Sequence[FlatOp],
    reference: ExecutionResult,
    candidate: ExecutionResult,
    num_ops: int,
    *,
    lease: int,
) -> Optional[Divergence]:
    """First divergence of a Tardis replay from IDEAL, staleness-aware.

    Tardis deliberately serves *bounded-stale* reads: a leased S copy
    remains legally readable after a remote write supersedes it, until
    its lease expires.  The exact-version comparison of
    :func:`diff_results` would flag every such read, so this differ
    checks the precise architectural contract instead:

    * **Writes observe their own mint.**  Version minting is global and
      program order is shared, so the k-th write mints version k in both
      runs — any write disagreement is a real bug (``tardis-write``).
    * **Reads observe a committed version, never from the future.**  An
      observed version must appear in the block's write history (or be 0
      for a never-written block) and must not exceed the latest version
      at that op (``tardis-value``).
    * **Per-core reads are monotone.**  A core that observed version v
      of a block may never observe an older version of it later — grants
      always hand out the latest, so staleness can only age out, not
      regress (``tardis-value``).
    * **Staleness is bounded by the lease.**  A read at op ``i``
      observing a version superseded by the write at op ``j`` is legal
      iff ``i - j < lease``: the copy's lease was granted before op
      ``j`` (a grant hands out the then-latest version) and expires at
      most ``lease`` ticks after the grant, one tick per op
      (``tardis-stale``).
    * **Final state and statistics** match exactly, as for every other
      organization.
    """
    kind = candidate.kind.value
    if not candidate.ok:
        return Divergence(
            kind,
            candidate.error_category or "crash",
            candidate.error_detail or "unknown failure",
            candidate.error_op,
        )
    # Reconstruct each block's write history from the reference capture:
    # the reference observes its own mint on every write, so entry k of a
    # block's history is (k-th committed version, op index of that write).
    births: Dict[int, List[tuple]] = {}
    ref_versions = reference.versions
    for index, (_, block, is_write) in enumerate(program):
        if is_write:
            births.setdefault(block, []).append((ref_versions[index], index))
    last_observed: Dict[tuple, int] = {}
    for index, (core, block, is_write) in enumerate(program):
        want = ref_versions[index]
        got = candidate.versions[index]
        if is_write:
            if got != want:
                return Divergence(
                    kind,
                    "tardis-write",
                    f"write minted version {got}, ideal minted {want}",
                    index,
                )
        elif got != want:
            if got > want:
                return Divergence(
                    kind,
                    "tardis-value",
                    f"read observed future version {got}, latest is {want}",
                    index,
                )
            history = births.get(block, [])
            if got != 0 and got not in {version for version, _ in history}:
                return Divergence(
                    kind,
                    "tardis-value",
                    f"read observed version {got}, never committed for "
                    f"block {block:#x}",
                    index,
                )
            prev = last_observed.get((core, block))
            if prev is not None and got < prev:
                return Divergence(
                    kind,
                    "tardis-value",
                    f"read observed version {got} after already observing "
                    f"{prev} (non-monotone)",
                    index,
                )
            # The write that superseded the observed version (history is
            # version-sorted: minting is globally monotone).
            superseded_at = next(
                (birth for version, birth in history if version > got), None
            )
            if superseded_at is not None and index - superseded_at >= lease:
                return Divergence(
                    kind,
                    "tardis-stale",
                    f"read observed version {got}, superseded "
                    f"{index - superseded_at} ops earlier (lease {lease})",
                    index,
                )
        last_observed[(core, block)] = got
    if candidate.final_versions != reference.final_versions:
        keys = set(reference.final_versions) | set(candidate.final_versions)
        diffs = [
            f"{addr:#x}: ideal={reference.final_versions.get(addr)} "
            f"got={candidate.final_versions.get(addr)}"
            for addr in sorted(keys)
            if reference.final_versions.get(addr)
            != candidate.final_versions.get(addr)
        ]
        return Divergence(
            kind, "final-state", "committed versions differ: " + "; ".join(diffs[:4])
        )
    broken = check_stat_sanity(candidate, num_ops)
    if broken is not None:
        return Divergence(kind, "stats", broken)
    return None


def run_differential(
    program: Sequence[FlatOp],
    *,
    kinds: Sequence[DirectoryKind] = DEFAULT_FUZZ_KINDS,
    options: RunOptions = RunOptions(),
    fault: Optional[FaultSpec] = None,
    fault_kinds: Optional[Sequence[DirectoryKind]] = None,
) -> List[Divergence]:
    """Run every organization against IDEAL on one program.

    ``fault`` (when given) is injected into each non-ideal system whose
    kind is in ``fault_kinds`` (default: all of ``kinds``); the reference
    always runs clean.  Returns every divergence found — empty means all
    organizations agree with IDEAL and satisfy the stat identities.
    """
    reference = execute_program(
        program,
        make_fuzz_config(DirectoryKind.IDEAL, options),
        check_every=options.check_every,
    )
    if not reference.ok:
        return [
            Divergence(
                DirectoryKind.IDEAL.value,
                reference.error_category or "crash",
                f"IDEAL reference failed: {reference.error_detail}",
                reference.error_op,
            )
        ]
    broken = check_stat_sanity(reference, len(program))
    if broken is not None:
        return [Divergence(DirectoryKind.IDEAL.value, "stats", broken)]
    divergences: List[Divergence] = []
    for kind in kinds:
        if kind is DirectoryKind.IDEAL:
            continue
        this_fault = fault
        if fault is not None and fault_kinds is not None and kind not in fault_kinds:
            this_fault = None
        candidate = execute_program(
            program,
            make_fuzz_config(kind, options),
            check_every=options.check_every,
            fault=this_fault,
        )
        if kind is DirectoryKind.TARDIS:
            # Exact-version comparison would flag every legally stale
            # read; check the bounded-staleness contract instead.
            divergence = diff_tardis_results(
                program,
                reference,
                candidate,
                len(program),
                lease=options.tardis_lease,
            )
        else:
            divergence = diff_results(reference, candidate, len(program))
        if divergence is not None:
            divergences.append(divergence)
    return divergences


# -- engine differential: interpreter vs vector engine ----------------------------


def execute_program_vector(
    program: Sequence[FlatOp],
    config: SystemConfig,
    *,
    tables: Optional[L1Tables] = None,
) -> ExecutionResult:
    """Replay one flat program op-by-op on the vector engine's flat machine.

    The capture mirrors :func:`execute_program` exactly — per-op held
    version, committed-version map, flattened statistics — so the two
    results can be compared field-for-field.  ``tables`` substitutes the
    derived transition tables (fault injection); the flat machine has no
    invariant walker, so only crashes and the captured state can diverge.
    """
    result = ExecutionResult(kind=config.directory.kind)
    index = -1
    try:
        machine = flat_machine(config, tables=tables)
        versions = result.versions
        access = machine.access
        held = machine.held_version
        for index, (core, block, is_write) in enumerate(program):
            access(core, block, 1 if is_write else 0)
            versions.append(held(core, block))
        result.final_versions = dict(machine.latest_version)
        result.stats = machine.flat_stats()
    except (ReproError, IndexError, KeyError, AssertionError) as exc:
        result.error_category = "crash"
        result.error_detail = f"{type(exc).__name__}: {exc}"
        result.error_op = index
    return result


def diff_engine_results(
    reference: ExecutionResult, candidate: ExecutionResult, num_ops: int
) -> Optional[Divergence]:
    """First disagreement between an interpreter and a vector replay.

    Unlike :func:`diff_results` (which tolerates latency and traffic
    differences between *organizations*), the two engines model the same
    organization and must agree **bit-for-bit**: observed versions, the
    committed-version map, and the complete statistics tree.  Categories
    are prefixed ``engine-`` so failure corpus signatures stay disjoint
    from organization-vs-IDEAL ones.
    """
    kind = reference.kind.value
    if not reference.ok:
        return Divergence(
            kind,
            "engine-crash",
            f"interpreter reference failed: {reference.error_detail}",
            reference.error_op,
        )
    if not candidate.ok:
        return Divergence(
            kind,
            "engine-crash",
            candidate.error_detail or "unknown failure",
            candidate.error_op,
        )
    for index, (want, got) in enumerate(
        zip(reference.versions, candidate.versions)
    ):
        if want != got:
            return Divergence(
                kind,
                "engine-value",
                f"vector observed version {got}, interpreter observed {want}",
                index,
            )
    if candidate.final_versions != reference.final_versions:
        keys = set(reference.final_versions) | set(candidate.final_versions)
        diffs = [
            f"{addr:#x}: interp={reference.final_versions.get(addr)} "
            f"vector={candidate.final_versions.get(addr)}"
            for addr in sorted(keys)
            if reference.final_versions.get(addr)
            != candidate.final_versions.get(addr)
        ]
        return Divergence(
            kind,
            "engine-final-state",
            "committed versions differ: " + "; ".join(diffs[:4]),
        )
    if candidate.stats != reference.stats:
        keys = set(reference.stats) | set(candidate.stats)
        diffs = [
            f"{name}: interp={reference.stats.get(name)} "
            f"vector={candidate.stats.get(name)}"
            for name in sorted(keys)
            if reference.stats.get(name) != candidate.stats.get(name)
        ]
        return Divergence(
            kind, "engine-stats", "stat trees differ: " + "; ".join(diffs[:4])
        )
    broken = check_stat_sanity(candidate, num_ops)
    if broken is not None:
        return Divergence(kind, "engine-stats", broken)
    return None


def run_parallel_differential(
    program: Sequence[FlatOp],
    *,
    kinds: Sequence[DirectoryKind] = ENGINE_KINDS,
    options: RunOptions = RunOptions(),
    fault: Optional[FaultSpec] = None,
    workers: Sequence[int] = (0, 2),
    epoch_ops: int = 96,
    speculate: Sequence[bool] = (False, True),
    spec_min: int = 4,
) -> List[Divergence]:
    """Run the parallel engine against the interpreter on one program.

    Where :func:`run_engine_differential` replays the *global* flat order
    op by op, this axis exercises the full timestamp-ordered interleave:
    the program's ops are regrouped into per-core streams (per-core order
    preserved) and the whole trace runs end-to-end on the serial
    interpreter and on :class:`repro.sim.parallel.ParallelEngine` — once
    per ``workers`` × ``speculate`` combination — over the same
    configuration.  The complete
    :class:`~repro.sim.results.SimulationResult` must agree bit-for-bit:
    per-core cycles, the flattened statistics tree and the
    effective-tracking samples.  ``epoch_ops`` is deliberately tiny so a
    few hundred ops cross many scan windows (stale-snapshot revalidation,
    window refills and warp commits all fire), and the speculative runs
    drop the chunk threshold to ``spec_min`` so short adversarial
    programs still build, flush, validate and squash undo logs.
    ``fault`` (from :data:`ENGINE_FAULTS`) corrupts the tables handed to
    the parallel side only — except ``undo-corrupt``, which instead arms
    the speculation layer's undo-log corruption hook on the speculative
    runs.  Categories are prefixed ``parallel-``.
    """
    from ..common.addr import log2_exact
    from ..sim.parallel import ParallelEngine
    from ..sim.simulator import run_trace
    from ..sim.trace import PackedTrace, Trace

    undo_fault = fault is not None and fault.name == "undo-corrupt"
    divergences: List[Divergence] = []
    for kind in kinds:
        config = make_fuzz_config(kind, options)
        if vector_supports(config) is not None:
            continue
        shift = log2_exact(config.block_bytes)
        trace = Trace(config.num_cores)
        for core, block, is_write in program:
            trace.append(core, block << shift, is_write)
        packed = PackedTrace.from_trace(trace)
        reference = run_trace(config, trace, engine="interp")
        ref_stats = sorted(reference.stats.items())
        tables = None
        if fault is not None and not undo_fault:
            tables = fault.inject(l1_tables(config.protocol))
        combos = [(c, s) for c in workers for s in speculate]
        for count, spec in combos:
            label = (
                f"{kind.value} (workers={count},"
                f" speculate={'on' if spec else 'off'})"
            )
            try:
                engine = ParallelEngine(
                    config,
                    tables=tables,
                    epoch_ops=epoch_ops,
                    workers=count,
                    speculate=spec,
                    spec_min=spec_min if spec else None,
                )
                if undo_fault and spec:
                    engine._corrupt_flush = True
                candidate = engine.run(packed)
            except (ReproError, IndexError, KeyError, AssertionError) as exc:
                divergences.append(
                    Divergence(
                        kind.value,
                        "parallel-crash",
                        f"{label}: {type(exc).__name__}: {exc}",
                    )
                )
                continue
            if candidate.cycles_per_core != reference.cycles_per_core:
                diffs = [
                    f"core {c}: interp={want} parallel={got}"
                    for c, (want, got) in enumerate(
                        zip(reference.cycles_per_core, candidate.cycles_per_core)
                    )
                    if want != got
                ]
                divergences.append(
                    Divergence(
                        kind.value,
                        "parallel-cycles",
                        f"{label}: per-core cycles differ: " + "; ".join(diffs[:4]),
                    )
                )
            elif sorted(candidate.stats.items()) != ref_stats:
                keys = set(reference.stats) | set(candidate.stats)
                diffs = [
                    f"{name}: interp={reference.stats.get(name)} "
                    f"parallel={candidate.stats.get(name)}"
                    for name in sorted(keys)
                    if reference.stats.get(name) != candidate.stats.get(name)
                ]
                divergences.append(
                    Divergence(
                        kind.value,
                        "parallel-stats",
                        f"{label}: stat trees differ: " + "; ".join(diffs[:4]),
                    )
                )
            elif (
                candidate.effective_tracking_samples
                != reference.effective_tracking_samples
            ):
                divergences.append(
                    Divergence(
                        kind.value,
                        "parallel-samples",
                        f"{label}: effective-tracking sample series differ",
                    )
                )
    return divergences


def run_engine_differential(
    program: Sequence[FlatOp],
    *,
    kinds: Sequence[DirectoryKind] = ENGINE_KINDS,
    options: RunOptions = RunOptions(),
    fault: Optional[FaultSpec] = None,
) -> List[Divergence]:
    """Run the vector engine against the interpreter on one program.

    For every kind in ``kinds`` the flat engine supports (the rest are
    skipped — they have no flat view to compare), the identical global
    operation order replays on both engines over the same tiny fuzz
    configuration and the captures must match bit-for-bit.  ``fault``
    (from :data:`ENGINE_FAULTS`) corrupts the transition tables handed to
    the vector side only.  Empty result = the engines agree everywhere.
    """
    divergences: List[Divergence] = []
    for kind in kinds:
        config = make_fuzz_config(kind, options)
        if vector_supports(config) is not None:
            continue
        reference = execute_program(
            program, config, check_every=options.check_every
        )
        tables = None
        if fault is not None:
            tables = fault.inject(l1_tables(config.protocol))
        candidate = execute_program_vector(program, config, tables=tables)
        divergence = diff_engine_results(reference, candidate, len(program))
        if divergence is not None:
            divergences.append(divergence)
    return divergences
