"""Adversarial flat-program generator for the differential fuzzer.

A *flat program* is a globally-ordered list of ``(core, block, is_write)``
operations (:data:`repro.sim.trace.FlatOp`).  Unlike the per-core traces
of :mod:`repro.workloads`, the global order is part of the input: every
organization under test replays exactly this interleaving, so a divergence
can only come from the directory organization itself.

Each profile biases the stream toward one class of historical directory
bug:

* ``eviction_storm`` — footprint far beyond the directory's entry count,
  with tight reuse, so entries are displaced (invalidated or stashed)
  constantly.
* ``stash_race`` — per-core private blocks that go quiet (prime stash
  candidates) punctuated by cross-core touches that must *discover* the
  hidden copy, with streaming filler to keep displacing the entries.
* ``pointer_overflow`` — more readers than a limited-pointer entry can
  name, then a write that must reach every copy through the overflowed
  (broadcast) representation, then partial re-sharing.
* ``group_alias`` — read/write traffic arranged across coarse-vector
  group boundaries so spurious group-mates and the tail group (when
  ``num_cores`` is not a multiple of the group size) are exercised.
* ``set_conflict`` — every block aliases to the same cache/directory set
  (stride :data:`SET_CONFLICT_STRIDE`), piling conflicts into one set.
* ``mixed`` — interleaved slices of all of the above.

Generation is deterministic: the same ``(profile, num_cores, ops, rng
seed)`` always yields the identical program.
"""

from __future__ import annotations

from typing import List

from ..common.errors import ConfigError
from ..common.rng import DeterministicRng
from ..sim.trace import FlatOp

#: Generator profiles, in the order the fuzz driver cycles through them.
PROFILES = (
    "eviction_storm",
    "stash_race",
    "pointer_overflow",
    "group_alias",
    "set_conflict",
    "mixed",
)

#: Stride that keeps every generated block in one set of every structure
#: the fuzz configs build (L1/LLC/directory set counts all divide it).
SET_CONFLICT_STRIDE = 1 << 10


def generate_program(
    profile: str,
    num_cores: int,
    ops: int,
    rng: DeterministicRng,
    *,
    footprint: int = 48,
) -> List[FlatOp]:
    """Generate one adversarial flat program.

    ``footprint`` bounds the distinct blocks the dense profiles touch; the
    fuzz configs keep directory capacity well below it so displacement is
    constant.  Raises :class:`~repro.common.errors.ConfigError` for an
    unknown profile.
    """
    if profile not in PROFILES:
        raise ConfigError(
            f"unknown fuzz profile {profile!r}; known: {', '.join(PROFILES)}"
        )
    if num_cores < 1:
        raise ConfigError("fuzz programs need at least one core")
    if ops < 0:
        raise ConfigError("fuzz programs need a non-negative op count")
    builder = _BUILDERS[profile]
    program = builder(num_cores, ops, rng, footprint)
    return program[:ops]


# -- profile builders -------------------------------------------------------------


def _eviction_storm(
    num_cores: int, ops: int, rng: DeterministicRng, footprint: int
) -> List[FlatOp]:
    program: List[FlatOp] = []
    hot = footprint // 4 or 1
    while len(program) < ops:
        if rng.random() < 0.25:
            # A streaming burst by one core: marches the whole footprint
            # through, displacing every tracked entry behind it.
            core = rng.randint(0, num_cores - 1)
            start = rng.randint(0, footprint - 1)
            for step in range(min(footprint, ops - len(program))):
                program.append((core, (start + step) % footprint, False))
        else:
            # Tight reuse over a hot subset keeps copies alive in L1s so
            # displacement actually has victims to invalidate or stash.
            core = rng.randint(0, num_cores - 1)
            block = rng.randint(0, hot - 1)
            program.append((core, block, rng.random() < 0.3))
    return program


def _stash_race(
    num_cores: int, ops: int, rng: DeterministicRng, footprint: int
) -> List[FlatOp]:
    program: List[FlatOp] = []
    # One private block per core, disjoint from the shared filler range.
    private = [footprint + core for core in range(num_cores)]
    filler_at = 0
    while len(program) < ops:
        draw = rng.random()
        if draw < 0.35:
            # Prime a private block (single holder, often dirty): the
            # exact entry a stash directory will drop silently.
            core = rng.randint(0, num_cores - 1)
            program.append((core, private[core], rng.random() < 0.5))
        elif draw < 0.55:
            # Cross-core touch of someone else's private block: if the
            # entry was stashed, this must run discovery and recover the
            # hidden (possibly dirty) copy.
            core = rng.randint(0, num_cores - 1)
            victim = rng.randint(0, num_cores - 1)
            program.append((core, private[victim], rng.random() < 0.4))
        else:
            # Streaming filler evicts directory entries between the prime
            # and the probe, maximizing the stash/discovery window.
            core = rng.randint(0, num_cores - 1)
            program.append((core, filler_at % footprint, False))
            filler_at += 1
    return program


def _pointer_overflow(
    num_cores: int, ops: int, rng: DeterministicRng, footprint: int
) -> List[FlatOp]:
    program: List[FlatOp] = []
    shared = [0, 1, 2, 3]
    while len(program) < ops:
        block = rng.choice(shared)
        # Reader wave: more distinct sharers than any realistic pointer
        # budget, driving the entry into its overflow encoding.
        order = list(range(num_cores))
        rng.shuffle(order)
        for core in order:
            program.append((core, block, False))
        # The write must now reach every copy via broadcast.
        program.append((rng.randint(0, num_cores - 1), block, True))
        # Partial re-share: the remove-after-overflow edge.
        for _ in range(rng.randint(1, num_cores)):
            program.append((rng.randint(0, num_cores - 1), block, False))
        if rng.random() < 0.3:
            # Displacement pressure so overflowed entries also get evicted.
            program.append((rng.randint(0, num_cores - 1),
                            8 + rng.randint(0, footprint - 1), False))
    return program


def _group_alias(
    num_cores: int, ops: int, rng: DeterministicRng, footprint: int
) -> List[FlatOp]:
    program: List[FlatOp] = []
    while len(program) < ops:
        block = rng.randint(0, 7)
        # Sharers clustered low so coarse group bits alias several cores,
        # including (for non-multiple core counts) the short tail group.
        readers = [rng.randint(0, num_cores - 1) for _ in range(3)]
        readers.append(num_cores - 1)  # always light up the tail group
        for core in readers:
            program.append((core, block, False))
        # Writer from wherever: invalidation fans out group-by-group and
        # must never name a core that does not exist.
        program.append((rng.randint(0, num_cores - 1), block, True))
        if rng.random() < 0.4:
            program.append((rng.randint(0, num_cores - 1),
                            8 + rng.randint(0, footprint - 1), False))
    return program


def _set_conflict(
    num_cores: int, ops: int, rng: DeterministicRng, footprint: int
) -> List[FlatOp]:
    program: List[FlatOp] = []
    ways = 8  # enough colliding blocks to overflow any fuzz-config set
    while len(program) < ops:
        core = rng.randint(0, num_cores - 1)
        block = rng.randint(0, ways - 1) * SET_CONFLICT_STRIDE
        program.append((core, block, rng.random() < 0.35))
    return program


def _mixed(
    num_cores: int, ops: int, rng: DeterministicRng, footprint: int
) -> List[FlatOp]:
    program: List[FlatOp] = []
    parts = [b for name, b in _BUILDERS.items() if name != "mixed"]
    while len(program) < ops:
        builder = rng.choice(parts)
        slice_ops = min(rng.randint(10, 40), ops - len(program))
        program.extend(builder(num_cores, slice_ops, rng, footprint))
    return program


_BUILDERS = {
    "eviction_storm": _eviction_storm,
    "stash_race": _stash_race,
    "pointer_overflow": _pointer_overflow,
    "group_alias": _group_alias,
    "set_conflict": _set_conflict,
    "mixed": _mixed,
}
