"""Delta-debugging trace minimizer.

Given a failing flat program and a predicate that re-runs the differential
check, shrink the program while preserving the failure *signature* (the
``(kind, category)`` pair of the original divergence).  Three passes, each
cheap and deterministic:

1. **Drop-op halving (ddmin)** — remove progressively smaller chunks of
   the program, doubling granularity when no chunk can be dropped.
2. **Per-core reduction** — try dropping every operation issued by one
   core at a time (a failure rarely needs all cores).
3. **Per-address reduction** — likewise for each distinct block.

A final single-op sweep catches stragglers the coarser passes left
behind.  The predicate is invoked at most ``max_checks`` times; each
invocation replays two tiny systems, so the whole minimization stays in
the seconds range even for multi-thousand-op programs.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..sim.trace import FlatOp

#: Failure predicate: True when the candidate program still fails with
#: the original signature.
Predicate = Callable[[List[FlatOp]], bool]


class _Budget:
    """Mutable check counter shared across passes."""

    __slots__ = ("left",)

    def __init__(self, max_checks: int) -> None:
        self.left = max_checks

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def _ddmin(program: List[FlatOp], fails: Predicate, budget: _Budget) -> List[FlatOp]:
    chunks = 2
    while len(program) >= 2:
        chunk_len = max(1, len(program) // chunks)
        shrunk = False
        start = 0
        while start < len(program):
            candidate = program[:start] + program[start + chunk_len:]
            if not candidate or not budget.spend():
                start += chunk_len
                continue
            if fails(candidate):
                program = candidate
                chunks = max(2, chunks - 1)
                shrunk = True
                # Re-test from the same offset: the next chunk slid left.
            else:
                start += chunk_len
        if not shrunk:
            if chunk_len == 1:
                break
            chunks = min(len(program), chunks * 2)
        if budget.left <= 0:
            break
    return program


def _drop_group(
    program: List[FlatOp],
    fails: Predicate,
    budget: _Budget,
    key: Callable[[FlatOp], int],
) -> List[FlatOp]:
    for value in sorted({key(op) for op in program}):
        candidate = [op for op in program if key(op) != value]
        if not candidate or candidate == program or not budget.spend():
            continue
        if fails(candidate):
            program = candidate
    return program


def _single_op_sweep(
    program: List[FlatOp], fails: Predicate, budget: _Budget
) -> List[FlatOp]:
    index = 0
    while index < len(program) and len(program) > 1:
        candidate = program[:index] + program[index + 1:]
        if not budget.spend():
            break
        if fails(candidate):
            program = candidate
        else:
            index += 1
    return program


def minimize(
    program: Sequence[FlatOp],
    fails: Predicate,
    *,
    max_checks: int = 2000,
) -> List[FlatOp]:
    """Shrink ``program`` to a (locally) 1-minimal failing core.

    ``fails`` must return True for the input program; if it does not (a
    flaky failure), the input is returned unchanged.  The result is the
    smallest program found within ``max_checks`` predicate evaluations —
    every remaining op is necessary, in the sense that dropping any single
    one makes the failure disappear (when the budget sufficed to prove it).
    """
    program = list(program)
    budget = _Budget(max_checks)
    if not budget.spend() or not fails(program):
        return program
    program = _ddmin(program, fails, budget)
    program = _drop_group(program, fails, budget, key=lambda op: op[0])  # core
    program = _drop_group(program, fails, budget, key=lambda op: op[1])  # block
    program = _single_op_sweep(program, fails, budget)
    return program
