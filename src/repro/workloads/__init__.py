"""Synthetic workload generation: primitives, patterns, the named suite,
and the content-addressed trace store that materializes each workload
exactly once per sweep (:mod:`repro.workloads.store`)."""

from .algorithms import (
    graph_clustering,
    prime_sieve,
    tiled_matmul,
    union_find,
)
from .characterize import TraceProfile, histogram_buckets, profile_trace
from .store import TraceStore, get_packed_trace, trace_key
from .patterns import (
    false_sharing,
    lock_contention,
    migratory,
    phased,
    private_working_set,
    producer_consumer,
    shared_read_only,
    streaming,
    uniform_mix,
)
from .suite import (
    ALGORITHM_WORKLOADS,
    EXTRA_WORKLOADS,
    SUITE,
    SUITE_ORDER,
    WorkloadSpec,
    build_workload,
    workload_names,
)
from .synthetic import (
    BlockStream,
    PhasedStream,
    SequentialStream,
    UniformStream,
    ZipfStream,
)

__all__ = [
    "ALGORITHM_WORKLOADS",
    "BlockStream",
    "PhasedStream",
    "SequentialStream",
    "SUITE",
    "SUITE_ORDER",
    "TraceProfile",
    "TraceStore",
    "UniformStream",
    "WorkloadSpec",
    "ZipfStream",
    "EXTRA_WORKLOADS",
    "build_workload",
    "false_sharing",
    "get_packed_trace",
    "graph_clustering",
    "lock_contention",
    "histogram_buckets",
    "migratory",
    "phased",
    "prime_sieve",
    "private_working_set",
    "producer_consumer",
    "profile_trace",
    "shared_read_only",
    "streaming",
    "tiled_matmul",
    "trace_key",
    "uniform_mix",
    "union_find",
    "workload_names",
]
