"""Algorithm-derived trace generators.

Where :mod:`repro.workloads.patterns` provides canonical sharing *shapes*,
these generators model the memory behaviour of four concrete parallel
algorithms (ROADMAP item 3): louvain-style graph clustering, tiled dense
matrix multiply, a segmented prime sieve, and union-find image
segmentation.  Each emits the directory-relevant footprint of the real
algorithm — region roles, read/write mix, migration and phase structure —
while staying deterministic under ``(seed, num_cores, ops_per_core)`` like
every other generator.

Address-space layout reuses the pattern conventions: per-core private
regions from :func:`~repro.workloads.patterns._private_base`, shared
regions from :func:`~repro.workloads.patterns._shared_base`, block
addresses via the validated ``block_bytes`` shift.
"""

from __future__ import annotations

from ..common.addr import stride_hash
from ..common.errors import ConfigError
from ..common.rng import DeterministicRng
from ..sim.trace import Trace
from .patterns import _block_shift, _private_base, _shared_base
from .synthetic import SequentialStream, ZipfStream


def _check_frac(name: str, value: float) -> None:
    if not 0 <= value <= 1:
        raise ConfigError(f"{name} must be in [0, 1]")


def graph_clustering(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    frontier_blocks: int = 512,
    label_blocks: int = 192,
    private_blocks: int = 128,
    frontier_frac: float = 0.45,
    label_frac: float = 0.2,
    block_bytes: int = 64,
) -> Trace:
    """Louvain-style graph clustering (modularity optimization).

    Three region roles:

    * **frontier** — the adjacency/frontier structure every worker scans
      while evaluating candidate moves.  Read-mostly and widely shared
      (never stash-eligible, zero invalidation traffic).
    * **community labels** — the per-community label/weight words a move
      commits to.  Each touch is a read-modify-write pair, so label blocks
      migrate core to core exactly like lock-free reduction variables.
    * **private accumulators** — each worker's own delta-modularity
      scratch, written about half the time.

    The blend of a large read-shared region with a migratory hot set is
    what distinguishes clustering from the pure patterns.
    """
    _check_frac("frontier_frac", frontier_frac)
    _check_frac("label_frac", label_frac)
    if frontier_frac + label_frac > 1:
        raise ConfigError("frontier_frac + label_frac must be <= 1")
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    frontier_base = _shared_base(num_cores, region=0)
    label_base = _shared_base(num_cores, region=1)
    for core in range(num_cores):
        crng = rng.spawn(core)
        frontier = ZipfStream(frontier_blocks, crng, 0.7)
        labels = ZipfStream(label_blocks, crng.spawn(1), 0.6)
        private = ZipfStream(private_blocks, crng.spawn(2), 0.6)
        base = _private_base(core)
        emitted = 0
        while emitted < ops_per_core:
            draw = crng.random()
            if draw < frontier_frac:
                # Neighbour-list scan: pure reads of the shared graph.
                addr = (frontier_base + frontier.next()) << shift
                trace.append(core, addr, False)
                emitted += 1
            elif draw < frontier_frac + label_frac:
                # Commit a move: read the community label, write it back.
                addr = (label_base + labels.next()) << shift
                trace.append(core, addr, False)
                emitted += 1
                if emitted < ops_per_core:
                    trace.append(core, addr, True)
                    emitted += 1
            else:
                addr = (base + private.next()) << shift
                trace.append(core, addr, crng.random() < 0.5)
                emitted += 1
    return trace


def tiled_matmul(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    tile_blocks: int = 32,
    panel_blocks: int = 256,
    phase_len: int = 48,
    panel_frac: float = 0.35,
    block_bytes: int = 64,
) -> Trace:
    """Tiled dense matrix multiply with a systolic tile rotation.

    Each phase, core ``k`` produces its output tile (sequential writes to
    its own shared tile region) while consuming the tile core ``k-1``
    produced last phase (sequential reads) and streaming a read-shared
    input panel.  A phase barrier — one shared line every core
    read-modify-writes at the boundary — separates phases, so tile regions
    flip producer/consumer roles in lockstep: classic neighbour handoff
    with bulk-synchronous structure.
    """
    _check_frac("panel_frac", panel_frac)
    if phase_len < 2:
        raise ConfigError("phase_len must be >= 2")
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    panel_base = _shared_base(num_cores, region=0)
    barrier_addr = _shared_base(num_cores, region=1) << shift
    # One tile region per core, after the panel/barrier regions.
    tile_base = [
        _shared_base(num_cores, region=2 + core) for core in range(num_cores)
    ]
    for core in range(num_cores):
        crng = rng.spawn(core)
        panel = ZipfStream(panel_blocks, crng, 0.5)
        produce = SequentialStream(tile_blocks)
        consume = SequentialStream(tile_blocks)
        own = tile_base[core]
        neighbour = tile_base[(core - 1) % num_cores]
        emitted = 0
        while emitted < ops_per_core:
            budget = min(phase_len, ops_per_core - emitted)
            # Compute phase: interleave panel reads, consume reads of the
            # neighbour's last tile, produce writes of our own tile.
            for pos in range(budget - 2 if budget > 2 else budget):
                draw = crng.random()
                if draw < panel_frac:
                    addr = (panel_base + panel.next()) << shift
                    trace.append(core, addr, False)
                elif draw < panel_frac + (1 - panel_frac) / 2:
                    addr = (neighbour + consume.next()) << shift
                    trace.append(core, addr, False)
                else:
                    addr = (own + produce.next()) << shift
                    trace.append(core, addr, True)
                emitted += 1
            # Barrier: read the counter, then write the arrival.
            if budget > 2:
                trace.append(core, barrier_addr, False)
                trace.append(core, barrier_addr, True)
                emitted += 2
    return trace


def prime_sieve(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    bitmap_blocks: int = 2048,
    base_prime_blocks: int = 32,
    read_frac: float = 0.15,
    block_bytes: int = 64,
) -> Trace:
    """Segmented sieve of Eratosthenes over a shared bitmap.

    Core ``k`` crosses off multiples of the ``k``-th odd prime: strided
    writes that sweep the shared composite bitmap.  Between write bursts
    every core re-reads the (read-only) base-prime table.  The bitmap is
    write-dominated and striped across cores — high write fraction with
    wide, low-reuse sharing, the opposite corner of the design space from
    read-mostly frontiers.
    """
    _check_frac("read_frac", read_frac)
    if bitmap_blocks < 2:
        raise ConfigError("bitmap_blocks must be >= 2")
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    bitmap_base = _shared_base(num_cores, region=0)
    table_base = _shared_base(num_cores, region=1)
    primes = _odd_primes(num_cores)
    for core in range(num_cores):
        crng = rng.spawn(core)
        table = SequentialStream(base_prime_blocks)
        stride = primes[core]
        # Start each core's sweep at its prime (the first composite it
        # owns), like the real segmented sieve.
        pos = stride % bitmap_blocks
        for _ in range(ops_per_core):
            if crng.random() < read_frac:
                addr = (table_base + table.next()) << shift
                trace.append(core, addr, False)
            else:
                addr = (bitmap_base + pos) << shift
                trace.append(core, addr, True)
                pos = (pos + stride) % bitmap_blocks
    return trace


def union_find(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    node_blocks: int = 1024,
    root_blocks: int = 24,
    max_depth: int = 6,
    compress_frac: float = 0.4,
    private_frac: float = 0.3,
    block_bytes: int = 64,
) -> Trace:
    """Union-find image segmentation with path compression.

    Each find operation walks a parent-pointer chain through the shared
    node array (dependent reads — pointer chasing), lands on a root drawn
    from a small hot set, and unions into it with a read-modify-write.
    With probability ``compress_frac`` the walk is compressed: every
    visited node is rewritten to point at the root.  Roots are migratory
    (each union moves ownership); interior nodes are read-shared until a
    compression rewrites them; per-core pixel scratch stays private.
    """
    _check_frac("compress_frac", compress_frac)
    _check_frac("private_frac", private_frac)
    if max_depth < 1:
        raise ConfigError("max_depth must be >= 1")
    if node_blocks < max_depth:
        raise ConfigError("node_blocks must be >= max_depth")
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    node_base = _shared_base(num_cores, region=0)
    root_base = _shared_base(num_cores, region=1)
    for core in range(num_cores):
        crng = rng.spawn(core)
        leaves = ZipfStream(node_blocks, crng, 0.4)
        roots = ZipfStream(root_blocks, crng.spawn(1), 0.7)
        private = ZipfStream(128, crng.spawn(2), 0.6)
        base = _private_base(core)
        emitted = 0
        while emitted < ops_per_core:
            if crng.random() < private_frac:
                addr = (base + private.next()) << shift
                trace.append(core, addr, crng.random() < 0.3)
                emitted += 1
                continue
            # Find: chase parent pointers from a leaf.  The chain is a
            # deterministic function of the node (hash step), so distinct
            # cores racing on the same component walk the same blocks.
            depth = crng.randint(1, max_depth)
            node = leaves.next()
            path = []
            budget = ops_per_core - emitted
            for _ in range(min(depth, budget)):
                path.append(node)
                trace.append(core, (node_base + node) << shift, False)
                emitted += 1
                node = stride_hash(node, 0x5EED) % node_blocks
            # Union at the root: read it, write the merged rank/parent.
            root = roots.next()
            root_addr = (root_base + root) << shift
            for is_write in (False, True):
                if emitted >= ops_per_core:
                    break
                trace.append(core, root_addr, is_write)
                emitted += 1
            # Path compression: rewrite the walked nodes to the root.
            if crng.random() < compress_frac:
                for node in path:
                    if emitted >= ops_per_core:
                        break
                    trace.append(core, (node_base + node) << shift, True)
                    emitted += 1
    return trace


def _odd_primes(count: int) -> list:
    """The first ``count`` odd primes (sieve strides, one per core)."""
    primes = []
    candidate = 3
    while len(primes) < count:
        if all(candidate % p for p in primes):
            primes.append(candidate)
        candidate += 2
    return primes
