"""Trace characterization — the F1 motivation numbers.

The paper motivates stashing with one observation: *most directory entries
track private blocks*.  These functions measure that property of a trace:
the fraction of blocks touched by exactly one core, the sharing-degree
histogram, and the write fraction, per workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..common.addr import log2_exact
from ..sim.trace import Trace


@dataclass
class TraceProfile:
    """Static sharing profile of one trace."""

    name: str
    total_ops: int
    unique_blocks: int
    private_blocks: int          # touched by exactly one core
    sharing_histogram: Dict[int, int]  # sharers -> block count
    write_fraction: float
    private_access_fraction: float     # ops landing on private blocks

    @property
    def private_block_fraction(self) -> float:
        """Fraction of blocks that only one core ever touches."""
        if self.unique_blocks == 0:
            return 0.0
        return self.private_blocks / self.unique_blocks

    def degree_fraction(self, degree: int) -> float:
        """Fraction of blocks with exactly ``degree`` sharers."""
        if self.unique_blocks == 0:
            return 0.0
        return self.sharing_histogram.get(degree, 0) / self.unique_blocks


def profile_trace(trace: Trace, block_bytes: int, name: str = "") -> TraceProfile:
    """Compute the sharing profile of a trace."""
    shift = log2_exact(block_bytes)
    touchers: Dict[int, set] = {}
    access_count: Dict[int, int] = {}
    writes = 0
    total = 0
    for core, ops in enumerate(trace.ops):
        for addr, is_write in ops:
            block = addr >> shift
            touchers.setdefault(block, set()).add(core)
            access_count[block] = access_count.get(block, 0) + 1
            writes += is_write
            total += 1

    histogram: Dict[int, int] = {}
    private_blocks = 0
    private_accesses = 0
    for block, cores in touchers.items():
        degree = len(cores)
        histogram[degree] = histogram.get(degree, 0) + 1
        if degree == 1:
            private_blocks += 1
            private_accesses += access_count[block]

    return TraceProfile(
        name=name,
        total_ops=total,
        unique_blocks=len(touchers),
        private_blocks=private_blocks,
        sharing_histogram=histogram,
        write_fraction=writes / total if total else 0.0,
        private_access_fraction=private_accesses / total if total else 0.0,
    )


def histogram_buckets(profile: TraceProfile, num_cores: int) -> List[float]:
    """Sharing-degree fractions bucketed as [1, 2, 3-4, 5-8, >8] (F1 shape)."""
    edges = [(1, 1), (2, 2), (3, 4), (5, 8), (9, num_cores)]
    buckets = []
    for lo, hi in edges:
        count = sum(
            profile.sharing_histogram.get(degree, 0) for degree in range(lo, hi + 1)
        )
        buckets.append(count / profile.unique_blocks if profile.unique_blocks else 0.0)
    return buckets
