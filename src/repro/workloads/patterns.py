"""Sharing-pattern trace generators.

Each function builds a :class:`~repro.sim.trace.Trace` exhibiting one of the
canonical many-core sharing behaviours.  The paper's workload suite
(PARSEC/SPLASH-2) is, from the directory's point of view, a mixture of
exactly these patterns; :mod:`repro.workloads.suite` composes them into the
named stand-ins.

Address-space layout: each core owns a **private region**; **shared
regions** sit above all private regions.  Regions are sized in blocks and
converted to byte addresses with the system block size.
"""

from __future__ import annotations

from ..common.addr import log2_exact, stride_hash
from ..common.errors import ConfigError
from ..common.rng import DeterministicRng
from ..sim.trace import Trace
from .synthetic import PhasedStream, SequentialStream, ZipfStream

#: Blocks reserved per private region slot (regions are spaced this far
#: apart so different cores' private data never share a block).
REGION_SPAN = 1 << 20

#: Window for the per-region base scatter (see below); regions stay
#: disjoint as long as a region's working set is below REGION_SPAN / 2.
_SCATTER = REGION_SPAN // 2


def _block_shift(block_bytes: int) -> int:
    """Validated block-address shift for a generator's ``block_bytes``.

    ``bit_length() - 1`` on a non-power-of-two would silently truncate and
    alias distinct blocks; :func:`~repro.common.addr.log2_exact` raises
    :class:`~repro.common.errors.ConfigError` instead.
    """
    return log2_exact(block_bytes)


def _scatter(slot: int) -> int:
    """Deterministic per-region base offset.

    Real address spaces do not hand every core a region aligned at the same
    large power of two; aligned bases would alias all cores' offset-k blocks
    into the same cache/directory set and manufacture conflict pathologies
    the paper's workloads do not have.  A hashed offset decorrelates the
    set-index streams of different regions.
    """
    return stride_hash(slot + 1, 0xA11A) % _SCATTER


def _private_base(core: int) -> int:
    return core * REGION_SPAN + _scatter(core)


def _shared_base(num_cores: int, region: int = 0) -> int:
    slot = num_cores + region
    return slot * REGION_SPAN + _scatter(slot)


def private_working_set(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    ws_blocks: int = 256,
    write_frac: float = 0.25,
    zipf_alpha: float = 0.6,
    block_bytes: int = 64,
) -> Trace:
    """Every core loops over its own disjoint working set (no sharing).

    The directory's worst nightmare when under-provisioned: every block is
    private, every tracked entry is stash-eligible, and conventional
    evictions destroy perfectly good locality.
    """
    if not 0 <= write_frac <= 1:
        raise ConfigError("write_frac must be in [0, 1]")
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    for core in range(num_cores):
        crng = rng.spawn(core)
        stream = ZipfStream(ws_blocks, crng, zipf_alpha)
        base = _private_base(core)
        for _ in range(ops_per_core):
            addr = (base + stream.next()) << shift
            trace.append(core, addr, crng.random() < write_frac)
    return trace


def shared_read_only(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    shared_blocks: int = 512,
    private_blocks: int = 128,
    shared_frac: float = 0.5,
    write_frac: float = 0.1,
    zipf_alpha: float = 0.7,
    block_bytes: int = 64,
) -> Trace:
    """All cores read a common table; writes only touch private data.

    Models lookup-table / read-mostly workloads: the shared blocks end up
    widely shared (not stash-eligible), the private blocks dominate entry
    count.
    """
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    shared_base = _shared_base(num_cores)
    for core in range(num_cores):
        crng = rng.spawn(core)
        shared = ZipfStream(shared_blocks, crng, zipf_alpha)
        private = ZipfStream(private_blocks, crng.spawn(1), zipf_alpha)
        base = _private_base(core)
        for _ in range(ops_per_core):
            if crng.random() < shared_frac:
                addr = (shared_base + shared.next()) << shift
                trace.append(core, addr, False)
            else:
                addr = (base + private.next()) << shift
                trace.append(core, addr, crng.random() < write_frac)
    return trace


def producer_consumer(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    buffer_blocks: int = 64,
    private_blocks: int = 128,
    comm_frac: float = 0.3,
    return_frac: float = 0.5,
    block_bytes: int = 64,
) -> Trace:
    """Neighbouring core pairs exchange data through per-pair buffers.

    Core ``2k`` writes buffer ``k``; core ``2k+1`` reads it (and vice versa
    on the return buffer: core ``2k+1`` writes, core ``2k`` reads).  Each
    communication op lands on the return buffer with probability
    ``return_frac``, so traffic flows both ways.  The buffer blocks migrate
    M -> S repeatedly — tracked, two-sharer entries that stashing must
    leave alone.
    """
    if not 0 <= return_frac <= 1:
        raise ConfigError("return_frac must be in [0, 1]")
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    for core in range(num_cores):
        crng = rng.spawn(core)
        pair = core // 2
        is_producer = core % 2 == 0
        # Two disjoint regions per pair: forward (even core writes) and
        # return (odd core writes).
        fwd_base = _shared_base(num_cores, region=2 * pair)
        ret_base = _shared_base(num_cores, region=2 * pair + 1)
        fwd = SequentialStream(buffer_blocks)
        ret = SequentialStream(buffer_blocks)
        private = ZipfStream(private_blocks, crng, 0.6)
        base = _private_base(core)
        for _ in range(ops_per_core):
            if crng.random() < comm_frac:
                if crng.random() < return_frac:
                    addr = (ret_base + ret.next()) << shift
                    trace.append(core, addr, not is_producer)
                else:
                    addr = (fwd_base + fwd.next()) << shift
                    trace.append(core, addr, is_producer)
            else:
                addr = (base + private.next()) << shift
                trace.append(core, addr, crng.random() < 0.2)
    return trace


def migratory(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    migratory_blocks: int = 128,
    private_blocks: int = 128,
    migratory_frac: float = 0.3,
    burst: int = 8,
    block_bytes: int = 64,
) -> Trace:
    """Migratory sharing: shared objects are read-then-written by one core
    at a time (locks, reduction variables, work-queue items).

    Each touched migratory block gets a read followed by a write, so
    ownership hops core to core — entries stay private-at-a-time, which is
    exactly the case the stash directory exploits even for "shared" data.
    """
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    mig_base = _shared_base(num_cores)
    for core in range(num_cores):
        crng = rng.spawn(core)
        mig = ZipfStream(migratory_blocks, crng, 0.5)
        private = ZipfStream(private_blocks, crng.spawn(1), 0.6)
        base = _private_base(core)
        ops_emitted = 0
        while ops_emitted < ops_per_core:
            if crng.random() < migratory_frac:
                block = mig.next()
                addr = (mig_base + block) << shift
                # Read-modify-write bursts on the migratory object: the
                # alternation is indexed *within* the burst so every burst
                # opens with the read half of its read-then-write pairs
                # (global-parity indexing made odd-offset bursts lead with
                # a blind write).
                for pos in range(min(burst, ops_per_core - ops_emitted)):
                    trace.append(core, addr, pos % 2 == 1)
                    ops_emitted += 1
            else:
                addr = (base + private.next()) << shift
                trace.append(core, addr, crng.random() < 0.2)
                ops_emitted += 1
    return trace


def streaming(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    stream_blocks: int = 4096,
    write_frac: float = 0.4,
    block_bytes: int = 64,
) -> Trace:
    """Each core streams sequentially over a large private array once-ish.

    Low reuse: blocks enter the L1, age out, never return.  Directory
    entries churn but invalidating them rarely hurts (the copy was dead
    anyway) — the pattern where stashing helps least.
    """
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    for core in range(num_cores):
        crng = rng.spawn(core)
        stream = SequentialStream(stream_blocks)
        base = _private_base(core)
        for _ in range(ops_per_core):
            addr = (base + stream.next()) << shift
            trace.append(core, addr, crng.random() < write_frac)
    return trace


def uniform_mix(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    private_blocks: int = 256,
    shared_blocks: int = 256,
    shared_frac: float = 0.2,
    shared_write_frac: float = 0.3,
    private_write_frac: float = 0.25,
    block_bytes: int = 64,
) -> Trace:
    """General-purpose mix: private Zipf traffic plus read-write sharing."""
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    shared_base = _shared_base(num_cores)
    for core in range(num_cores):
        crng = rng.spawn(core)
        shared = ZipfStream(shared_blocks, crng, 0.8)
        private = ZipfStream(private_blocks, crng.spawn(1), 0.6)
        base = _private_base(core)
        for _ in range(ops_per_core):
            if crng.random() < shared_frac:
                addr = (shared_base + shared.next()) << shift
                trace.append(core, addr, crng.random() < shared_write_frac)
            else:
                addr = (base + private.next()) << shift
                trace.append(core, addr, crng.random() < private_write_frac)
    return trace


def false_sharing(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    hot_blocks: int = 16,
    fs_frac: float = 0.3,
    private_blocks: int = 128,
    block_bytes: int = 64,
) -> Trace:
    """False sharing: cores write *different words* of the same cache lines.

    Each core owns one word slot (core * 8 bytes, wrapped) inside a small
    set of hot blocks.  At block granularity the lines ping-pong in M state
    between writers even though no datum is actually shared — the classic
    pathology.  For the directory these lines are multi-sharer and never
    stash-eligible, so this pattern bounds how much of a workload stashing
    can help.
    """
    if not 0 <= fs_frac <= 1:
        raise ConfigError("fs_frac must be in [0, 1]")
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    hot_base = _shared_base(num_cores)
    words_per_block = max(1, block_bytes // 8)
    for core in range(num_cores):
        crng = rng.spawn(core)
        hot = ZipfStream(hot_blocks, crng, 0.5)
        private = ZipfStream(private_blocks, crng.spawn(1), 0.6)
        base = _private_base(core)
        word_offset = (core % words_per_block) * 8
        for _ in range(ops_per_core):
            if crng.random() < fs_frac:
                addr = (((hot_base + hot.next()) << shift) + word_offset)
                trace.append(core, addr, True)
            else:
                addr = (base + private.next()) << shift
                trace.append(core, addr, crng.random() < 0.2)
    return trace


def lock_contention(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    num_locks: int = 4,
    guarded_blocks: int = 32,
    lock_frac: float = 0.2,
    spin_reads: int = 4,
    private_blocks: int = 128,
    block_bytes: int = 64,
) -> Trace:
    """Lock contention: spin-read a lock line, write to acquire, touch the
    guarded data, write to release.

    Lock lines migrate read->write between cores (heavily shared, never
    stash-eligible); the guarded data behaves migratory.  Exercises the mix
    of upgrade misses, forwards and invalidations around synchronization.
    """
    if not 0 <= lock_frac <= 1:
        raise ConfigError("lock_frac must be in [0, 1]")
    if spin_reads < 0:
        raise ConfigError("spin_reads must be non-negative")
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    lock_base = _shared_base(num_cores, region=0)
    data_base = _shared_base(num_cores, region=1)
    for core in range(num_cores):
        crng = rng.spawn(core)
        private = ZipfStream(private_blocks, crng.spawn(1), 0.6)
        base = _private_base(core)
        emitted = 0
        while emitted < ops_per_core:
            if crng.random() < lock_frac:
                lock = crng.randint(0, num_locks - 1)
                lock_addr = (lock_base + lock) << shift
                budget = ops_per_core - emitted
                # Spin (reads), acquire (write), critical section, release.
                section = []
                section.extend((lock_addr, False) for _ in range(spin_reads))
                section.append((lock_addr, True))
                data = (data_base + lock * (guarded_blocks // max(1, num_locks))
                        + crng.randint(0, max(0, guarded_blocks // max(1, num_locks) - 1)))
                section.append(((data << shift), False))
                section.append(((data << shift), True))
                section.append((lock_addr, True))
                for addr, is_write in section[:budget]:
                    trace.append(core, addr, is_write)
                    emitted += 1
            else:
                addr = (base + private.next()) << shift
                trace.append(core, addr, crng.random() < 0.2)
                emitted += 1
    return trace


def phased(
    num_cores: int,
    ops_per_core: int,
    rng: DeterministicRng,
    *,
    compute_blocks: int = 192,
    exchange_blocks: int = 64,
    compute_len: int = 64,
    exchange_len: int = 16,
    block_bytes: int = 64,
) -> Trace:
    """Bulk-synchronous phase behaviour: compute on private data, then
    exchange through a shared region, repeat.

    Built on :class:`~repro.workloads.synthetic.PhasedStream`.  During
    compute phases the directory sees pure private traffic (stash heaven);
    each exchange phase makes a burst of blocks briefly shared, churning
    entries between private and shared states — the phase boundaries are
    where eviction policy choices matter most.
    """
    if compute_len < 1 or exchange_len < 1:
        raise ConfigError("phase lengths must be >= 1")
    trace = Trace(num_cores)
    shift = _block_shift(block_bytes)
    shared_base = _shared_base(num_cores)
    for core in range(num_cores):
        crng = rng.spawn(core)
        compute = ZipfStream(compute_blocks, crng, 0.6)
        exchange = SequentialStream(exchange_blocks)
        stream = PhasedStream(compute, exchange, compute_len, exchange_len)
        base = _private_base(core)
        for _ in range(ops_per_core):
            in_compute = stream.in_primary()
            block = stream.next()
            if in_compute:
                addr = (base + block) << shift
                trace.append(core, addr, crng.random() < 0.3)
            else:
                addr = (shared_base + block) << shift
                # Exchange: half the cores write their slice, half read.
                trace.append(core, addr, core % 2 == 0)
    return trace
