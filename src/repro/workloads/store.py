"""Content-addressed trace store: materialize each workload exactly once.

Every sweep point over the same ``(workload, num_cores, ops_per_core,
seed, block_bytes)`` replays the *identical* trace — a kinds x ratios
sweep varies only the directory configuration.  Before this store the
runner regenerated that trace inside every worker for every point, so a
5-kind x 6-ratio sweep paid for 30 generations of one input.  The store
memoizes generated traces in packed form (:class:`repro.sim.trace.
PackedTrace`) at two layers:

* **In-process memo** — a dict keyed by the full generation
  parameterization.  One generation per key per process; with a forking
  process pool, workers inherit the parent's memo for free.
* **On-disk spool** — one binary file per key under
  ``<cache-dir>/traces/`` (default ``.repro_cache/traces/``), written
  atomically and validated on load exactly like the result cache:
  corrupt, truncated or version-mismatched files are deleted and the
  trace regenerated, never crashed on.

File format (all integers little-endian)::

    MAGIC 'RPROTRC1' (8 bytes)
    header length (u32)
    header JSON  {version, key, workload, num_cores, ops_per_core,
                  seed, block_bytes, counts: [ops per core]}
    payload      concatenated per-core u64 streams, 8*sum(counts) bytes

:data:`counters` tracks memo/disk hits, generations and spool traffic;
the sweep runner folds them into ``--cache-stats``.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..sim.trace import PackedTrace
from .suite import build_workload

#: On-disk spool layout version; bump on any format change (old files
#: are then deleted on sight and regenerated).
TRACE_SCHEMA_VERSION = 1

#: File magic: identifies the format and its major revision.
MAGIC = b"RPROTRC1"

_HEADER_LEN = struct.Struct("<I")


def memo_key(
    workload: str,
    num_cores: int,
    ops_per_core: int,
    seed: int,
    block_bytes: int,
) -> tuple:
    """Hashable in-process memo key: the full generation parameterization."""
    return (workload, num_cores, ops_per_core, seed, block_bytes)


def trace_key(
    workload: str,
    num_cores: int,
    ops_per_core: int,
    seed: int,
    block_bytes: int,
) -> str:
    """Stable content-addressed spool key (SHA-256 hex).

    Folds in :data:`TRACE_SCHEMA_VERSION` so a format bump orphans every
    old entry; identical parameterizations hash identically across
    processes and machines.
    """
    payload = {
        "trace_schema": TRACE_SCHEMA_VERSION,
        "workload": workload,
        "num_cores": num_cores,
        "ops_per_core": ops_per_core,
        "seed": seed,
        "block_bytes": block_bytes,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class TraceStoreCounters:
    """Hit/generation counters for the trace store (process-global)."""

    memo_hits: int = 0
    disk_hits: int = 0
    generated: int = 0
    disk_writes: int = 0
    corrupt_entries: int = 0
    gen_seconds: float = 0.0

    @property
    def lookups(self) -> int:
        """Total trace requests."""
        return self.memo_hits + self.disk_hits + self.generated

    def reset(self) -> None:
        """Zero every counter (tests and benchmarks)."""
        self.__init__()


#: Process-global counters (reset with ``counters.reset()``).
counters = TraceStoreCounters()

#: In-process generation memo: memo_key -> PackedTrace.
_TRACE_MEMO: Dict[tuple, PackedTrace] = {}


def clear_memo() -> None:
    """Drop every memoized trace."""
    _TRACE_MEMO.clear()


def default_root() -> Path:
    """The spool directory under the configured cache root."""
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or ".repro_cache"
    return Path(cache_dir) / "traces"


class TraceStore:
    """The on-disk spool: one ``<sha256>.trace`` file per trace key.

    Writes are atomic (temp file + ``os.replace``); loads validate magic,
    header, version, key and payload length, deleting anything that fails
    — the same corruption discipline as the result cache.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """The file a key maps to (exists only after :meth:`store`)."""
        return self.root / f"{key}.trace"

    def load(self, key: str) -> Optional[PackedTrace]:
        """The spooled trace for ``key``, or None on miss/corruption."""
        entry = self.load_entry(key)
        return None if entry is None else entry[1]

    def load_entry(self, key: str) -> Optional[tuple]:
        """``(header, trace)`` for ``key``, or None on miss/corruption.

        Every validation failure — bad magic, a zero-length or truncated
        header, non-JSON or non-dict header, version/key mismatch, per-core
        ``counts`` that disagree with the payload size — deletes the file
        and returns None so callers regenerate; a spool entry can never
        raise out of this method.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            counters.corrupt_entries += 1
            self._discard(path)
            return None
        try:
            if blob[:8] != MAGIC:
                raise ValueError("bad magic")
            (header_len,) = _HEADER_LEN.unpack_from(blob, 8)
            if header_len == 0:
                raise ValueError("zero-length header")
            header_end = 12 + header_len
            if header_end > len(blob):
                raise ValueError("truncated header")
            header = json.loads(blob[12:header_end].decode("utf-8"))
            if not isinstance(header, dict):
                raise ValueError("header is not an object")
            if header.get("version") != TRACE_SCHEMA_VERSION:
                raise ValueError("trace schema version mismatch")
            if header.get("key") != key:
                raise ValueError("trace key mismatch")
            counts: List[int] = header["counts"]
            if not isinstance(counts, list) or not all(
                isinstance(c, int) and c >= 0 for c in counts
            ):
                raise ValueError("malformed core counts")
            if len(counts) != header["num_cores"]:
                raise ValueError("inconsistent core counts")
            payload = blob[header_end:]
            if len(payload) != 8 * sum(counts):
                raise ValueError("counts disagree with payload length")
            blobs = []
            offset = 0
            for count in counts:
                end = offset + 8 * count
                blobs.append(payload[offset:end])
                offset = end
            return header, PackedTrace.from_stream_bytes(blobs)
        except Exception:
            counters.corrupt_entries += 1
            self._discard(path)
            return None

    def store(self, key: str, meta: Dict[str, object], packed: PackedTrace) -> None:
        """Atomically spool one trace (best-effort: IO errors ignored)."""
        header = dict(meta)
        header["version"] = TRACE_SCHEMA_VERSION
        header["key"] = key
        header["num_cores"] = packed.num_cores
        header["counts"] = [len(stream) for stream in packed.streams]
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(MAGIC)
                handle.write(_HEADER_LEN.pack(len(header_bytes)))
                handle.write(header_bytes)
                for blob in packed.stream_bytes():
                    handle.write(blob)
            os.replace(tmp, path)
            counters.disk_writes += 1
        except OSError:
            self._discard(tmp)

    def stats(self) -> Dict[str, int]:
        """Spool footprint: ``{"files": N, "bytes": B}``."""
        files = 0
        total = 0
        if self.root.is_dir():
            for path in self.root.iterdir():
                if path.suffix == ".trace":
                    try:
                        total += path.stat().st_size
                        files += 1
                    except OSError:
                        pass
        return {"files": files, "bytes": total}

    def clear(self) -> int:
        """Delete every spooled trace; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.iterdir():
            if path.suffix == ".trace" or ".tmp." in path.name:
                self._discard(path)
                removed += 1
        return removed

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


def get_packed_trace(
    workload: str,
    num_cores: int,
    ops_per_core: int,
    seed: int = 1,
    block_bytes: int = 64,
    root: Optional[Union[str, Path]] = None,
    disk_enabled: bool = True,
) -> PackedTrace:
    """One workload trace through memo -> spool -> generate.

    The returned :class:`PackedTrace` is shared (also kept in the memo):
    treat it as immutable.  Generation is deterministic, so every layer
    returns bit-identical streams.
    """
    key = memo_key(workload, num_cores, ops_per_core, seed, block_bytes)
    hit = _TRACE_MEMO.get(key)
    if hit is not None:
        counters.memo_hits += 1
        return hit
    store = TraceStore(root if root is not None else default_root())
    disk_key = trace_key(workload, num_cores, ops_per_core, seed, block_bytes)
    if disk_enabled:
        loaded = store.load(disk_key)
        if loaded is not None:
            counters.disk_hits += 1
            _TRACE_MEMO[key] = loaded
            return loaded
    start = time.perf_counter()
    packed = PackedTrace.from_trace(
        build_workload(
            workload, num_cores, ops_per_core, seed=seed, block_bytes=block_bytes
        )
    )
    counters.gen_seconds += time.perf_counter() - start
    counters.generated += 1
    _TRACE_MEMO[key] = packed
    if disk_enabled:
        store.store(
            disk_key,
            {
                "workload": workload,
                "ops_per_core": ops_per_core,
                "seed": seed,
                "block_bytes": block_bytes,
            },
            packed,
        )
    return packed
